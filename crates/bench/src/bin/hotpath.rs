//! Offline hot-path microbenchmarks: simulator event throughput (heap
//! vs. BTreeMap event queue on the identical workload), fast-mode
//! replay throughput against a loopback UDP sink, and dns-wire
//! encode/decode throughput. Writes `BENCH_hotpath.json` (hand-rolled
//! JSON, no serde) so CI and the offline static-analysis gate can
//! check the numbers without any dependency beyond the workspace.
//!
//! `cargo run --release -p ldp-bench --bin hotpath [-- <output.json>]`
//!
//! Unlike the figure binaries this one is deliberately buildable with
//! bare rustc against the offline rlib chain: std + netsim +
//! ldp-replay + dns-wire + ldp-trace only (no tokio, no criterion).

use std::hint::black_box;
use std::net::{IpAddr, SocketAddr, UdpSocket};
use std::time::Instant;

use dns_server::ServerEngine;
use dns_wire::{Message, RData, Record, RecordType, Soa};
use dns_zone::{Catalog, Zone};
use ldp_replay::{replay, ReplayConfig};
use ldp_shard::{ShardPlan, ShardedSimulator};
use ldp_telemetry as tel;
use ldp_trace::TraceEntry;
use netsim::{
    Ctx, EventQueue, Host, PacketBytes, PathConfig, QueueKind, SimConfig, SimDuration, SimTime,
    Simulator, TcpEvent, Topology,
};

/// Best wall-clock seconds out of `runs` attempts of `f` (noise floor).
fn best_of<F: FnMut() -> u64>(runs: usize, mut f: F) -> (u64, f64) {
    let mut best = f64::MAX;
    let mut count = 0u64;
    for _ in 0..runs {
        let t0 = Instant::now();
        count = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (count, best)
}

/// A host that bursts shared-payload datagrams to its peers on every
/// timer tick and re-arms until its tick budget runs out — the steady
/// churn (timer pop → pushes → delivery pops) a replaying simulation
/// puts on the event queue, with a few thousand events resident.
struct Blaster {
    me: SocketAddr,
    peers: Vec<SocketAddr>,
    payload: PacketBytes,
    ticks: u64,
}

impl Host for Blaster {
    fn on_udp(&mut self, _: &mut Ctx<'_>, _: SocketAddr, _: SocketAddr, _: PacketBytes) {}
    fn on_tcp_event(&mut self, _: &mut Ctx<'_>, _: TcpEvent) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        for peer in &self.peers {
            ctx.send_udp(self.me, *peer, self.payload.clone());
        }
        if self.ticks > 0 {
            self.ticks -= 1;
            ctx.set_timer(SimDuration::from_micros(20), token + 1);
        }
    }
}

fn sim_topology() -> Topology {
    Topology::uniform(PathConfig {
        rtt: SimDuration::from_millis(2),
        bandwidth_bps: None,
        loss: 0.0,
    })
}

/// One full simulator run on the given queue backend; returns events
/// processed. 8 hosts × `ticks` re-armed 20 µs timers × 2-peer bursts
/// over a 2 ms RTT keeps ~1.5k events resident for the whole run.
fn sim_run(queue: QueueKind, ticks: u64) -> u64 {
    let config = SimConfig {
        queue,
        ..Default::default()
    };
    let mut sim = Simulator::new(sim_topology(), config);
    let payload: PacketBytes = vec![0u8; 64].into();
    let n_hosts = 8usize;
    let socks: Vec<SocketAddr> = (0..n_hosts)
        .map(|i| format!("10.9.0.{}:5300", i + 1).parse().expect("addr"))
        .collect();
    for i in 0..n_hosts {
        let peers = vec![socks[(i + 1) % n_hosts], socks[(i + 3) % n_hosts]];
        let id = sim.add_host(
            &[socks[i].ip()],
            Box::new(Blaster {
                me: socks[i],
                peers,
                payload: payload.clone(),
                ticks,
            }),
        );
        sim.schedule_timer(id, SimTime::from_micros(i as u64), 0);
    }
    sim.run_until(SimTime::from_secs_f64(3600.0))
}

/// The identical workload on a [`ShardedSimulator`] with `shards`
/// round-robin worker shards (1 ms conservative lookahead from the
/// 2 ms RTT). Returns events processed, which must equal the
/// single-shard count — the equivalence smoke the static-analysis
/// gate relies on.
fn sharded_sim_run(shards: u32, ticks: u64) -> u64 {
    let config = SimConfig {
        queue: QueueKind::Heap,
        ..Default::default()
    };
    let mut sim = ShardedSimulator::new(sim_topology(), config, ShardPlan::round_robin(shards));
    let payload: PacketBytes = vec![0u8; 64].into();
    let n_hosts = 8usize;
    let socks: Vec<SocketAddr> = (0..n_hosts)
        .map(|i| format!("10.9.0.{}:5300", i + 1).parse().expect("addr"))
        .collect();
    for i in 0..n_hosts {
        let peers = vec![socks[(i + 1) % n_hosts], socks[(i + 3) % n_hosts]];
        let id = sim.add_host(
            &[socks[i].ip()],
            Box::new(Blaster {
                me: socks[i],
                peers,
                payload: payload.clone(),
                ticks,
            }),
        );
        sim.schedule_timer(id, SimTime::from_micros(i as u64), 0);
    }
    sim.run_until(SimTime::from_secs_f64(3600.0))
}

/// Raw queue ops/sec: push/pop cycles on the bare [`EventQueue`], the
/// isolated data-structure comparison behind the sim-level numbers.
fn queue_raw(kind: QueueKind, ops: u64) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::new(kind);
    // Keep ~4096 entries resident; interleave pushes and pops with a
    // mildly non-monotonic time pattern (like real timer re-arming).
    let mut now = 0u64;
    let mut popped = 0u64;
    for i in 0..ops {
        let jitter = (i.wrapping_mul(2654435761)) % 1000;
        q.push(SimTime::from_nanos(now + jitter), i % 64, i, i);
        if q.len() > 4096 {
            if let Some((at, item)) = q.pop() {
                now = now.max(at.as_nanos());
                popped = popped.wrapping_add(item);
            }
        }
    }
    while let Some((_, item)) = q.pop() {
        popped = popped.wrapping_add(item);
    }
    black_box(popped);
    ops * 2
}

fn replay_qps(queries: u64, guard: ldp_guard::GuardConfig) -> (u64, f64, u64) {
    let sink = UdpSocket::bind("127.0.0.1:0").expect("bind sink");
    let addr = sink.local_addr().expect("sink addr");
    let trace: Vec<TraceEntry> = (0..queries)
        .map(|i| {
            TraceEntry::query(
                1_000_000 + i * 100,
                format!("10.0.{}.{}:999", i % 4, 1 + i % 200).parse().expect("src"),
                "127.0.0.1:53".parse().expect("dst"),
                i as u16,
                format!("q{i}.example.com").parse().expect("qname"),
                RecordType::A,
            )
        })
        .collect();
    let config = ReplayConfig {
        target_udp: addr,
        target_tcp: addr,
        fast_mode: true,
        guard,
        ..Default::default()
    };
    let t0 = Instant::now();
    let report = replay(&trace, &config);
    (report.total_sent, t0.elapsed().as_secs_f64(), report.errors)
}

fn wire_throughput(iters: u64) -> (f64, f64, usize) {
    let msg = Message::query(
        4660,
        "www.example-workload.com".parse().expect("qname"),
        RecordType::A,
    );
    let encoded = msg.encode();
    let size = encoded.len();

    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(black_box(&msg).encode());
    }
    let enc_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for _ in 0..iters {
        let m = Message::decode(black_box(&encoded)).expect("decodes");
        black_box(m);
    }
    let dec_s = t0.elapsed().as_secs_f64();

    (iters as f64 / enc_s, iters as f64 / dec_s, size)
}

/// An authoritative engine over one zone of `names` A records — the
/// serve-side counterpart of [`wire_throughput`]'s message.
fn server_engine(names: usize) -> ServerEngine {
    let origin: dns_wire::Name = "bench.example".parse().expect("origin");
    let mut zone = Zone::new(origin.clone());
    zone.insert(Record::new(
        origin,
        3600,
        RData::Soa(Soa {
            mname: "ns1.bench.example".parse().expect("mname"),
            rname: "admin.bench.example".parse().expect("rname"),
            serial: 1,
            refresh: 1,
            retry: 1,
            expire: 1,
            minimum: 60,
        }),
    ))
    .expect("soa");
    for i in 0..names {
        zone.insert(Record::new(
            format!("h{i}.bench.example").parse().expect("name"),
            60,
            RData::A(format!("10.1.{}.{}", i / 256, i % 256).parse().expect("a")),
        ))
        .expect("record");
    }
    let mut cat = Catalog::new();
    cat.insert(zone);
    ServerEngine::with_catalog(cat)
}

/// UDP answers/sec through `answer_udp`, template path vs. general
/// path, on the identical query mix. Asserts the two paths agree
/// byte-for-byte before timing them.
fn server_throughput(iters: u64) -> (f64, f64) {
    let names = 64usize;
    let general = server_engine(names);
    let templated = server_engine(names).with_templates();
    let src: IpAddr = "10.2.0.1".parse().expect("src");
    let queries: Vec<Message> = (0..names)
        .map(|i| {
            let mut q = Message::query(
                i as u16,
                format!("h{i}.bench.example").parse().expect("qname"),
                RecordType::A,
            );
            q.flags.recursion_desired = true;
            q
        })
        .collect();
    for q in &queries {
        assert_eq!(
            templated.answer_udp(src, q),
            general.answer_udp(src, q),
            "template path must be byte-identical to the general path"
        );
    }
    let time = |engine: &ServerEngine| {
        let t0 = Instant::now();
        for i in 0..iters {
            let q = &queries[(i as usize) % names];
            black_box(engine.answer_udp(src, black_box(q)));
        }
        iters as f64 / t0.elapsed().as_secs_f64()
    };
    let general_aps = time(&general);
    let template_aps = time(&templated);
    (template_aps, general_aps)
}

/// Resolver-cache ops/sec on the three answer paths the delayed-hits
/// study classifies: plain hits (`get` on a warm store), delayed hits
/// (joining an in-flight resolution in the outstanding table), and full
/// misses (lookup miss → lead registration → completion → insert with
/// eviction, on a store at capacity). Pure data-structure cost — no
/// simulator, no sockets — so the rates bound what the sim resolver can
/// possibly sustain per class.
fn resolver_cache_throughput(iters: u64) -> (f64, f64, f64) {
    use ldp_cache::{CacheConfig, FillInfo, OutstandingTable, PolicyKind, ResolverCache};

    let n_names = 1024usize;
    let names: Vec<dns_wire::Name> = (0..n_names)
        .map(|i| format!("c{i}.bench.example").parse().expect("name"))
        .collect();
    let answer = |i: usize| {
        vec![Record::new(
            names[i].clone(),
            60,
            RData::A(format!("10.4.{}.{}", i / 256, i % 256).parse().expect("a")),
        )]
    };

    // Hit path: a warm unbounded store, cycling reads inside the TTL.
    let mut cache = ResolverCache::unbounded();
    for i in 0..n_names {
        cache.put_positive(&names[i], RecordType::A, answer(i), 0.0, FillInfo::default());
    }
    let t0 = Instant::now();
    for i in 0..iters {
        let name = &names[(i as usize) % n_names];
        black_box(cache.get(black_box(name), RecordType::A, 1.0));
    }
    let hit_ps = iters as f64 / t0.elapsed().as_secs_f64();
    assert_eq!(cache.stats().misses, 0, "warm reads must all hit");

    // Delayed-hit path: join an already-in-flight resolution (the
    // coalescing push every waiter after the lead pays), 8 joins per
    // begin/complete cycle like a typical cold-name train.
    let mut table: OutstandingTable<u64> = OutstandingTable::new();
    let joins_per_cycle = 8u64;
    let cycles = iters / joins_per_cycle;
    let t0 = Instant::now();
    for c in 0..cycles {
        let name = &names[(c as usize) % n_names];
        table.begin(name, RecordType::A, c, c, 0.0);
        for w in 0..joins_per_cycle {
            let joined = table.join(black_box(name), RecordType::A, w, 0.0);
            black_box(joined.is_ok());
        }
        black_box(table.complete(name, RecordType::A));
    }
    let delayed_ps = (cycles * joins_per_cycle) as f64 / t0.elapsed().as_secs_f64();
    assert!(table.is_empty(), "every cycle completed");

    // Miss path: a store at half the name count, so every lookup
    // misses (the entry was evicted before its next visit) and every
    // insert evicts — lookup + lead registration + completion + insert
    // + eviction, the full miss bookkeeping.
    let mut cache = ResolverCache::new(CacheConfig::bounded(n_names / 2, PolicyKind::Lru));
    let mut table: OutstandingTable<u64> = OutstandingTable::new();
    let t0 = Instant::now();
    for i in 0..iters {
        let idx = (i as usize) % n_names;
        let name = &names[idx];
        black_box(cache.get(black_box(name), RecordType::A, 0.0));
        table.begin(name, RecordType::A, i, i, 0.0);
        black_box(table.complete(name, RecordType::A));
        black_box(cache.put_positive(name, RecordType::A, answer(idx), 0.0, FillInfo::default()));
    }
    let miss_ps = iters as f64 / t0.elapsed().as_secs_f64();
    assert_eq!(cache.stats().hits, 0, "cycling at 2× capacity must never hit");

    (hit_ps, delayed_ps, miss_ps)
}

/// v2 fuzzy-cut checkpoint document round-trips (`to_text` +
/// `from_text`) per second on a representative mid-storm cut: 2 000
/// committed records and 256 `inflight` lines (mixed statuses, half
/// with budget snapshots). The cadence commits one of these per tick
/// on the replay host's thread, so serialization cost bounds how fine
/// a cadence a storm run can afford.
fn fuzzy_checkpoint_throughput() -> f64 {
    use ldp_guard::{BudgetSnapshot, Checkpoint, InflightEntry, InflightStatus};
    let records: Vec<String> = (0..2_000u64)
        .map(|i| {
            let sent = i as f64 * 0.05;
            format!("{i} {:?} {:?} Udp 10.1.0.{} 120", sent, sent + 0.04, 1 + i % 4)
        })
        .collect();
    let inflight: Vec<InflightEntry> = (0..256u64)
        .map(|i| InflightEntry {
            seq: 2_000 + i,
            deadline_ns: 100_000_000_000 + i * 50_000_000,
            sends: 1 + (i % 3) as u32,
            retx: (i % 3) as u32,
            status: match i % 3 {
                0 => InflightStatus::InFlight,
                1 => InflightStatus::Parked,
                _ => InflightStatus::Retrying,
            },
            budget: (i % 2 == 0).then(|| BudgetSnapshot {
                used: (i % 8) as u32,
                prev_us: 200_000 + i,
                rng_state: i.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }),
        })
        .collect();
    let cp = Checkpoint {
        version: 2,
        epoch: 13,
        taken_ns: 3_250_000_000,
        cursor: 1_987,
        counters: vec![
            ("sent".into(), 2_117),
            ("connects".into(), 12),
            ("retries".into(), 117),
            ("shed".into(), 0),
            ("restarts".into(), 1),
        ],
        records,
        inflight,
    };
    let rounds = 200u64;
    let (_, secs) = best_of(3, || {
        for _ in 0..rounds {
            let text = cp.to_text().expect("serializes");
            let back = Checkpoint::from_text(&text).expect("parses");
            assert_eq!(back.inflight.len(), cp.inflight.len());
            black_box(back);
        }
        rounds
    });
    rounds as f64 / secs
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());

    // --- Simulator: heap vs. BTreeMap on the identical workload. ---
    let ticks = 20_000u64;
    println!("sim: 8 hosts × {ticks} ticks × 2 backends (best of 3)…");
    let (heap_events, heap_s) = best_of(3, || sim_run(QueueKind::Heap, ticks));
    let (btree_events, btree_s) = best_of(3, || sim_run(QueueKind::BTree, ticks));
    assert_eq!(heap_events, btree_events, "backends processed identical event counts");
    let heap_eps = heap_events as f64 / heap_s;
    let btree_eps = btree_events as f64 / btree_s;
    println!("  heap  {heap_eps:>12.0} events/s");
    println!("  btree {btree_eps:>12.0} events/s   (speedup {:.2}×)", heap_eps / btree_eps);

    // --- Telemetry: recording overhead on the identical sim workload
    // (ISSUE 4 acceptance criterion: ≤ 5% on sim events/s). Paired
    // off/on trials, minimum overhead across pairs: machine-load drift
    // between an early baseline and a late telemetry run would
    // otherwise flake the gate.
    // Machine-load drift between runs can dwarf the effect being
    // measured, so the gate interleaves enabled/disabled runs in
    // alternating order (drift and warm-up bias hit both sides
    // equally) and compares the *minimum* time per side: each side's
    // minimum approaches its noise-free cost, while means, medians and
    // totals all inherit the scheduler's tail noise and flake on a
    // busy host.
    println!("telemetry: enabled vs disabled sim run (8 interleaved runs per side)…");
    let mut base_min_s = f64::MAX;
    let mut on_min_s = f64::MAX;
    for round in 0..8 {
        for on_now in [round % 2 == 0, round % 2 != 0] {
            tel::set_enabled(on_now);
            let (events, secs) = best_of(1, || sim_run(QueueKind::Heap, ticks));
            tel::set_enabled(false);
            let _ = tel::drain_all(); // discard the recorded marks
            assert_eq!(events, heap_events, "telemetry must not change the event count");
            if on_now {
                on_min_s = on_min_s.min(secs);
            } else {
                base_min_s = base_min_s.min(secs);
            }
        }
    }
    let tel_eps = heap_events as f64 / on_min_s;
    let telemetry_overhead_pct = ((on_min_s - base_min_s) / base_min_s * 100.0).max(0.0);
    let overhead_ok = telemetry_overhead_pct <= 5.0;
    println!(
        "  enabled {tel_eps:>12.0} events/s — overhead {telemetry_overhead_pct:.2}% (budget 5%) — {}",
        if overhead_ok { "ok" } else { "FAIL" }
    );

    let ops = 2_000_000u64;
    let (heap_ops, heap_raw_s) = best_of(3, || queue_raw(QueueKind::Heap, ops));
    let (btree_ops, btree_raw_s) = best_of(3, || queue_raw(QueueKind::BTree, ops));
    let heap_raw = heap_ops as f64 / heap_raw_s;
    let btree_raw = btree_ops as f64 / btree_raw_s;
    println!("  raw queue: heap {heap_raw:>12.0} ops/s, btree {btree_raw:>12.0} ops/s");
    assert_eq!(heap_ops, btree_ops);

    // --- Sharded simulator: the identical workload on 1/2/8 worker
    // shards. The event-count equality is the cheap equivalence smoke
    // (full transcript equivalence lives in crates/shard/tests); the
    // per-count rates land in the JSON so the shard-scaling study in
    // EXPERIMENTS.md has pinned, reproducible inputs.
    println!("sharded sim: 8 hosts × {ticks} ticks × shards 1/2/8 (best of 3)…");
    let mut sharded_eps = [0f64; 3];
    for (slot, shards) in [1u32, 2, 8].iter().enumerate() {
        let (events, secs) = best_of(3, || sharded_sim_run(*shards, ticks));
        assert_eq!(
            events, heap_events,
            "sharded({shards}) must process the single-shard event count"
        );
        sharded_eps[slot] = events as f64 / secs;
        println!("  shards={shards} {:>12.0} events/s", sharded_eps[slot]);
    }

    // --- Replay: fast-mode UDP throughput to a loopback sink. ---
    let queries = 40_000u64;
    println!("replay: {queries} fast-mode queries…");
    let (sent, replay_s, errors) = replay_qps(queries, ldp_guard::GuardConfig::default());
    let qps = sent as f64 / replay_s;
    println!("  {sent} sent in {replay_s:.3} s = {qps:.0} q/s ({errors} errors)");
    assert_eq!(sent, queries, "every query sent");

    // --- Guard: overload-protection overhead on fast-mode replay q/s
    // (ISSUE 5 acceptance criterion: ≤ 3%). The default GuardConfig
    // arms supervision (so the distributor retains a redispatch window
    // of job clones) and admission bookkeeping; disabled() turns all
    // of it off. Same interleaved-pairs / minimum-per-side protocol as
    // the telemetry gate above, for the same noise-immunity reasons.
    println!("guard: default vs disabled fast-mode replay (6 interleaved runs per side)…");
    let mut guard_off_min_s = f64::MAX;
    let mut guard_on_min_s = f64::MAX;
    for round in 0..6 {
        for on_now in [round % 2 == 0, round % 2 != 0] {
            let cfg = if on_now {
                ldp_guard::GuardConfig::default()
            } else {
                ldp_guard::GuardConfig::disabled()
            };
            let (sent, secs, errs) = replay_qps(queries, cfg);
            assert_eq!(sent, queries, "guard must not change the sent count");
            assert_eq!(errs, 0, "guard must not introduce send errors");
            if on_now {
                guard_on_min_s = guard_on_min_s.min(secs);
            } else {
                guard_off_min_s = guard_off_min_s.min(secs);
            }
        }
    }
    let guard_qps = queries as f64 / guard_on_min_s;
    let guard_overhead_pct =
        ((guard_on_min_s - guard_off_min_s) / guard_off_min_s * 100.0).max(0.0);
    let guard_ok = guard_overhead_pct <= 3.0;
    println!(
        "  guarded {guard_qps:>12.0} q/s — overhead {guard_overhead_pct:.2}% (budget 3%) — {}",
        if guard_ok { "ok" } else { "FAIL" }
    );

    // --- Guard: v2 fuzzy-cut checkpoint serialization round-trips. ---
    println!("guard: v2 fuzzy-cut checkpoint round-trips (2000 records + 256 inflight)…");
    let fuzzy_cp_ps = fuzzy_checkpoint_throughput();
    println!("  {fuzzy_cp_ps:>12.0} round-trips/s");

    // --- Wire: encode/decode round-trip throughput. ---
    let iters = 200_000u64;
    println!("wire: {iters} encode + decode iterations…");
    let (enc_mps, dec_mps, msg_size) = wire_throughput(iters);
    println!("  encode {enc_mps:>12.0} msg/s   decode {dec_mps:>12.0} msg/s   ({msg_size} B msg)");

    // --- Server: templated vs general answer_udp throughput. ---
    println!("server: {iters} answer_udp iterations × 2 paths…");
    let (template_aps, general_aps) = server_throughput(iters);
    println!(
        "  template {template_aps:>12.0} ans/s   general {general_aps:>12.0} ans/s   (speedup {:.2}×)",
        template_aps / general_aps
    );

    // --- Resolver cache: hit / delayed-hit / miss path ops/sec. ---
    println!("resolver cache: {iters} ops × 3 answer paths…");
    let (cache_hit_ps, cache_delayed_ps, cache_miss_ps) = resolver_cache_throughput(iters);
    println!(
        "  hit {cache_hit_ps:>12.0} ops/s   delayed-hit {cache_delayed_ps:>12.0} ops/s   miss {cache_miss_ps:>12.0} ops/s"
    );

    // Hand-rolled JSON: this binary must build with bare rustc offline.
    let json = format!(
        "{{\n  \"sim\": {{\n    \"events\": {heap_events},\n    \"heap_events_per_sec\": {heap_eps:.0},\n    \"btree_events_per_sec\": {btree_eps:.0},\n    \"heap_speedup\": {:.3},\n    \"raw_queue_heap_ops_per_sec\": {heap_raw:.0},\n    \"raw_queue_btree_ops_per_sec\": {btree_raw:.0},\n    \"raw_queue_heap_speedup\": {:.3},\n    \"telemetry_events_per_sec\": {tel_eps:.0},\n    \"telemetry_overhead_pct\": {telemetry_overhead_pct:.2},\n    \"sharded_events_per_sec_1\": {:.0},\n    \"sharded_events_per_sec_2\": {:.0},\n    \"sharded_events_per_sec_8\": {:.0}\n  }},\n  \"replay\": {{\n    \"queries\": {sent},\n    \"queries_per_sec\": {qps:.0},\n    \"guarded_queries_per_sec\": {guard_qps:.0},\n    \"guard_overhead_pct\": {guard_overhead_pct:.2},\n    \"errors\": {errors}\n  }},\n  \"guard\": {{\n    \"fuzzy_checkpoint_per_sec\": {fuzzy_cp_ps:.0}\n  }},\n  \"wire\": {{\n    \"message_bytes\": {msg_size},\n    \"encode_msgs_per_sec\": {enc_mps:.0},\n    \"decode_msgs_per_sec\": {dec_mps:.0},\n    \"encode_mb_per_sec\": {:.1},\n    \"decode_mb_per_sec\": {:.1}\n  }},\n  \"server\": {{\n    \"template_answers_per_sec\": {template_aps:.0},\n    \"general_answers_per_sec\": {general_aps:.0},\n    \"template_speedup\": {:.3}\n  }},\n  \"resolver\": {{\n    \"cache_hit_per_sec\": {cache_hit_ps:.0},\n    \"cache_delayed_hit_per_sec\": {cache_delayed_ps:.0},\n    \"cache_miss_per_sec\": {cache_miss_ps:.0}\n  }}\n}}\n",
        heap_eps / btree_eps,
        heap_raw / btree_raw,
        sharded_eps[0],
        sharded_eps[1],
        sharded_eps[2],
        enc_mps * msg_size as f64 / 1e6,
        dec_mps * msg_size as f64 / 1e6,
        template_aps / general_aps,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_hotpath.json");
    println!("wrote {out_path}");
    if !overhead_ok {
        eprintln!(
            "hotpath: telemetry overhead {telemetry_overhead_pct:.2}% exceeds the 5% budget"
        );
        std::process::exit(1);
    }
    if !guard_ok {
        eprintln!("hotpath: guard overhead {guard_overhead_pct:.2}% exceeds the 3% budget");
        std::process::exit(1);
    }
}
