//! Figures 6, 7 and 8: replay fidelity over real UDP loopback.
//!
//! - **Figure 6** — per-query time error (replayed vs original arrival,
//!   relative to the first query): quartiles/min/max per trace.
//! - **Figure 7** — inter-arrival CDFs, original vs replayed.
//! - **Figure 8** — CDF of per-second query-rate relative difference
//!   across repeated B-Root-like replays.
//!
//! `cargo run --release -p ldp-bench --bin fig06_07_08 [-- --seconds 30 --trials 5]`

use ldp_bench::{arg_f64, boxplot_row, cdf_rows};
use ldp_core::{run_fidelity_session, SessionConfig};
use ldp_metrics::Cdf;
use workloads::{BRootSpec, SyntheticTraceSpec};

fn main() {
    let seconds = arg_f64("--seconds", 30.0);
    let trials = arg_f64("--trials", 5.0) as usize;
    let broot_rate = arg_f64("--broot-rate", 2000.0);

    println!("== Figure 6: query-time error in replay (skip first 10% as startup) ==\n");
    let mut syn_traces = Vec::new();
    for (name, ia) in [
        ("syn-4 (0.1ms)", 0.0001),
        ("syn-3 (1ms)", 0.001),
        ("syn-2 (10ms)", 0.01),
        ("syn-1 (0.1s)", 0.1),
        ("syn-0 (1s)", 1.0),
    ] {
        // Keep at least 100 queries per trace, at most `seconds` long.
        let dur = seconds.max(100.0 * ia).min(if ia >= 1.0 { 120.0 } else { seconds * 4.0 });
        let mut spec = SyntheticTraceSpec::fixed_interarrival(ia, dur);
        spec.client_pool = 1000;
        syn_traces.push((name, spec.generate(6)));
    }
    let broot = BRootSpec {
        duration_secs: seconds,
        mean_rate: broot_rate,
        clients: 20_000,
        ..BRootSpec::b_root_16_like()
    }
    .generate(6);

    let mut fig7: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    for (name, trace) in syn_traces.iter().map(|(n, t)| (*n, t)).chain(std::iter::once(("B-Root", &broot))) {
        let config = SessionConfig {
            answer_from: Some("example.com".into()),
            skip_secs: seconds * 0.1,
            ..Default::default()
        };
        let report = run_fidelity_session(trace, &config);
        println!(
            "{}",
            boxplot_row(name, &report.error_summary, "ms")
        );
        println!(
            "{:28} min {:>9.3}ms  max {:>9.3}ms  matched {}/{}\n",
            "", report.error_summary.min, report.error_summary.max, report.matched, trace.len()
        );
        fig7.push((
            name.to_string(),
            report.original_interarrivals.clone(),
            report.replayed_interarrivals.clone(),
        ));
    }
    println!("paper: quartiles within ±2.5 ms (±8 ms at the 0.1 s inter-arrival); min/max within ±17 ms\n");

    println!("== Figure 7: inter-arrival CDFs (original vs replayed) ==\n");
    for (name, orig, replayed) in &fig7 {
        for row in cdf_rows(&format!("{name} original"), orig, "s") {
            println!("{row}");
        }
        for row in cdf_rows(&format!("{name} replayed"), replayed, "s") {
            println!("{row}");
        }
        if let (Some(a), Some(b)) = (Cdf::of(orig), Cdf::of(replayed)) {
            println!("{name:<24} KS distance = {:.4}\n", a.ks_distance(&b));
        }
    }
    println!("paper: curves overlap for inter-arrivals ≥10 ms; more jitter below 1 ms\n");

    println!("== Figure 8: per-second rate difference, {trials} B-Root replays ==\n");
    let mut all_diffs = Vec::new();
    for trial in 0..trials {
        let config = SessionConfig {
            answer_from: Some("example.com".into()),
            ..Default::default()
        };
        let report = run_fidelity_session(&broot, &config);
        let within: usize = report
            .rate_differences
            .iter()
            .filter(|d| d.abs() <= 0.001)
            .count();
        println!(
            "trial {trial}: {} rate buckets, {:.1}% within ±0.1%",
            report.rate_differences.len(),
            100.0 * within as f64 / report.rate_differences.len().max(1) as f64
        );
        all_diffs.extend(report.rate_differences);
    }
    println!();
    for row in cdf_rows("rate diff (fraction)", &all_diffs, "") {
        println!("{row}");
    }
    println!("\npaper: 95–99% of seconds within ±0.1% difference (median rate 38k q/s)");
}
