//! Table 1: the trace inventory — record counts, inter-arrival
//! mean/stddev, distinct client IPs — for the B-Root-like, Rec-17-like
//! and synthetic traces this reproduction generates in place of the
//! paper's proprietary captures.
//!
//! `cargo run --release -p ldp-bench --bin table1 [-- --scale 100]`

use ldp_bench::arg_f64;
use ldp_trace::TraceStats;
use workloads::{BRootSpec, RecursiveSpec, SyntheticTraceSpec};

fn main() {
    let scale = arg_f64("--scale", 100.0);
    println!("Table 1 reproduction (workloads scaled {scale}× down; --scale 1 = full size)\n");
    println!(
        "{:<12} {:>10}  {:>9}  {:<28} {:>10}  {:>9}",
        "trace", "records", "duration", "inter-arrival mean±sd (s)", "client IPs", "q/s"
    );

    let print_row = |name: &str, trace: &[ldp_trace::TraceEntry]| {
        let s = TraceStats::compute(trace).expect("non-empty");
        println!(
            "{:<12} {:>10}  {:>8.0}s  {:<28} {:>10}  {:>9.0}",
            name,
            s.records,
            s.duration_secs,
            format!("{:.6} ±{:.6}", s.interarrival_mean, s.interarrival_stddev),
            s.client_ips,
            s.mean_rate
        );
    };

    for (name, spec) in [
        ("B-Root-16", BRootSpec::b_root_16_like()),
        ("B-Root-17a", BRootSpec::b_root_17a()),
        ("B-Root-17b", BRootSpec::b_root_17b()),
    ] {
        let t = spec.scaled(scale).generate(16);
        print_row(name, &t);
    }
    {
        let mut spec = RecursiveSpec::rec_17();
        spec.duration_secs = (spec.duration_secs / scale.max(1.0)).max(60.0);
        let t = spec.generate(17);
        print_row("Rec-17", &t);
    }
    for (name, mut spec) in SyntheticTraceSpec::paper_series() {
        spec.duration_secs = (spec.duration_secs / scale.max(1.0)).max(10.0);
        // syn-4 at 0.1 ms inter-arrival stays substantial even scaled.
        let t = spec.generate(18);
        print_row(&name, &t);
    }

    println!("\npaper reference (Table 1, full scale):");
    println!("  B-Root-16   137M records, 3600s, 27µs ±619µs,  1.07M clients");
    println!("  B-Root-17a  141M records, 3600s, 23µs ±1647µs, 1.17M clients");
    println!("  B-Root-17b   53M records, 1200s, 25µs ±1536µs, 725k clients");
    println!("  Rec-17       20k records, 3600s, 0.18s ±0.36s,  91 clients");
    println!("  syn-0..4    3.6k..36M records at 1s..0.1ms fixed inter-arrival");
}
