//! Figure 9: single-host fast-replay throughput — a continuous query
//! stream over UDP with timers disabled, sampled every two seconds
//! (paper §4.3: 87 k q/s ≈ 2× a root letter's normal load, ~60 Mb/s,
//! with 1 distributor + 6 queriers on one 4-core host).
//!
//! `cargo run --release -p ldp-bench --bin fig09 [-- --seconds 20]`

use std::sync::atomic::Ordering;
use std::sync::Arc;

use ldp_bench::arg_f64;
use ldp_core::wildcard_zone;
use ldp_replay::{replay, ReplayConfig};
use workloads::SyntheticTraceSpec;

fn main() {
    let seconds = arg_f64("--seconds", 20.0);
    let queriers = arg_f64("--queriers", 6.0) as usize;

    // A real answering server on loopback (tokio), like the paper's
    // authoritative host with the example.com wildcard zone.
    let runtime = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(4)
        .enable_all()
        .build()
        .unwrap();
    let mut catalog = dns_zone::Catalog::new();
    catalog.insert(wildcard_zone("example.com"));
    let engine = Arc::new(dns_server::ServerEngine::with_catalog(catalog));
    let server = runtime
        .block_on(dns_server::spawn(engine, dns_server::ServerConfig::default()))
        .expect("bind server");

    // Continuous stream: nominal 0.1 ms inter-arrivals, replayed in
    // fast mode (no timers) — the generator saturates, as in the paper.
    let n = (seconds * 150_000.0) as usize; // enough to keep senders busy
    let mut spec = SyntheticTraceSpec::fixed_interarrival(seconds / n as f64, seconds);
    spec.client_pool = 1000;
    let trace = spec.generate(9);
    println!(
        "fast replay of {} queries, 1 distributor × {queriers} queriers…",
        trace.len()
    );

    let config = ReplayConfig {
        target_udp: server.udp_addr,
        target_tcp: server.tcp_addr,
        fast_mode: true,
        distributors: 1,
        queriers_per_distributor: queriers,
        ..Default::default()
    };
    let report = replay(&trace, &config);

    // Per-2-second throughput samples from the send log (Figure 9's
    // sampling interval).
    let mut sorted: Vec<u64> = report.sent.iter().map(|r| r.sent_us).collect();
    sorted.sort_unstable();
    let mut bucket = 0u64;
    let mut counts = Vec::new();
    let mut cur = 0u64;
    for us in &sorted {
        while *us >= (bucket + 1) * 2_000_000 {
            counts.push(cur);
            cur = 0;
            bucket += 1;
        }
        cur += 1;
    }
    counts.push(cur);
    println!("\n time(s)   rate (q/s)   bandwidth (Mb/s, ~86B frames)");
    for (i, c) in counts.iter().enumerate() {
        let qps = *c as f64 / 2.0;
        println!("{:>7}   {:>10.0}   {:>10.1}", (i + 1) * 2, qps, qps * 86.0 * 8.0 / 1e6);
    }

    let rate = report.total_sent as f64 / report.elapsed.as_secs_f64();
    let answered = server.counters.udp_queries.load(Ordering::Relaxed);
    println!(
        "\noverall: {} queries in {:.2?} → {:.0} q/s sustained; server answered {answered}",
        report.total_sent, report.elapsed, rate
    );
    println!("paper: ~87k q/s (~60 Mb/s) sustained over 5 minutes on one host");
    server.shutdown();
}
