//! `fig_trace`: per-stage latency breakdown of a B-Root replay, from
//! the ldp-telemetry event stream (ISSUE 4 tentpole demonstration).
//!
//! A scaled B-Root-17a trace is replayed by [`SimReplayClient`] against
//! a [`SimDnsServer`] root zone inside the deterministic simulator,
//! with telemetry enabled. The drained event log yields:
//!
//! * the per-query lifecycle breakdown (enqueue → send → response →
//!   match) with five-number summaries and CDFs per stage,
//! * event counts by kind (including server parse/lookup/encode spans
//!   and the simulator's batched dispatch counters and fault marks),
//! * a folded-stacks flamegraph dump of the server stages, and
//! * a timeline excerpt.
//!
//! The run doubles as the ISSUE's determinism gate: two telemetry-on
//! runs must drain byte-identical event logs, the latency log must be
//! byte-identical with telemetry on vs off, and the BTree queue backend
//! must reproduce both. Exits nonzero if any gate fails. The full run
//! also writes `results/fig_trace.txt`.
//!
//! `cargo run --release -p ldp-bench --bin fig_trace [-- --seed 11 --smoke]`

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};

use dns_server::{ServerEngine, SimDnsServer};
use dns_wire::{Name, RData, Record, Soa};
use dns_zone::{Catalog, Zone};
use ldp_bench::{arg_f64, arg_flag, cdf_rows};
use ldp_replay::{LatencyLog, SimReplayClient};
use ldp_telemetry as tel;
use ldp_trace::TraceEntry;
use netsim::{PathConfig, QueueKind, SimConfig, SimDuration, SimTime, Simulator, Topology};
use workloads::broot::BRootSpec;

fn n(s: &str) -> Name {
    s.parse().expect("static name is valid")
}

/// A minimal root zone: SOA plus a few TLD delegations, enough for the
/// server to answer every B-Root query (referral or NXDOMAIN) without
/// pretending to hold real root data.
fn root_engine() -> Arc<ServerEngine> {
    let mut z = Zone::new(Name::root());
    z.insert(Record::new(
        Name::root(),
        86400,
        RData::Soa(Soa {
            mname: n("a.root-servers.net"),
            rname: n("nstld.verisign-grs.com"),
            serial: 2018_01_01,
            refresh: 1800,
            retry: 900,
            expire: 604_800,
            minimum: 86400,
        }),
    ))
    .expect("SOA inserts into fresh zone");
    for (tld, ns) in [("com", "a.gtld-servers.net"), ("net", "a.gtld-servers.net"), ("org", "a0.org.afilias-nst.info")] {
        z.insert(Record::new(n(tld), 172_800, RData::Ns(n(ns))))
            .expect("NS inserts into fresh zone");
    }
    let mut cat = Catalog::new();
    cat.insert(z);
    Arc::new(ServerEngine::with_catalog(cat))
}

/// One replay of `trace` through the simulator. Returns the latency
/// log rendered as deterministic text (the transcript the gates
/// compare) and, when telemetry is enabled, the drained events.
fn run_once(
    trace: &[TraceEntry],
    server_addr: SocketAddr,
    horizon_s: f64,
    queue: QueueKind,
    telemetry: bool,
) -> (String, Vec<tel::RawEvent>) {
    tel::set_enabled(false);
    let _ = tel::drain_all(); // discard any leftovers from a prior run
    tel::set_enabled(telemetry);

    let mut sim = Simulator::new(
        Topology::uniform(PathConfig {
            rtt: SimDuration::from_millis(40),
            bandwidth_bps: None,
            loss: 0.0,
        }),
        SimConfig { queue, ..SimConfig::default() },
    );
    sim.add_host(
        &[server_addr.ip()],
        Box::new(SimDnsServer::new(root_engine(), server_addr, Some(SimDuration::from_secs(20)))),
    );
    let log: LatencyLog = Arc::new(Mutex::new(vec![]));
    let client = SimReplayClient::new(trace.to_vec(), server_addr, log.clone());
    let srcs = client.source_addrs();
    let client_id = sim.add_host(&srcs, Box::new(client));
    SimReplayClient::schedule(&mut sim, client_id, trace, SimTime::ZERO);
    sim.run_until(SimTime::from_secs_f64(horizon_s));

    let mut records = log.lock().expect("latency log lock").clone();
    records.sort_by_key(|r| r.seq);
    let mut transcript = String::new();
    for r in &records {
        let _ = writeln!(
            transcript,
            "q{} sent={:.6} replied={:.6} bytes={}",
            r.seq, r.sent_s, r.replied_s, r.response_bytes
        );
    }
    let events = if telemetry { tel::drain_all() } else { Vec::new() };
    tel::set_enabled(false);
    (transcript, events)
}

fn main() {
    let seed = arg_f64("--seed", 11.0) as u64;
    let smoke = arg_flag("--smoke");
    // Scale keeps the full event stream inside one ring buffer
    // (~3 k queries × ~14 events ≈ 41 k of 64 Ki slots).
    let scale = arg_f64("--scale", if smoke { 8000.0 } else { 800.0 });
    let secs = arg_f64("--secs", if smoke { 20.0 } else { 60.0 });
    let mut failed = false;

    let spec = BRootSpec { duration_secs: secs, ..BRootSpec::b_root_17a().scaled(scale) };
    let server_addr = spec.server;
    let trace = spec.generate(seed);
    let horizon = secs + 10.0;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fig_trace: B-Root-17a/{scale:.0} replay, {} queries over {secs:.0}s, seed {seed}{}",
        trace.len(),
        if smoke { " (smoke)" } else { "" }
    );

    // Timestamps recorded through spans follow the simulator's
    // published virtual time, so reruns drain identical logs.
    tel::clock::use_virtual_clock();

    // Determinism gates (ISSUE 4 acceptance criteria).
    let (lat_on_a, events) = run_once(&trace, server_addr, horizon, QueueKind::Heap, true);
    let (lat_on_b, events_b) = run_once(&trace, server_addr, horizon, QueueKind::Heap, true);
    let (lat_off, _) = run_once(&trace, server_addr, horizon, QueueKind::Heap, false);
    let (lat_btree, events_btree) = run_once(&trace, server_addr, horizon, QueueKind::BTree, true);
    tel::clock::use_zero_clock();

    let log_a = tel::render_timeline(&events);
    let rerun_ok = log_a == tel::render_timeline(&events_b);
    let onoff_ok = lat_on_a == lat_off && lat_on_a == lat_on_b;
    let backend_ok = lat_on_a == lat_btree && log_a == tel::render_timeline(&events_btree);
    let _ = writeln!(
        out,
        "determinism: event logs rerun {} ({} events), latency on/off {}, heap vs btree {}",
        if rerun_ok { "byte-identical" } else { "MISMATCH" },
        events.len(),
        if onoff_ok { "byte-identical" } else { "MISMATCH" },
        if backend_ok { "byte-identical" } else { "MISMATCH" },
    );
    failed |= !rerun_ok || !onoff_ok || !backend_ok;
    if events.is_empty() {
        let _ = writeln!(out, "gate: FAIL — telemetry-enabled run drained no events");
        failed = true;
    }

    // Per-query lifecycle breakdown.
    let chain = [
        tel::register_kind("q.enqueue"),
        tel::register_kind("q.send"),
        tel::register_kind("q.response"),
        tel::register_kind("q.match"),
    ];
    let breakdown = tel::stage_breakdown(&events, &chain);
    let _ = writeln!(out, "\nper-stage latency (s), first-send lifecycles:");
    for stage in &breakdown.stages {
        let label = stage.label();
        match stage.summary() {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "  {label:<24} n={:<6} min={:.6} p50={:.6} p95={:.6} max={:.6} unfinished={}",
                    s.count, s.min, s.median, s.p95, s.max, stage.unfinished
                );
                for row in cdf_rows(&label, &stage.samples_secs, "s") {
                    let _ = writeln!(out, "    {row}");
                }
            }
            None => {
                let _ = writeln!(out, "  {label:<24} (no samples, unfinished={})", stage.unfinished);
            }
        }
    }

    // Σb is the payload total per kind — for the simulator's batched
    // dispatch counters (sim.deliver, sim.host_timer) it is the real
    // dispatch count; for marks it sums bytes/id payloads.
    let _ = writeln!(out, "\nevent counts by kind (n events, Σb payload):");
    for (name, count, b_sum) in tel::count_by_kind(&events) {
        let _ = writeln!(out, "  {name:<24} n={count:<8} Σb={b_sum}");
    }

    let _ = writeln!(out, "\nfolded stacks (flamegraph input, self-time ns):");
    for line in tel::folded_stacks(&events).lines().take(16) {
        let _ = writeln!(out, "  {line}");
    }

    let _ = writeln!(out, "\ntimeline excerpt (first 24 events):");
    for line in log_a.lines().take(24) {
        let _ = writeln!(out, "  {line}");
    }

    print!("{out}");
    if !smoke {
        if let Err(e) = std::fs::create_dir_all("results")
            .and_then(|()| std::fs::write("results/fig_trace.txt", &out))
        {
            eprintln!("fig_trace: cannot write results/fig_trace.txt: {e}");
            failed = true;
        } else {
            println!("\nwrote results/fig_trace.txt");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
