//! Figure 11: server CPU usage vs TCP idle-timeout window, for the
//! original trace mix (3 % TCP), all-TCP and all-TLS (paper §5.2.3).
//! The paper's shape: flat in the timeout; all-TCP ≈ 5 % < original mix
//! ≈ 10 % (NIC offload!) and all-TLS ≈ 9–10 %, slightly higher at the
//! 5 s timeout from extra handshakes.
//!
//! `cargo run --release -p ldp-bench --bin fig11 [-- --scale 40]`

use std::sync::Arc;

use dns_server::ServerEngine;
use dns_wire::Transport;
use dns_zone::Catalog;
use ldp_bench::arg_f64;
use ldp_core::{synthetic_root_zone, transport_experiment, TransportExperiment};
use netsim::SimDuration;
use workloads::BRootSpec;

fn main() {
    let scale = arg_f64("--scale", 40.0);
    let spec = BRootSpec {
        duration_secs: 300.0,
        ..BRootSpec::b_root_17a().scaled(scale)
    };
    let trace = spec.generate(17);
    println!(
        "B-Root-17a-like: {} queries over {}s (scale {scale})\n",
        trace.len(),
        spec.duration_secs
    );
    println!("CPU%% is reported at full-scale equivalence: the per-query cost model is");
    println!("linear in rate, so percent at scale N is multiplied by N to recover the");
    println!("48-core full-rate figure. The shape (flatness, ordering) is scale-free.\n");

    let mut catalog = Catalog::new();
    catalog.insert(synthetic_root_zone());
    let engine = Arc::new(ServerEngine::with_catalog(catalog));

    let cpu = netsim::CpuModel::default();

    println!(
        "{:<10} {:>18} {:>14} {:>14}",
        "timeout", "original (3% TCP)", "all TCP", "all TLS"
    );
    for timeout_s in [5u64, 10, 15, 20, 25, 30, 35, 40] {
        let mut row = format!("{:<10}", format!("{timeout_s}s"));
        for transport in [None, Some(Transport::Tcp), Some(Transport::Tls)] {
            let config = TransportExperiment {
                transport,
                idle_timeout: SimDuration::from_secs(timeout_s),
                sample_every: 30.0,
                cpu,
                ..Default::default()
            };
            let r = transport_experiment(engine.clone(), &trace, &config);
            let width = if transport.is_none() { 18 } else { 14 };
            row.push_str(&format!("{:>width$.2}%", r.cpu_percent * scale, width = width - 1));
        }
        println!("{row}");
    }
    println!("\npaper: original ~10%, all-TCP ~5%, all-TLS ~9-10%; flat in timeout,");
    println!("TLS ~2% higher at 5s (handshake churn). The UDP>TCP inversion comes");
    println!("from NIC TCP offload, modelled in CpuModel (see EXPERIMENTS.md).");
}
