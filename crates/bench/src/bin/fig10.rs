//! Figure 10: response bandwidth under different DNSSEC ZSK sizes and
//! DO fractions (paper §5.1). Six bars: {72.3 %, 100 %} DO × {1024,
//! 2048, 2048-rollover} ZSK; the headline deltas are 72.3→100 % DO at
//! 2048-bit ⇒ +31 %, and the 1024→2048 rollover ⇒ +32 %.
//!
//! `cargo run --release -p ldp-bench --bin fig10 [-- --scale 20]`

use ldp_bench::{arg_f64, boxplot_row};
use ldp_core::{dnssec_bandwidth, synthetic_root_zone};
use workloads::BRootSpec;

fn main() {
    let scale = arg_f64("--scale", 20.0);
    let spec = BRootSpec {
        duration_secs: 120.0,
        ..BRootSpec::b_root_16_like().scaled(scale)
    };
    let trace = spec.generate(16);
    let root = synthetic_root_zone();
    println!(
        "B-Root-16-like trace: {} queries at {:.0} q/s (scale {scale}; bandwidth scales with rate)\n",
        trace.len(),
        trace.len() as f64 / spec.duration_secs
    );

    let mut medians = std::collections::HashMap::new();
    for (do_frac, group) in [(0.723, "72.3% DO (current)"), (1.0, "100% DO (what-if)")] {
        println!("── {group} ──");
        for (bits, rollover, label) in [
            (1024, false, "ZSK 1024"),
            (2048, false, "ZSK 2048"),
            (2048, true, "ZSK 2048 rollover"),
        ] {
            let r = dnssec_bandwidth(&root, &trace, bits, rollover, do_frac);
            println!("{}", boxplot_row(label, &r.summary, " Mb/s"));
            medians.insert((do_frac.to_bits(), bits, rollover), r.summary.median);
        }
        println!();
    }

    let cur = medians[&(0.723f64.to_bits(), 2048, false)];
    let all = medians[&(1.0f64.to_bits(), 2048, false)];
    let k1024 = medians[&(0.723f64.to_bits(), 1024, false)];
    let roll = medians[&(0.723f64.to_bits(), 2048, true)];
    println!("deltas (medians):");
    println!(
        "  72.3% → 100% DO at 2048-bit ZSK: {:+.0}%   (paper: +31%, 225 → 296 Mb/s at full scale)",
        (all / cur - 1.0) * 100.0
    );
    println!(
        "  1024 → 2048-bit ZSK at 72.3% DO: {:+.0}%   (paper: +32% for the root ZSK upgrade)",
        (cur / k1024 - 1.0) * 100.0
    );
    println!(
        "  2048 normal → rollover:          {:+.0}%   (paper: rollover bars visibly higher)",
        (roll / cur - 1.0) * 100.0
    );
}
