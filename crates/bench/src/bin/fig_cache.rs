//! `fig_cache`: the delayed-hits caching study — the resolver-caching
//! what-if of paper §5 made runnable. One recursive resolver backed by
//! `ldp-cache` (bounded store, in-flight aggregation, RFC 2308 negative
//! caching) serves a heavy-tailed Zipf stub workload, and we report the
//! hit / delayed-hit / miss split plus client-latency CDFs per class as
//! cache capacity and eviction policy vary — then repeat a leg with the
//! upstream servers crashed for a window to show aggregation riding
//! through an outage.
//!
//! The run doubles as a regression gate: it first proves same-seed runs
//! are byte-identical (rerun, Heap vs BTree backend, telemetry on vs
//! off), that a cold-name burst coalesces onto exactly one upstream
//! query, and that bounded eviction is deterministic; it exits nonzero
//! if any check fails.
//!
//! `cargo run --release -p ldp-bench --bin fig_cache [-- --seed 11 --smoke]`

use dns_resolver::sim_resolver::AnswerClass;
use ldp_bench::{arg_f64, arg_flag, cdf_rows};
use ldp_chaos::delayed::{run, DelayedConfig, DelayedOutcome, PolicyKind};
use ldp_telemetry as tel;
use netsim::{QueueKind, SimDuration, SimTime};

fn cfg_for(capacity: usize, policy: PolicyKind, seed: u64, queue: QueueKind, smoke: bool) -> DelayedConfig {
    if smoke {
        DelayedConfig::smoke(capacity, policy, seed, queue)
    } else {
        DelayedConfig::standard(capacity, policy, seed, queue)
    }
}

/// Transcript minus its 2-line header (which names the queue backend).
fn body(transcript: &str) -> String {
    transcript.lines().skip(2).collect::<Vec<_>>().join("\n")
}

fn cap_label(capacity: usize) -> String {
    if capacity == usize::MAX {
        "inf".to_string()
    } else {
        capacity.to_string()
    }
}

fn split_row(label: &str, out: &DelayedOutcome) -> String {
    format!(
        "{:<28} {:>6} {:>12} {:>6} {:>9} {:>9} {:>9.1}%",
        label,
        out.count(AnswerClass::Hit),
        out.count(AnswerClass::DelayedHit),
        out.count(AnswerClass::Miss),
        out.count(AnswerClass::ServFail),
        out.snapshot.stats.evictions,
        out.ok_fraction() * 100.0
    )
}

fn main() {
    let seed = arg_f64("--seed", 11.0) as u64;
    let smoke = arg_flag("--smoke");
    let mut failed = false;

    let capacities: [usize; 2] = if smoke { [24, 96] } else { [64, 256] };
    let shape = cfg_for(capacities[0], PolicyKind::Lru, seed, QueueKind::Heap, smoke);
    println!(
        "delayed-hits caching study: {} names (zipf s={}), {} queries at {} ms spacing,",
        shape.names,
        shape.zipf_s,
        shape.queries,
        shape.query_gap.as_nanos() / 1_000_000
    );
    println!(
        "record TTL {}s, every {}th rank NXDOMAIN, {} upstream servers, seed {seed}{}\n",
        shape.record_ttl,
        shape.nx_every,
        shape.servers,
        if smoke { " (smoke)" } else { "" }
    );

    // Determinism gate: same seed → byte-identical transcripts on a
    // rerun, across both event-queue backends, and with telemetry
    // enabled vs disabled (telemetry must be a pure observer).
    let heap_a = run(&shape);
    let heap_b = run(&shape);
    let btree = run(&cfg_for(capacities[0], PolicyKind::Lru, seed, QueueKind::BTree, smoke));
    tel::set_enabled(true);
    let _ = tel::drain_all();
    let telem_on = run(&shape);
    let _ = tel::drain_all();
    tel::set_enabled(false);
    let rerun_ok = heap_a.transcript == heap_b.transcript;
    let backend_ok = body(&heap_a.transcript) == body(&btree.transcript);
    let telem_ok = heap_a.transcript == telem_on.transcript;
    println!(
        "determinism: same-seed rerun {} ({} transcript bytes), heap vs btree {}, telemetry on/off {}",
        if rerun_ok { "byte-identical" } else { "MISMATCH" },
        heap_a.transcript.len(),
        if backend_ok { "byte-identical" } else { "MISMATCH" },
        if telem_ok { "byte-identical" } else { "MISMATCH" },
    );
    failed |= !rerun_ok || !backend_ok || !telem_ok;

    // Dedup gate: a cold-name burst of 8 concurrent stubs must reach
    // the upstream exactly once and come back as 1 miss + 7 delayed
    // hits.
    let burst = run(&DelayedConfig::burst(8, seed, QueueKind::Heap));
    let dedup_ok = burst.upstream_rx == 1
        && burst.count(AnswerClass::Miss) == 1
        && burst.count(AnswerClass::DelayedHit) == 7
        && burst.ok_fraction() >= 1.0;
    println!(
        "dedup: 8-stub cold burst → {} upstream query(s), {} miss + {} delayed hits — {}",
        burst.upstream_rx,
        burst.count(AnswerClass::Miss),
        burst.count(AnswerClass::DelayedHit),
        if dedup_ok { "ok" } else { "FAIL" }
    );
    failed |= !dedup_ok;

    // Eviction gate: a bounded run must actually evict, stay within
    // capacity, and do so identically on a rerun (deterministic
    // rank-based eviction, no ambient state).
    let bounded = cfg_for(capacities[0], PolicyKind::DelayAware, seed, QueueKind::Heap, smoke);
    let ev_a = run(&bounded);
    let ev_b = run(&bounded);
    let evict_ok = ev_a.snapshot.stats.evictions > 0
        && ev_a.snapshot.cache_len <= capacities[0]
        && ev_a.transcript == ev_b.transcript;
    println!(
        "eviction: capacity {} ({}) evicted {} entries, rerun {} — {}\n",
        capacities[0],
        bounded.policy.label(),
        ev_a.snapshot.stats.evictions,
        if ev_a.transcript == ev_b.transcript { "byte-identical" } else { "MISMATCH" },
        if evict_ok { "ok" } else { "FAIL" }
    );
    failed |= !evict_ok;

    // The study grid: capacity × eviction policy, plus an unbounded
    // baseline, all on the identical workload (same seed → same query
    // sequence, so the split differences are purely the cache's).
    println!(
        "{:<28} {:>6} {:>12} {:>6} {:>9} {:>9} {:>10}",
        "capacity/policy", "hits", "delayed-hits", "miss", "servfail", "evicted", "answered"
    );
    let baseline = run(&cfg_for(usize::MAX, PolicyKind::Lru, seed, QueueKind::Heap, smoke));
    println!("{}", split_row("inf/any", &baseline));
    failed |= baseline.ok_fraction() < 1.0;
    let mut grid = Vec::new();
    for &cap in &capacities {
        for policy in PolicyKind::ALL {
            let cfg = cfg_for(cap, policy, seed, QueueKind::Heap, smoke);
            let out = run(&cfg);
            let label = format!("{}/{}", cap_label(cap), policy.label());
            println!("{}", split_row(&label, &out));
            failed |= out.ok_fraction() < 1.0;
            grid.push((label, out));
        }
    }

    println!("\nclient latency CDFs (s), by answer class:");
    for (label, out) in &grid {
        for class in [AnswerClass::Hit, AnswerClass::DelayedHit, AnswerClass::Miss] {
            let samples = out.latencies_secs(class);
            for row in cdf_rows(&format!("{label}/{}", class.label()), &samples, "s") {
                println!("  {row}");
            }
        }
        println!();
    }

    // Outage leg: same workload, every upstream server crashed for a
    // window mid-run. In-flight aggregation holds each cold name's
    // waiters on ONE retrying resolution instead of hammering the dead
    // upstreams, and the retry budget outlasts the outage — so the
    // study still answers everything, just slower.
    let mut outage = cfg_for(capacities[1], PolicyKind::Lru, seed, QueueKind::Heap, smoke);
    let span = outage.query_gap.times(outage.queries as u64).as_secs_f64();
    outage.crash = Some((
        SimTime::from_secs_f64(1.0 + span * 0.2),
        SimTime::from_secs_f64(1.0 + span * 0.8),
    ));
    outage.delay_spike = Some((
        SimTime::from_secs_f64(1.0 + span * 0.2),
        SimTime::from_secs_f64(1.0 + span * 0.8),
        SimDuration::from_millis(100),
    ));
    let out = run(&outage);
    println!("outage leg: all upstreams down over ~60% of the run (+100ms delay spike):");
    println!(
        "{:<28} {:>6} {:>12} {:>6} {:>9} {:>9} {:>10}",
        "capacity/policy", "hits", "delayed-hits", "miss", "servfail", "evicted", "answered"
    );
    println!("{}", split_row(&format!("{}/{} (outage)", cap_label(outage.capacity), outage.policy.label()), &out));
    for class in [AnswerClass::Hit, AnswerClass::DelayedHit, AnswerClass::Miss] {
        let samples = out.latencies_secs(class);
        for row in cdf_rows(&format!("outage/{}", class.label()), &samples, "s") {
            println!("  {row}");
        }
    }
    let outage_ok = out.ok_fraction() >= 1.0 && out.count(AnswerClass::DelayedHit) > 0;
    println!(
        "gate: outage leg answered {:>6.2}% with {} delayed hits — {}",
        out.ok_fraction() * 100.0,
        out.count(AnswerClass::DelayedHit),
        if outage_ok { "ok" } else { "FAIL" }
    );
    failed |= !outage_ok;

    println!("\ntakeaway: under a heavy-tailed workload most queries are plain hits, but the");
    println!("head-of-line misses each drag a train of coalesced waiters (delayed hits) whose");
    println!("latency is set by the upstream fill, not the cache — so capacity and policy");
    println!("move the miss column while aggregation bounds upstream load even mid-outage.");

    if failed {
        std::process::exit(1);
    }
}
