//! Ablations of LDplayer's design choices (DESIGN.md §5): each section
//! removes one mechanism and measures what the paper's design buys.
//!
//! 1. timing catch-up (re-anchored ΔTᵢ) vs naive gap-sleeping;
//! 2. connection reuse (sticky same-source) vs fresh-per-query;
//! 3. split-horizon meta-server vs one server process per zone;
//! 4. two-level distribution vs direct controller→querier fan-out.
//!
//! `cargo run --release -p ldp-bench --bin ablations`

use std::net::UdpSocket;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dns_wire::Transport;
use ldp_bench::arg_f64;
use ldp_metrics::Summary;
use ldp_replay::{replay, LatencyLog, ReplayConfig, SimReplayClient};
use workloads::{RecursiveSpec, SyntheticTraceSpec};

fn main() {
    ablation_timing();
    ablation_connection_reuse();
    ablation_meta_server_memory();
    ablation_distribution_levels();
}

/// 1. The ΔTᵢ = Δt̄ᵢ − Δtᵢ re-anchoring vs a naive replayer that sleeps
///    each inter-arrival gap: per-send overhead accumulates into drift.
fn ablation_timing() {
    println!("══ Ablation 1: timing catch-up vs naive gap-sleeping ══\n");
    let seconds = arg_f64("--seconds", 5.0);
    let mut spec = SyntheticTraceSpec::fixed_interarrival(0.001, seconds);
    spec.client_pool = 100;
    let trace = spec.generate(1);

    // Naive: sleep(gap) then send — every microsecond of overhead
    // accumulates (this is what generic packet replayers do).
    let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
    let target = sink.local_addr().unwrap();
    let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
    let start = Instant::now();
    let mut naive_errors_us: Vec<f64> = Vec::with_capacity(trace.len());
    let t0 = trace[0].time_us;
    for pair in trace.windows(2) {
        let gap = Duration::from_micros(pair[1].time_us - pair[0].time_us);
        std::thread::sleep(gap);
        let payload = pair[1].message.encode();
        let _ = sock.send_to(&payload, target);
        let intended = (pair[1].time_us - t0) as f64;
        let actual = start.elapsed().as_micros() as f64;
        naive_errors_us.push(actual - intended);
    }
    let naive = Summary::of(&naive_errors_us).unwrap();

    // LDplayer: re-anchored deadlines.
    let config = ReplayConfig {
        target_udp: target,
        target_tcp: target,
        distributors: 1,
        queriers_per_distributor: 2,
        warmup: Duration::from_millis(20),
        ..Default::default()
    };
    let report = replay(&trace, &config);
    let ldp_errors = report.timing_errors_us(t0, 1.0);
    let ldp = Summary::of(&ldp_errors).unwrap();

    println!("naive gap-sleep : median {:>9.1} µs  q3 {:>9.1} µs  max {:>10.1} µs (drift!)",
        naive.median, naive.q3, naive.max);
    println!("LDplayer ΔTᵢ    : median {:>9.1} µs  q3 {:>9.1} µs  max {:>10.1} µs",
        ldp.median, ldp.q3, ldp.max);
    println!(
        "drift at end of {seconds}s trace: naive {:+.1} ms vs LDplayer {:+.1} ms\n",
        naive_errors_us.last().unwrap_or(&0.0) / 1e3,
        ldp_errors.last().unwrap_or(&0.0) / 1e3
    );
}

/// 2. Connection reuse vs fresh-per-query over simulated TCP at 40 ms
///    RTT: reuse removes the handshake from the common case.
fn ablation_connection_reuse() {
    println!("══ Ablation 2: same-source connection reuse vs fresh per query ══\n");
    let trace = {
        let mut spec = SyntheticTraceSpec::fixed_interarrival(0.005, 20.0);
        spec.client_pool = 50;
        spec.generate(2)
    };
    for reuse in [true, false] {
        let mut sim = netsim::Simulator::new(
            netsim::Topology::uniform(netsim::PathConfig::with_rtt(
                netsim::SimDuration::from_millis(40),
            )),
            netsim::SimConfig::default(),
        );
        let server_addr: std::net::SocketAddr = "10.99.0.1:53".parse().unwrap();
        let mut catalog = dns_zone::Catalog::new();
        catalog.insert(ldp_core::wildcard_zone("example.com"));
        let engine = Arc::new(dns_server::ServerEngine::with_catalog(catalog));
        let server = sim.add_host(
            &[server_addr.ip()],
            Box::new(dns_server::SimDnsServer::new(
                engine,
                server_addr,
                Some(netsim::SimDuration::from_secs(20)),
            )),
        );
        let log: LatencyLog = Arc::new(Mutex::new(vec![]));
        let mut client = SimReplayClient::new(trace.clone(), server_addr, log.clone());
        client.transport_override = Some(Transport::Tcp);
        client.reuse_connections = reuse;
        let sources = client.source_addrs();
        let client_id = sim.add_host(&sources, Box::new(client));
        SimReplayClient::schedule(&mut sim, client_id, &trace, netsim::SimTime::ZERO);
        sim.run_until(netsim::SimTime::from_secs_f64(120.0));
        let lat: Vec<f64> = log.lock().unwrap().iter().map(|r| r.latency() * 1e3).collect();
        let s = Summary::of(&lat).unwrap();
        println!(
            "reuse={reuse:<5} median {:>7.1} ms  q3 {:>7.1} ms  (answers {}, server accepts {})",
            s.median,
            s.q3,
            lat.len(),
            sim.stats(server).tcp_accepts
        );
    }
    println!("expected: reuse ≈ 1 RTT (40 ms) steady-state; fresh ≈ 2 RTT (80 ms)\n");
}

/// 3. Hosting N zones: one split-horizon meta-server process vs one
///    server process per zone (the naive testbed the paper §2.4 rejects).
fn ablation_meta_server_memory() {
    println!("══ Ablation 3: split-horizon meta-server vs per-zone servers ══\n");
    let spec = RecursiveSpec::rec_17();
    let zone_names = spec.zone_names();
    // Per-process overhead of a real DNS server (order of BIND/NSD RSS
    // at idle) and per-zone data cost.
    let process_overhead: u64 = 50 * 1024 * 1024;
    let per_zone_data: u64 = 256 * 1024;
    let n = zone_names.len() as u64 + 2; // + root and TLD levels
    let per_zone_servers = n * (process_overhead + per_zone_data);
    let meta_server = process_overhead + n * per_zone_data;
    println!("zones to host: {n} (Rec-17 sees 549 SLD zones; paper Table 1)");
    println!(
        "per-zone servers: {n} processes ≈ {:>7.1} MiB (+ {n} (virtual) NICs, routes)",
        per_zone_servers as f64 / (1024.0 * 1024.0)
    );
    println!(
        "meta-DNS-server : 1 process   ≈ {:>7.1} MiB (+ 1 address, proxies)",
        meta_server as f64 / (1024.0 * 1024.0)
    );
    println!(
        "reduction: {:.0}× less memory, {n}× fewer processes/interfaces\n",
        per_zone_servers as f64 / meta_server as f64
    );
}

/// 4. Two-level distribution (controller→distributors→queriers) vs
///    direct fan-out, at the same total querier count, fast mode.
fn ablation_distribution_levels() {
    println!("══ Ablation 4: two-level vs one-level query distribution ══\n");
    let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
    let target = sink.local_addr().unwrap();
    let mut spec = SyntheticTraceSpec::fixed_interarrival(0.00001, 2.0);
    spec.client_pool = 500;
    let trace = spec.generate(3);
    for (label, d, q) in [("one-level (1×6)", 1usize, 6usize), ("two-level (2×3)", 2, 3), ("two-level (3×2)", 3, 2)] {
        let config = ReplayConfig {
            target_udp: target,
            target_tcp: target,
            fast_mode: true,
            distributors: d,
            queriers_per_distributor: q,
            ..Default::default()
        };
        let report = replay(&trace, &config);
        println!(
            "{label:<18} {:>8.0} q/s  ({} queries in {:.2?})",
            report.total_sent as f64 / report.elapsed.as_secs_f64(),
            report.total_sent,
            report.elapsed
        );
    }
    println!("expected: similar rates — levels exist for connection-count limits,");
    println!("not speed (paper §2.6: 65k-connection fan-out bound per level).");
}
