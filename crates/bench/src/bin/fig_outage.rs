//! `fig_outage`: the root-letter outage study — §1's motivating
//! root-DDoS what-if made runnable. 13 root-letter servers behind one
//! recursive resolver; at t=5 s three letters crash and a 10 % loss
//! burst starts on every path; at t=13 s the letters restart and the
//! burst ends. 300 stub queries at 50 ms spacing flow through the
//! resolver under three retry policies, and we report answered
//! fractions and latency CDFs by phase (before / during / after the
//! outage window).
//!
//! The run doubles as a regression gate: it first proves two same-seed
//! runs are byte-identical across both event-queue backends, then
//! asserts the failover policies answer ≥ 99 % of queries through the
//! outage, and exits nonzero if either check fails.
//!
//! `cargo run --release -p ldp-bench --bin fig_outage [-- --seed 11 --smoke]`

use ldp_bench::{arg_f64, arg_flag, cdf_rows};
use ldp_chaos::outage::{run, OutageConfig, OutageOutcome, Phase, RetryPolicy};
use netsim::QueueKind;

/// Answered-fraction floor for the failover policies (ISSUE 3
/// acceptance criterion).
const OK_FLOOR: f64 = 0.99;

fn cfg_for(policy: RetryPolicy, seed: u64, queue: QueueKind, smoke: bool) -> OutageConfig {
    if smoke {
        OutageConfig::smoke(policy, seed, queue)
    } else {
        OutageConfig::standard(policy, seed, queue)
    }
}

/// Transcript minus its header line (which names the queue backend).
fn body(transcript: &str) -> String {
    transcript.lines().skip(2).collect::<Vec<_>>().join("\n")
}

fn phase_cell(out: &OutageOutcome, cfg: &OutageConfig, phase: Phase) -> String {
    format!(
        "{}/{}",
        out.ok_in_phase(cfg, phase),
        out.sent_in_phase(cfg, phase)
    )
}

fn main() {
    let seed = arg_f64("--seed", 11.0) as u64;
    let smoke = arg_flag("--smoke");
    let mut failed = false;

    let shape = cfg_for(RetryPolicy::full(), seed, QueueKind::Heap, smoke);
    println!(
        "root-letter outage study: {} letters, {} crash over [{}s,{}s) with {:.0}% loss,",
        shape.letters,
        shape.crashed,
        shape.outage_start.as_secs_f64(),
        shape.outage_end.as_secs_f64(),
        shape.loss_rate * 100.0
    );
    println!(
        "{} stub queries at {} ms spacing, stub retries {}×{} ms, seed {seed}{}\n",
        shape.queries,
        shape.query_gap.as_nanos() / 1_000_000,
        shape.stub_attempts,
        shape.stub_retry_gap.as_nanos() / 1_000_000,
        if smoke { " (smoke)" } else { "" }
    );

    // Determinism gate: same seed → byte-identical transcripts, on one
    // backend and across both.
    let heap_a = run(&shape);
    let heap_b = run(&shape);
    let btree = run(&cfg_for(RetryPolicy::full(), seed, QueueKind::BTree, smoke));
    let rerun_ok = heap_a.transcript == heap_b.transcript;
    let backend_ok = body(&heap_a.transcript) == body(&btree.transcript);
    println!(
        "determinism: same-seed rerun {} ({} transcript bytes), heap vs btree {}",
        if rerun_ok { "byte-identical" } else { "MISMATCH" },
        heap_a.transcript.len(),
        if backend_ok { "byte-identical" } else { "MISMATCH" },
    );
    failed |= !rerun_ok || !backend_ok;

    let policies = [
        RetryPolicy::no_failover(),
        RetryPolicy::failover(),
        RetryPolicy::full(),
    ];
    println!(
        "\n{:<26} {:>12} {:>12} {:>12} {:>10}",
        "policy (ok/sent)", "before", "during", "after", "answered"
    );
    let mut outcomes = Vec::new();
    for policy in policies {
        let cfg = cfg_for(policy, seed, QueueKind::Heap, smoke);
        let out = run(&cfg);
        println!(
            "{:<26} {:>12} {:>12} {:>12} {:>9.1}%",
            policy.label,
            phase_cell(&out, &cfg, Phase::Before),
            phase_cell(&out, &cfg, Phase::During),
            phase_cell(&out, &cfg, Phase::After),
            out.ok_fraction() * 100.0
        );
        outcomes.push((cfg, out));
    }

    println!("\nanswer latency CDFs (s), by phase of first send:");
    for (cfg, out) in &outcomes {
        for phase in [Phase::Before, Phase::During, Phase::After] {
            let label = format!("{}/{:?}", cfg.policy.label, phase);
            let samples = out.latencies_secs(cfg, phase);
            for row in cdf_rows(&label, &samples, "s") {
                println!("  {row}");
            }
        }
        println!();
    }

    // Resilience gate: both failover policies must clear the floor; the
    // no-failover baseline must demonstrably lose queries during the
    // window (otherwise the fault plan injected nothing).
    for (cfg, out) in &outcomes[1..] {
        let frac = out.ok_fraction();
        let ok = frac >= OK_FLOOR;
        println!(
            "gate: {:<26} answered {:>6.2}% (floor {:.0}%) — {}",
            cfg.policy.label,
            frac * 100.0,
            OK_FLOOR * 100.0,
            if ok { "ok" } else { "FAIL" }
        );
        failed |= !ok;
    }
    let (base_cfg, base) = &outcomes[0];
    let degraded =
        base.ok_in_phase(base_cfg, Phase::During) < base.sent_in_phase(base_cfg, Phase::During);
    println!(
        "gate: {:<26} degrades during the outage — {}",
        base_cfg.policy.label,
        if degraded { "ok (faults are live)" } else { "FAIL (outage had no effect)" }
    );
    failed |= !degraded;

    println!(
        "\ntakeaway: a 3-of-13-letter outage plus 10% loss is survivable with plain"
    );
    println!(
        "failover (next-NS on timeout/SERVFAIL); backoff+rotation additionally spreads"
    );
    println!("retry load and keeps during-outage tail latency bounded by the retry budget.");

    if failed {
        std::process::exit(1);
    }
}
