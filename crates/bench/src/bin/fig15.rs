//! Figure 15: query latency vs client RTT with a 20 s TCP timeout
//! (paper §5.2.4) — (a) over all clients, (b) over non-busy clients
//! (<250 queries), (c) the per-client load CDF of the trace.
//!
//! Paper's shape: UDP flat at 1 RTT; TCP median close to UDP over all
//! clients (connection reuse weighted by busy clients) but ~2 RTT for
//! non-busy clients; TLS 2→4 RTT nonlinearly; long asymmetric tails.
//!
//! `cargo run --release -p ldp-bench --bin fig15 [-- --scale 40]`

use std::sync::Arc;

use dns_server::ServerEngine;
use dns_wire::Transport;
use dns_zone::Catalog;
use ldp_bench::{arg_f64, boxplot_row, cdf_rows};
use ldp_core::{synthetic_root_zone, transport_experiment, TransportExperiment};
use netsim::SimDuration;
use workloads::BRootSpec;

fn main() {
    let scale = arg_f64("--scale", 40.0);
    let spec = BRootSpec {
        duration_secs: 300.0,
        ..BRootSpec::b_root_17b().scaled(scale)
    };
    let trace = spec.generate(15);
    println!(
        "B-Root-17b-like: {} queries, {} distinct clients (scale {scale})\n",
        trace.len(),
        trace.iter().map(|e| e.src.ip()).collect::<std::collections::HashSet<_>>().len()
    );

    let mut catalog = Catalog::new();
    catalog.insert(synthetic_root_zone());
    let engine = Arc::new(ServerEngine::with_catalog(catalog));

    // ── Figure 15c: per-client load CDF ──
    let mut per_client: std::collections::HashMap<std::net::IpAddr, u64> = Default::default();
    for e in &trace {
        *per_client.entry(e.src.ip()).or_default() += 1;
    }
    let mut loads: Vec<f64> = per_client.values().map(|&c| c as f64).collect();
    loads.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!("── Figure 15c: per-client query count CDF ──");
    for row in cdf_rows("queries per client", &loads, "") {
        println!("{row}");
    }
    let total: f64 = loads.iter().sum();
    let top1 = loads.len().div_ceil(100);
    let top_share: f64 = loads.iter().rev().take(top1).sum::<f64>() / total;
    let low = loads.iter().filter(|&&l| l < 10.0).count() as f64 / loads.len() as f64;
    println!(
        "top 1% of clients carry {:.0}% of queries (paper: ~75%); {:.0}% of clients send <10 (paper: 81%)\n",
        top_share * 100.0,
        low * 100.0
    );

    // ── Figures 15a / 15b: latency vs RTT ──
    for (figure, filter) in [
        ("Figure 15a: all clients", None),
        ("Figure 15b: non-busy clients (<250 queries)", Some(250usize)),
    ] {
        println!("── {figure} ──");
        for rtt_ms in [0u64, 20, 40, 80, 120, 160] {
            println!(" RTT {rtt_ms} ms:");
            for (label, transport) in [
                ("original (3% TCP)", None),
                ("all TCP", Some(Transport::Tcp)),
                ("all TLS", Some(Transport::Tls)),
            ] {
                let config = TransportExperiment {
                    transport,
                    idle_timeout: SimDuration::from_secs(20),
                    rtt: SimDuration::from_millis(rtt_ms.max(1)),
                    sample_every: 60.0,
                    ..Default::default()
                };
                let r = transport_experiment(engine.clone(), &trace, &config);
                let summary = match filter {
                    None => r.latency_summary_ms(),
                    Some(maxq) => r.latency_summary_nonbusy_ms(maxq),
                };
                if let Some(s) = summary {
                    println!("  {}", boxplot_row(label, &s, "ms"));
                }
            }
        }
        println!();
    }
    println!("paper's shape: UDP ≈ 1 RTT flat; all-clients TCP median ≈ UDP at 20 ms RTT,");
    println!("~15% over UDP at 160 ms; non-busy TCP median ≈ 2 RTT; TLS grows 2→4 RTT;");
    println!("75th/95th percentiles fan out (fresh connections + Nagle/delayed-ACK stalls).");
}
