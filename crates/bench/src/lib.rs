//! # ldp-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (see DESIGN.md §3 for the index), plus shared scaling helpers.
//!
//! Every binary accepts `--scale <N>` (default shown per binary): the
//! workload is shrunk by N× relative to the paper's full-size traces so
//! the whole suite regenerates on a laptop; `--scale 1` reproduces the
//! full-size run. Results print as aligned text tables with the paper's
//! reference numbers alongside, and EXPERIMENTS.md records a captured
//! run.

#![warn(missing_docs)]

/// Parse `--scale N` (and `--seconds S`) style flags from argv.
pub fn arg_f64(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// True if `--flag` is present.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Render a boxplot-style row: label + med/quartiles/p5/p95.
pub fn boxplot_row(label: &str, s: &ldp_metrics::Summary, unit: &str) -> String {
    format!(
        "{label:<28} p5 {:>9.3}{unit}  q1 {:>9.3}{unit}  med {:>9.3}{unit}  q3 {:>9.3}{unit}  p95 {:>9.3}{unit}",
        s.p5, s.q1, s.median, s.q3, s.p95
    )
}

/// Render a CDF as a fixed set of probe points for terminal output.
pub fn cdf_rows(label: &str, samples: &[f64], unit: &str) -> Vec<String> {
    let Some(cdf) = ldp_metrics::Cdf::of(samples) else {
        return vec![format!("{label}: no samples")];
    };
    [0.05, 0.25, 0.5, 0.75, 0.95, 0.99]
        .iter()
        .map(|&p| {
            format!(
                "{label:<24} P{:>2.0} = {:>12.6}{unit}",
                p * 100.0,
                cdf.value_at(p)
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn boxplot_row_formats() {
        let s = ldp_metrics::Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let row = super::boxplot_row("test", &s, "ms");
        assert!(row.contains("med"));
        assert!(row.starts_with("test"));
    }

    #[test]
    fn cdf_rows_cover_probes() {
        let rows = super::cdf_rows("x", &[1.0, 2.0, 3.0], "s");
        assert_eq!(rows.len(), 6);
        assert!(super::cdf_rows("x", &[], "s")[0].contains("no samples"));
    }
}
