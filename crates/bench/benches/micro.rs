//! Criterion micro-benchmarks for the hot paths of the replay pipeline,
//! including the DESIGN.md ablations:
//!
//! - wire encode/decode (the querier's per-send work),
//! - input-format decode throughput: binary vs text vs pcap (ablation
//!   "binary internal message stream", paper §2.5),
//! - authoritative lookup (the meta server's per-query work),
//! - sticky routing and timing bookkeeping (the distribution tree).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use dns_wire::{Message, Name, RecordType};
use dns_wire::Question;
use dns_zone::lookup;
use ldp_replay::StickyRouter;
use ldp_trace::{parse_binary, parse_pcap, parse_text, write_binary, write_pcap, write_text};
use workloads::{BRootSpec, SyntheticTraceSpec};

fn sample_trace() -> Vec<ldp_trace::TraceEntry> {
    let mut spec = SyntheticTraceSpec::fixed_interarrival(0.001, 2.0);
    spec.client_pool = 200;
    spec.generate(1)
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    let query = Message::query(77, "www.example.com".parse::<Name>().unwrap(), RecordType::A);
    let bytes = query.encode();
    group.throughput(Throughput::Elements(1));
    group.bench_function("encode_query", |b| b.iter(|| query.encode()));
    group.bench_function("decode_query", |b| b.iter(|| Message::decode(&bytes).unwrap()));

    // A realistic referral response with several records.
    let root = ldp_core::synthetic_root_zone();
    let q = Question::new("w1.example.com".parse().unwrap(), RecordType::A);
    let resp = lookup(&root, &q).into_message(&query);
    let resp_bytes = resp.encode();
    group.bench_function("encode_referral", |b| b.iter(|| resp.encode()));
    group.bench_function("decode_referral", |b| b.iter(|| Message::decode(&resp_bytes).unwrap()));
    group.finish();
}

fn bench_input_formats(c: &mut Criterion) {
    let trace = sample_trace();
    let bin = write_binary(&trace);
    let text = write_text(&trace);
    let (pcap, _) = write_pcap(&trace);

    let mut group = c.benchmark_group("input_formats");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("decode_binary", |b| b.iter(|| parse_binary(&bin).unwrap()));
    group.bench_function("decode_text", |b| b.iter(|| parse_text(&text).unwrap()));
    group.bench_function("decode_pcap", |b| b.iter(|| parse_pcap(&pcap).unwrap()));
    group.bench_function("encode_binary", |b| b.iter(|| write_binary(&trace)));
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let root = ldp_core::synthetic_root_zone();
    let wild = ldp_core::wildcard_zone("example.com");
    let mut group = c.benchmark_group("lookup");
    group.throughput(Throughput::Elements(1));
    group.bench_function("root_referral", |b| {
        let q = Question::new("w1.example.com".parse().unwrap(), RecordType::A);
        b.iter(|| lookup(&root, &q))
    });
    group.bench_function("root_nxdomain", |b| {
        let q = Question::new("junk1.invalid7".parse().unwrap(), RecordType::A);
        b.iter(|| lookup(&root, &q))
    });
    group.bench_function("wildcard_synthesis", |b| {
        let q = Question::new("u12345.example.com".parse().unwrap(), RecordType::A);
        b.iter(|| lookup(&wild, &q))
    });
    group.finish();
}

fn bench_distribution(c: &mut Criterion) {
    let trace = BRootSpec {
        duration_secs: 2.0,
        mean_rate: 5000.0,
        clients: 5000,
        ..BRootSpec::b_root_17a()
    }
    .generate(3);
    let sources: Vec<std::net::IpAddr> = trace.iter().map(|e| e.src.ip()).collect();

    let mut group = c.benchmark_group("distribution");
    group.throughput(Throughput::Elements(sources.len() as u64));
    group.bench_function("sticky_route_heavy_tail", |b| {
        b.iter_batched(
            || StickyRouter::new(8),
            |mut router| {
                for &s in &sources {
                    criterion::black_box(router.route(s));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_end_to_end_answer(c: &mut Criterion) {
    // The full server fast path: bytes in → bytes out, the per-query
    // cost cap for the 87 k q/s single-host result.
    let mut catalog = dns_zone::Catalog::new();
    catalog.insert(ldp_core::wildcard_zone("example.com"));
    let engine = dns_server::ServerEngine::with_catalog(catalog);
    let query = Message::query(9, "u77.example.com".parse::<Name>().unwrap(), RecordType::A);
    let bytes = query.encode();
    let src: std::net::IpAddr = "192.0.2.1".parse().unwrap();

    let mut group = c.benchmark_group("server");
    group.throughput(Throughput::Elements(1));
    group.bench_function("udp_bytes_to_bytes", |b| {
        b.iter(|| engine.handle_udp_bytes(src, &bytes).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_wire,
    bench_input_formats,
    bench_lookup,
    bench_distribution,
    bench_end_to_end_answer
);
criterion_main!(benches);
