//! Empirical cumulative distribution functions.

/// An empirical CDF over a finite sample set.
///
/// Used for the paper's Figure 7 (inter-arrival CDFs), Figure 8
/// (per-second rate difference CDF) and Figure 15c (per-client load CDF).
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (copied and sorted). Returns `None` if empty.
    pub fn of(samples: &[f64]) -> Option<Cdf> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        Some(Cdf { sorted })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty sets).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_at(&self, x: f64) -> f64 {
        // partition_point: count of samples <= x.
        let cnt = self.sorted.partition_point(|&v| v <= x);
        cnt as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: the smallest sample value with CDF ≥ `p`.
    pub fn value_at(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            return self.sorted[0];
        }
        let idx = ((p * self.sorted.len() as f64).ceil() as usize).min(self.sorted.len()) - 1;
        self.sorted[idx]
    }

    /// Evaluate at `n` evenly spaced probability points, yielding
    /// `(value, probability)` pairs — what a gnuplot-ready CDF dump needs.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        let n = n.max(2);
        (0..n)
            .map(|i| {
                let p = (i + 1) as f64 / n as f64;
                (self.value_at(p), p)
            })
            .collect()
    }

    /// All steps of the CDF: `(sample, cumulative fraction)` per sample.
    pub fn steps(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &v)| (v, (i + 1) as f64 / n))
    }

    /// Maximum absolute difference between two CDFs evaluated on the
    /// union of their sample points (the Kolmogorov–Smirnov statistic).
    /// Used by validation tests to compare replayed vs original
    /// distributions.
    pub fn ks_distance(&self, other: &Cdf) -> f64 {
        let mut max = 0.0f64;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            let d = (self.fraction_at(x) - other.fraction_at(x)).abs();
            if d > max {
                max = d;
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_rejected() {
        assert!(Cdf::of(&[]).is_none());
    }

    #[test]
    fn fraction_at_steps() {
        let c = Cdf::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(c.fraction_at(0.5), 0.0);
        assert_eq!(c.fraction_at(1.0), 0.25);
        assert_eq!(c.fraction_at(2.5), 0.5);
        assert_eq!(c.fraction_at(4.0), 1.0);
        assert_eq!(c.fraction_at(100.0), 1.0);
    }

    #[test]
    fn value_at_inverse() {
        let c = Cdf::of(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(c.value_at(0.25), 10.0);
        assert_eq!(c.value_at(0.5), 20.0);
        assert_eq!(c.value_at(1.0), 40.0);
        assert_eq!(c.value_at(0.0), 10.0);
    }

    #[test]
    fn ties_handled() {
        let c = Cdf::of(&[1.0, 1.0, 1.0, 2.0]).unwrap();
        assert_eq!(c.fraction_at(1.0), 0.75);
        assert_eq!(c.fraction_at(1.5), 0.75);
    }

    #[test]
    fn steps_monotone() {
        let c = Cdf::of(&[3.0, 1.0, 2.0]).unwrap();
        let steps: Vec<_> = c.steps().collect();
        assert_eq!(steps, vec![(1.0, 1.0 / 3.0), (2.0, 2.0 / 3.0), (3.0, 1.0)]);
    }

    #[test]
    fn ks_identical_zero() {
        let a = Cdf::of(&[1.0, 2.0, 3.0]).unwrap();
        let b = Cdf::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a.ks_distance(&b), 0.0);
    }

    #[test]
    fn ks_disjoint_one() {
        let a = Cdf::of(&[1.0, 2.0]).unwrap();
        let b = Cdf::of(&[10.0, 20.0]).unwrap();
        assert_eq!(a.ks_distance(&b), 1.0);
    }

    #[test]
    fn ks_symmetric() {
        let a = Cdf::of(&[1.0, 5.0, 9.0]).unwrap();
        let b = Cdf::of(&[2.0, 5.0, 8.0, 11.0]).unwrap();
        assert!((a.ks_distance(&b) - b.ks_distance(&a)).abs() < 1e-12);
    }

    #[test]
    fn points_are_monotone() {
        let c = Cdf::of(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        let pts = c.points(10);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }
}
