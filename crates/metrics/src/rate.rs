//! Per-window event-rate series from event timestamps.

/// Counts events into fixed-width windows (default 1 s), producing the
/// per-second query-rate series the paper compares in Figure 8.
#[derive(Debug, Clone)]
pub struct RateSeries {
    window: f64,
    origin: Option<f64>,
    counts: Vec<u64>,
}

impl RateSeries {
    /// New series with `window`-second buckets.
    pub fn new(window: f64) -> Self {
        assert!(window > 0.0, "window must be positive");
        RateSeries {
            window,
            origin: None,
            counts: Vec::new(),
        }
    }

    /// Per-second buckets.
    pub fn per_second() -> Self {
        RateSeries::new(1.0)
    }

    /// Record an event at absolute time `t` (seconds). The first event
    /// fixes the origin; events before the origin are clamped into the
    /// first bucket.
    pub fn record(&mut self, t: f64) {
        let origin = *self.origin.get_or_insert(t);
        let idx = (((t - origin) / self.window).floor().max(0.0)) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// The raw per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rates (events per second) per bucket.
    pub fn rates(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| c as f64 / self.window)
            .collect()
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of buckets spanned.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Per-bucket relative difference `(self - other) / other`, for the
    /// buckets both series cover and where `other` is non-zero. This is
    /// the quantity on Figure 8's x-axis.
    pub fn relative_difference(&self, other: &RateSeries) -> Vec<f64> {
        self.counts
            .iter()
            .zip(other.counts.iter())
            .filter(|(_, &o)| o > 0)
            .map(|(&s, &o)| (s as f64 - o as f64) / o as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_bucketed() {
        let mut r = RateSeries::per_second();
        r.record(100.0);
        r.record(100.5);
        r.record(101.2);
        r.record(103.9);
        assert_eq!(r.counts(), &[2, 1, 0, 1]);
        assert_eq!(r.total(), 4);
        assert_eq!(r.buckets(), 4);
    }

    #[test]
    fn origin_is_first_event() {
        let mut r = RateSeries::per_second();
        r.record(5.5);
        r.record(5.9);
        assert_eq!(r.counts(), &[2]);
    }

    #[test]
    fn event_before_origin_clamped() {
        let mut r = RateSeries::per_second();
        r.record(10.0);
        r.record(9.0); // out of order, clamps to bucket 0
        assert_eq!(r.counts(), &[2]);
    }

    #[test]
    fn sub_second_windows() {
        let mut r = RateSeries::new(0.1);
        r.record(0.0);
        r.record(0.05);
        r.record(0.15);
        assert_eq!(r.counts(), &[2, 1]);
        assert_eq!(r.rates(), vec![20.0, 10.0]);
    }

    #[test]
    fn relative_difference() {
        let mut a = RateSeries::per_second();
        let mut b = RateSeries::per_second();
        for t in [0.0, 0.1, 0.2, 1.0, 1.1] {
            a.record(t);
        }
        for t in [0.0, 0.1, 0.2, 0.3, 1.0] {
            b.record(t);
        }
        // a: [3,2], b: [4,1]  → diffs: (3-4)/4 = -0.25, (2-1)/1 = 1.0
        let d = a.relative_difference(&b);
        assert_eq!(d, vec![-0.25, 1.0]);
    }

    #[test]
    fn relative_difference_skips_zero_buckets() {
        let mut a = RateSeries::per_second();
        let mut b = RateSeries::per_second();
        a.record(0.0);
        a.record(2.5);
        b.record(0.0);
        b.record(2.5);
        // b bucket 1 is zero → skipped.
        assert_eq!(a.relative_difference(&b).len(), 2);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        RateSeries::new(0.0);
    }
}
