//! Exact quantile summaries over collected samples.

/// A five-number-plus summary of a sample set: min, p5, q1, median, q3,
/// p95, max and mean — exactly the statistics the paper's box-plot
/// figures report ("medians, quartiles, 5th and 95th percentiles").
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// 5th percentile.
    pub p5: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl Summary {
    /// Compute a summary. Returns `None` for an empty sample set.
    ///
    /// Quantiles use linear interpolation between closest ranks (type 7,
    /// the numpy/R default).
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = samples.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        Some(Summary {
            count: v.len(),
            min: v[0],
            p5: quantile_sorted(&v, 0.05),
            q1: quantile_sorted(&v, 0.25),
            median: quantile_sorted(&v, 0.50),
            q3: quantile_sorted(&v, 0.75),
            p95: quantile_sorted(&v, 0.95),
            max: v[v.len() - 1],
            mean,
            stddev: var.sqrt(),
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// One-line rendering used by the experiment binaries.
    pub fn render(&self, unit: &str) -> String {
        format!(
            "n={} min={:.3}{u} p5={:.3}{u} q1={:.3}{u} med={:.3}{u} q3={:.3}{u} p95={:.3}{u} max={:.3}{u} mean={:.3}{u}",
            self.count,
            self.min,
            self.p5,
            self.q1,
            self.median,
            self.q3,
            self.p95,
            self.max,
            self.mean,
            u = unit
        )
    }
}

/// Quantile of an ascending-sorted slice with linear interpolation.
///
/// `q` is clamped to `[0, 1]`. Panics on an empty slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_gives_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[42.0]).unwrap();
        assert_eq!(s.min, 42.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.max, 42.0);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn known_quartiles() {
        // 1..=100: median 50.5, q1 25.75, q3 75.25 (type-7 interpolation).
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&v).unwrap();
        assert!((s.median - 50.5).abs() < 1e-9);
        assert!((s.q1 - 25.75).abs() < 1e-9);
        assert!((s.q3 - 75.25).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn unsorted_input_ok() {
        let s = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.median, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(quantile_sorted(&v, 0.5), 5.0);
        assert_eq!(quantile_sorted(&v, 0.0), 0.0);
        assert_eq!(quantile_sorted(&v, 1.0), 10.0);
        assert_eq!(quantile_sorted(&v, 0.25), 2.5);
    }

    #[test]
    fn quantile_clamps() {
        let v = [1.0, 2.0];
        assert_eq!(quantile_sorted(&v, -1.0), 1.0);
        assert_eq!(quantile_sorted(&v, 2.0), 2.0);
    }

    #[test]
    fn stddev_known() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.stddev - 2.0).abs() < 1e-9);
    }

    #[test]
    fn iqr() {
        let v: Vec<f64> = (1..=5).map(|i| i as f64).collect();
        let s = Summary::of(&v).unwrap();
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn render_contains_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        let r = s.render("ms");
        assert!(r.contains("med=2.000ms"));
        assert!(r.contains("n=3"));
    }
}
