//! Logarithmically-binned histogram for latency-style heavy-tailed data.

/// A base-10 log-binned histogram with `bins_per_decade` subdivisions,
/// covering values across many orders of magnitude (query inter-arrivals
/// span 1 µs to seconds in the paper's traces).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    bins_per_decade: usize,
    min_exp: i32,
    /// counts[i] covers [10^(min_exp + i/bpd), 10^(min_exp + (i+1)/bpd))
    counts: Vec<u64>,
    underflow: u64,
    total: u64,
}

impl LogHistogram {
    /// Histogram from `10^min_exp` to `10^max_exp` with the given
    /// per-decade resolution.
    pub fn new(min_exp: i32, max_exp: i32, bins_per_decade: usize) -> Self {
        assert!(max_exp > min_exp);
        assert!(bins_per_decade > 0);
        let n = ((max_exp - min_exp) as usize) * bins_per_decade;
        LogHistogram {
            bins_per_decade,
            min_exp,
            counts: vec![0; n],
            underflow: 0,
            total: 0,
        }
    }

    /// Record a value. Non-positive values and values below range count
    /// as underflow; values above range land in the last bin.
    pub fn record(&mut self, v: f64) {
        self.total += 1;
        if v <= 0.0 {
            self.underflow += 1;
            return;
        }
        let pos = (v.log10() - self.min_exp as f64) * self.bins_per_decade as f64;
        if pos < 0.0 {
            self.underflow += 1;
        } else {
            let idx = (pos as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Total recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Values below range (or ≤ 0).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Iterate `(bin_lower_bound, count)` for non-empty bins.
    pub fn nonzero_bins(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts.iter().enumerate().filter_map(move |(i, &c)| {
            if c == 0 {
                None
            } else {
                let exp = self.min_exp as f64 + i as f64 / self.bins_per_decade as f64;
                Some((10f64.powf(exp), c))
            }
        })
    }

    /// Approximate quantile from bin boundaries (returns the lower bound
    /// of the bin containing the quantile).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut acc = self.underflow;
        if acc >= target && self.underflow > 0 {
            return Some(0.0);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                let exp = self.min_exp as f64 + i as f64 / self.bins_per_decade as f64;
                return Some(10f64.powf(exp));
            }
        }
        Some(10f64.powi(self.min_exp + (self.counts.len() / self.bins_per_decade) as i32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_by_magnitude() {
        let mut h = LogHistogram::new(-6, 1, 1);
        h.record(1e-5);
        h.record(2e-5);
        h.record(1e-3);
        h.record(0.5);
        let bins: Vec<_> = h.nonzero_bins().collect();
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[0].1, 2); // two values in 1e-5 decade
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn underflow_counted() {
        let mut h = LogHistogram::new(-3, 0, 1);
        h.record(0.0);
        h.record(-1.0);
        h.record(1e-9);
        assert_eq!(h.underflow(), 3);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn overflow_clamps_to_last_bin() {
        let mut h = LogHistogram::new(-1, 0, 1);
        h.record(1e6);
        assert_eq!(h.nonzero_bins().count(), 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn quantile_roughly_right() {
        let mut h = LogHistogram::new(-6, 2, 10);
        for _ in 0..50 {
            h.record(0.001);
        }
        for _ in 0..50 {
            h.record(0.1);
        }
        let med = h.quantile(0.5).unwrap();
        assert!((0.0005..=0.002).contains(&med), "median {med}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((0.05..=0.2).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn quantile_empty_none() {
        let h = LogHistogram::new(-3, 0, 1);
        assert!(h.quantile(0.5).is_none());
    }

    #[test]
    fn finer_resolution_separates() {
        let mut h = LogHistogram::new(0, 1, 10);
        h.record(1.0);
        h.record(2.0);
        h.record(9.0);
        assert_eq!(h.nonzero_bins().count(), 3);
    }
}
