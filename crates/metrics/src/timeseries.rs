//! Sampled time series of resource gauges (memory, connection counts,
//! CPU) — the "value vs time" traces of the paper's Figures 13 and 14.

/// A time series of `(time_seconds, value)` samples.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    samples: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Append a sample; time must be non-decreasing (panics otherwise —
    /// gauges are sampled by a single monotonic clock).
    pub fn push(&mut self, t: f64, v: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(t >= last, "time series must be monotonic: {t} < {last}");
        }
        self.samples.push((t, v));
    }

    /// All samples.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Last value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.samples.last().map(|&(_, v)| v)
    }

    /// Mean of values with `t >= from` — the "steady state" statistic
    /// (the paper waits ~5 minutes for steady state, then reports).
    pub fn steady_state_mean(&self, from: f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|&&(t, _)| t >= from)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Max value over the whole series.
    pub fn max_value(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Time at which the series first reaches `frac` (0..1) of its final
    /// value and stays within `tolerance` of it — how long until steady
    /// state.
    pub fn settle_time(&self, tolerance: f64) -> Option<f64> {
        let last = self.last_value()?;
        let band = (last.abs() * tolerance).max(f64::EPSILON);
        // Find the earliest sample after which all values stay in band.
        let mut settle = None;
        for &(t, v) in &self.samples {
            if (v - last).abs() <= band {
                settle.get_or_insert(t);
            } else {
                settle = None;
            }
        }
        settle
    }

    /// Downsample to about `n` evenly spaced samples (for plotting).
    pub fn downsample(&self, n: usize) -> Vec<(f64, f64)> {
        if self.samples.len() <= n || n == 0 {
            return self.samples.clone();
        }
        let step = self.samples.len() as f64 / n as f64;
        (0..n)
            .map(|i| self.samples[(i as f64 * step) as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> TimeSeries {
        // Rises 0..100 over 10 s then flat at 100.
        let mut ts = TimeSeries::new();
        for i in 0..=20 {
            let t = i as f64;
            ts.push(t, (t * 10.0).min(100.0));
        }
        ts
    }

    #[test]
    fn push_and_read() {
        let ts = ramp();
        assert_eq!(ts.len(), 21);
        assert_eq!(ts.last_value(), Some(100.0));
        assert_eq!(ts.max_value(), Some(100.0));
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn non_monotonic_rejected() {
        let mut ts = TimeSeries::new();
        ts.push(1.0, 0.0);
        ts.push(0.5, 0.0);
    }

    #[test]
    fn steady_state_mean_after_ramp() {
        let ts = ramp();
        assert_eq!(ts.steady_state_mean(10.0), Some(100.0));
        assert!(ts.steady_state_mean(0.0).unwrap() < 100.0);
        assert_eq!(ts.steady_state_mean(100.0), None);
    }

    #[test]
    fn settle_time_found() {
        let ts = ramp();
        let t = ts.settle_time(0.01).unwrap();
        assert!((t - 10.0).abs() < 1e-9, "settled at {t}");
    }

    #[test]
    fn settle_time_flat_series_is_start() {
        let mut ts = TimeSeries::new();
        for i in 0..5 {
            ts.push(i as f64, 7.0);
        }
        assert_eq!(ts.settle_time(0.05), Some(0.0));
    }

    #[test]
    fn downsample_keeps_bounds() {
        let ts = ramp();
        let d = ts.downsample(5);
        assert_eq!(d.len(), 5);
        assert_eq!(d[0], ts.samples()[0]);
    }

    #[test]
    fn downsample_noop_when_small() {
        let ts = ramp();
        assert_eq!(ts.downsample(100).len(), ts.len());
    }
}
