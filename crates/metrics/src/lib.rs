//! # ldp-metrics
//!
//! Measurement utilities shared by LDplayer's evaluation harness: exact
//! quantile summaries (the medians/quartiles/5th/95th percentiles in the
//! paper's box plots), empirical CDFs (Figures 7, 8, 15c), per-second
//! rate series (Figure 8), histograms and time-series resource samplers
//! (Figures 13/14).

#![warn(missing_docs)]

pub mod cdf;
pub mod histogram;
pub mod rate;
pub mod summary;
pub mod timeseries;

pub use cdf::Cdf;
pub use histogram::LogHistogram;
pub use rate::RateSeries;
pub use summary::Summary;
pub use timeseries::TimeSeries;
