//! Satellite 2 of ISSUE 8: the telemetry stream is deterministic under
//! sharding. For the same seed and workload, the canonically ordered
//! drain ([`ldp_telemetry::canonical_order`]) is **identical** across
//! shard counts 1/2/8 and to the single-shard run — worker threads
//! record into their own rings, rings are parked at scope exit, and
//! the content sort erases the nondeterministic thread interleaving.
//! And recording itself never perturbs results: the merged transcript
//! is byte-identical with telemetry on and off.
//!
//! One test function on purpose: the telemetry enable flag and flushed
//! store are process-wide, so the phases must run serially.

use std::net::{IpAddr, SocketAddr};
use std::sync::{Arc, Mutex};

use ldp_shard::{ShardPlan, ShardedSimulator};
use ldp_telemetry as tel;
use netsim::{
    Ctx, FnInjector, Host, PacketBytes, PacketFate, PathConfig, QueueKind, SimConfig, SimDuration,
    SimTime, Simulator, TcpEvent, Topology,
};

type Log = Arc<Mutex<String>>;

struct Relay {
    me: SocketAddr,
    next: SocketAddr,
    log: Log,
}

impl Host for Relay {
    fn on_udp(&mut self, ctx: &mut Ctx<'_>, from: SocketAddr, _to: SocketAddr, data: PacketBytes) {
        if let Ok(mut log) = self.log.lock() {
            log.push_str(&format!("{} rx {} {}B\n", ctx.now().as_nanos(), from, data.len()));
        }
        if data.len() > 1 {
            ctx.send_udp(self.me, self.next, vec![0u8; data.len() - 1]);
        }
    }
    fn on_tcp_event(&mut self, _: &mut Ctx<'_>, _: TcpEvent) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        ctx.send_udp(self.me, self.next, vec![0u8; 4 + token as usize]);
    }
}

const N: usize = 6;

fn addr(i: usize) -> IpAddr {
    format!("10.9.0.{}", i + 1).parse().expect("valid test ip")
}

fn sock(i: usize) -> SocketAddr {
    SocketAddr::new(addr(i), 53)
}

fn topology() -> Topology {
    Topology::uniform(PathConfig {
        rtt: SimDuration::from_millis(8),
        bandwidth_bps: Some(50_000_000),
        loss: 0.1,
    })
}

fn config() -> SimConfig {
    SimConfig {
        seed: 0x5EED5,
        queue: QueueKind::Heap,
        ..SimConfig::default()
    }
}

fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 27)
}

enum AnySim {
    Single(Simulator),
    Sharded(ShardedSimulator),
}

/// Drive the workload; return the host transcript. Telemetry events
/// accumulate in the process-wide rings for the caller to drain.
fn run(mut sim: AnySim) -> String {
    let logs: Vec<Log> = (0..N).map(|_| Arc::new(Mutex::new(String::new()))).collect();
    for (i, log) in logs.iter().enumerate() {
        let relay = Box::new(Relay {
            me: sock(i),
            next: sock((i + 1) % N),
            log: log.clone(),
        });
        match &mut sim {
            AnySim::Single(s) => s.add_host(&[addr(i)], relay),
            AnySim::Sharded(s) => s.add_host(&[addr(i)], relay),
        };
    }
    let inject = |_shard: u32| -> Box<dyn netsim::FaultInjector> {
        Box::new(FnInjector(
            |now: SimTime, src: SocketAddr, _d: SocketAddr, _k: netsim::WireKind, n: usize| {
                let mut fate = PacketFate::DELIVER;
                if mix(now.as_nanos() ^ u64::from(src.port()) ^ n as u64) % 9 == 0 {
                    fate.drop = true;
                }
                fate
            },
        ))
    };
    match &mut sim {
        AnySim::Single(s) => {
            s.set_fault_injector(inject(0));
            for i in 0..N {
                s.schedule_timer(i, SimTime::from_millis(2), 40);
            }
            s.schedule_timer(0, SimTime::from_millis(3), 90);
            s.run_until(SimTime::from_millis(600));
        }
        AnySim::Sharded(s) => {
            s.set_fault_injectors(inject);
            for i in 0..N {
                s.schedule_timer(i, SimTime::from_millis(2), 40);
            }
            s.schedule_timer(0, SimTime::from_millis(3), 90);
            s.run_until(SimTime::from_millis(600));
        }
    }
    let mut out = String::new();
    for log in &logs {
        if let Ok(log) = log.lock() {
            out.push_str(&log);
        }
    }
    out
}

fn drain_canonical() -> Vec<tel::RawEvent> {
    let mut events = tel::drain_all();
    tel::canonical_order(&mut events);
    events
}

#[test]
fn canonical_drain_identical_across_shard_counts_and_on_off() {
    // Phase 0: telemetry off — the reference transcript.
    let _ = tel::drain_all(); // clear leftovers from other tests
    tel::set_enabled(false);
    let quiet = run(AnySim::Single(Simulator::new(topology(), config())));
    assert!(quiet.contains("rx"), "workload delivered traffic");
    assert!(tel::drain_all().is_empty(), "disabled recording stays silent");

    // Phase 1: single-shard with telemetry on.
    tel::set_enabled(true);
    let single = run(AnySim::Single(Simulator::new(topology(), config())));
    tel::set_enabled(false);
    let reference = drain_canonical();
    assert_eq!(single, quiet, "recording must not perturb the transcript");
    assert!(!reference.is_empty(), "simulator emitted telemetry");

    // Phase 2: sharded runs, every shard count.
    for shards in [1u32, 2, 8] {
        tel::set_enabled(true);
        let got = run(AnySim::Sharded(ShardedSimulator::new(
            topology(),
            config(),
            ShardPlan::round_robin(shards),
        )));
        tel::set_enabled(false);
        let events = drain_canonical();
        assert_eq!(got, quiet, "sharded({shards}) transcript drifted under telemetry");
        assert_eq!(
            events.len(),
            reference.len(),
            "sharded({shards}) drained a different event count"
        );
        assert_eq!(
            events, reference,
            "sharded({shards}) canonical telemetry differs from single-shard"
        );
    }
}
