//! The sharded/single equivalence matrix (ISSUE 8 acceptance): for the
//! same seed and workload, a [`ShardedSimulator`] over 1, 2 or 8
//! shards produces a **byte-identical** merged transcript — per-host
//! observation logs, per-host stats and the global event count — to a
//! plain single-shard [`Simulator`], on both queue backends.
//!
//! The workload is a UDP relay ring with staggered and colliding
//! timers (exercising time-tie lane ordering), base path loss
//! (per-lane RNG streams), a stateless hash-driven fault injector
//! (drops, delay spikes, duplicates), driver injections between run
//! phases, and a crash/restart — everything the conservative exchange
//! and the lane-key discipline must preserve.

use std::net::{IpAddr, SocketAddr};
use std::sync::{Arc, Mutex};

use ldp_shard::{ShardPlan, ShardedSimulator};
use netsim::{
    Ctx, FaultInjector, FnInjector, Host, PacketBytes, PacketFate, PathConfig, QueueKind,
    SimConfig, SimDuration, SimTime, Simulator, TcpEvent, Topology, WireKind,
};

type Log = Arc<Mutex<String>>;

/// A host that relays UDP around a ring: each receipt is logged and
/// forwarded to the next host with one less payload byte (a TTL), so a
/// single seed timer produces a chain of cross-host hops.
struct Relay {
    me: SocketAddr,
    next: SocketAddr,
    log: Log,
}

impl Host for Relay {
    fn on_udp(&mut self, ctx: &mut Ctx<'_>, from: SocketAddr, to: SocketAddr, data: PacketBytes) {
        if let Ok(mut log) = self.log.lock() {
            log.push_str(&format!(
                "{} rx {}->{} {}B\n",
                ctx.now().as_nanos(),
                from,
                to,
                data.len()
            ));
        }
        if data.len() > 1 {
            ctx.send_udp(self.me, self.next, vec![0u8; data.len() - 1]);
        }
    }

    fn on_tcp_event(&mut self, _ctx: &mut Ctx<'_>, _event: TcpEvent) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if let Ok(mut log) = self.log.lock() {
            log.push_str(&format!("{} timer {}\n", ctx.now().as_nanos(), token));
        }
        ctx.send_udp(self.me, self.next, vec![0u8; 4 + token as usize]);
    }
}

/// Either simulator behind one driver API, so single and sharded runs
/// execute the exact same call sequence.
enum AnySim {
    Single(Simulator),
    Sharded(ShardedSimulator),
}

impl AnySim {
    fn add_host(&mut self, addrs: &[IpAddr], host: Box<dyn Host>) -> usize {
        match self {
            AnySim::Single(s) => s.add_host(addrs, host),
            AnySim::Sharded(s) => s.add_host(addrs, host),
        }
    }

    fn set_injector(&mut self, make: impl FnMut(u32) -> Box<dyn FaultInjector>) {
        let mut make = make;
        match self {
            AnySim::Single(s) => s.set_fault_injector(make(0)),
            AnySim::Sharded(s) => s.set_fault_injectors(make),
        }
    }

    fn schedule_timer(&mut self, host: usize, at: SimTime, token: u64) {
        match self {
            AnySim::Single(s) => s.schedule_timer(host, at, token),
            AnySim::Sharded(s) => s.schedule_timer(host, at, token),
        }
    }

    fn inject_udp(&mut self, from: SocketAddr, to: SocketAddr, data: Vec<u8>) {
        match self {
            AnySim::Single(s) => s.inject_udp(from, to, data),
            AnySim::Sharded(s) => s.inject_udp(from, to, data),
        }
    }

    fn crash_now(&mut self, addr: IpAddr) {
        match self {
            AnySim::Single(s) => s.crash_now(addr),
            AnySim::Sharded(s) => s.crash_now(addr),
        }
    }

    fn restart_now(&mut self, addr: IpAddr) {
        match self {
            AnySim::Single(s) => s.restart_now(addr),
            AnySim::Sharded(s) => s.restart_now(addr),
        }
    }

    fn run_until(&mut self, deadline: SimTime) -> u64 {
        match self {
            AnySim::Single(s) => s.run_until(deadline),
            AnySim::Sharded(s) => s.run_until(deadline),
        }
    }

    fn stats_line(&self, host: usize) -> String {
        match self {
            AnySim::Single(s) => format!("{:?}", s.stats(host)),
            AnySim::Sharded(s) => format!("{:?}", s.stats(host)),
        }
    }
}

const N: usize = 8;

fn addr(i: usize) -> IpAddr {
    format!("10.0.0.{}", i + 1).parse().expect("valid test ip")
}

fn sock(i: usize) -> SocketAddr {
    SocketAddr::new(addr(i), 5300)
}

fn topology(loss: f64) -> Topology {
    let mut topo = Topology::uniform(PathConfig {
        rtt: SimDuration::from_millis(10),
        bandwidth_bps: Some(10_000_000),
        loss,
    });
    // A couple of faster pairs so windows are bounded by a genuinely
    // minimal link, not the uniform default.
    topo.set_symmetric(
        addr(0),
        addr(1),
        PathConfig {
            rtt: SimDuration::from_millis(4),
            bandwidth_bps: Some(10_000_000),
            loss,
        },
    );
    topo.set_symmetric(
        addr(3),
        addr(4),
        PathConfig {
            rtt: SimDuration::from_millis(6),
            bandwidth_bps: None,
            loss,
        },
    );
    topo
}

fn config(queue: QueueKind) -> SimConfig {
    SimConfig {
        seed: 0xBADC0FFEE,
        queue,
        ..SimConfig::default()
    }
}

/// SplitMix-style stateless mixer for injector draws: every replica
/// computes the same fate from the same packet, no shared state.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash_injector() -> Box<dyn FaultInjector> {
    Box::new(FnInjector(
        |now: SimTime, src: SocketAddr, dst: SocketAddr, _kind: WireKind, bytes: usize| {
            let h = mix(now.as_nanos() ^ mix(u64::from(src.port())) ^ bytes as u64)
                ^ mix(u64::from(dst.port()));
            let mut fate = PacketFate::DELIVER;
            match h % 11 {
                0 => fate.drop = true,
                1 => fate.extra_delay = SimDuration::from_micros(h % 900),
                2 => fate.duplicate = Some(SimDuration::from_micros(100 + h % 500)),
                _ => {}
            }
            fate
        },
    ))
}

/// Run the full scenario on one simulator and return the merged
/// transcript: per-host logs in global host order, then per-host
/// stats, then the per-phase event counts.
fn scenario(mut sim: AnySim, faults: bool) -> String {
    let logs: Vec<Log> = (0..N).map(|_| Arc::new(Mutex::new(String::new()))).collect();
    for i in 0..N {
        let host = sim.add_host(
            &[addr(i)],
            Box::new(Relay {
                me: sock(i),
                next: sock((i + 1) % N),
                log: logs[i].clone(),
            }),
        );
        assert_eq!(host, i);
    }
    if faults {
        sim.set_injector(|_shard| hash_injector());
    }

    // Staggered seeds plus deliberate collisions: every host fires at
    // 5 ms (same instant, different lanes) and a few fire again at
    // 7 ms, so time ties are broken purely by lane.
    sim.schedule_timer(0, SimTime::ZERO, 24);
    for i in 0..N {
        sim.schedule_timer(i, SimTime::from_millis(5), 12);
    }
    for i in 0..4 {
        sim.schedule_timer(i, SimTime::from_millis(7), 6);
    }
    sim.inject_udp(sock(5), sock(2), vec![7u8; 16]);
    // From an unregistered source straight into the ring, and into the
    // void (the unroutable delivery must still count, once, somewhere).
    sim.inject_udp("192.0.2.1:9999".parse().expect("ip"), sock(6), vec![1u8; 9]);
    sim.inject_udp(sock(1), "198.51.100.7:53".parse().expect("ip"), vec![2u8; 5]);

    let c1 = sim.run_until(SimTime::from_millis(40));

    // Mid-run driver actions between bounded phases.
    sim.crash_now(addr(3));
    sim.inject_udp(sock(0), sock(3), vec![3u8; 12]); // into the crashed host
    let c2 = sim.run_until(SimTime::from_millis(80));
    sim.restart_now(addr(3));
    for i in 0..N {
        sim.schedule_timer(i, SimTime::from_millis(85), 10);
    }
    let c3 = sim.run_until(SimTime::from_millis(400));

    let mut out = String::new();
    for (i, log) in logs.iter().enumerate() {
        out.push_str(&format!("== host {i}\n"));
        if let Ok(log) = log.lock() {
            out.push_str(&log);
        }
    }
    for i in 0..N {
        out.push_str(&format!("stats {i}: {}\n", sim.stats_line(i)));
    }
    out.push_str(&format!("counts: {c1} {c2} {c3}\n"));
    out
}

fn single(queue: QueueKind, faults: bool) -> String {
    let sim = Simulator::new(topology(if faults { 0.2 } else { 0.0 }), config(queue));
    scenario(AnySim::Single(sim), faults)
}

fn sharded(queue: QueueKind, shards: u32, faults: bool) -> String {
    let sim = ShardedSimulator::new(
        topology(if faults { 0.2 } else { 0.0 }),
        config(queue),
        ShardPlan::round_robin(shards),
    );
    scenario(AnySim::Sharded(sim), faults)
}

#[test]
fn lossless_matrix_heap_btree_x_1_2_8() {
    let reference = single(QueueKind::Heap, false);
    assert!(reference.contains("rx"), "workload produced traffic:\n{reference}");
    assert_eq!(single(QueueKind::BTree, false), reference, "single BTree != single Heap");
    for queue in [QueueKind::Heap, QueueKind::BTree] {
        for shards in [1, 2, 8] {
            let got = sharded(queue, shards, false);
            assert_eq!(
                got, reference,
                "sharded({queue:?}, {shards}) transcript differs from single-shard"
            );
        }
    }
}

#[test]
fn faulty_lossy_matrix_heap_btree_x_1_2_8() {
    // Base loss (per-lane RNG streams) + hash-injector drops, delay
    // spikes and duplicates — all draws must be placement-invariant.
    let reference = single(QueueKind::Heap, true);
    assert!(reference.contains("rx"), "lossy workload still delivers:\n{reference}");
    assert_ne!(
        reference,
        single(QueueKind::Heap, false),
        "faults visibly change the transcript"
    );
    assert_eq!(single(QueueKind::BTree, true), reference);
    for queue in [QueueKind::Heap, QueueKind::BTree] {
        for shards in [1, 2, 8] {
            let got = sharded(queue, shards, true);
            assert_eq!(
                got, reference,
                "sharded({queue:?}, {shards}) transcript differs under faults"
            );
        }
    }
}

#[test]
fn sharded_runs_are_repeatable() {
    let a = sharded(QueueKind::Heap, 8, true);
    let b = sharded(QueueKind::Heap, 8, true);
    assert_eq!(a, b, "same seed, same shard count => identical bytes");
}

/// An echo pair doing one TCP exchange, pinned to one shard, while the
/// UDP ring churns across shards around them.
struct TcpEcho {
    log: Log,
}

impl Host for TcpEcho {
    fn on_udp(&mut self, _: &mut Ctx<'_>, _: SocketAddr, _: SocketAddr, _: PacketBytes) {}
    fn on_tcp_event(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
        match event {
            TcpEvent::Incoming { .. } => {}
            TcpEvent::Data { conn, data } => {
                if let Ok(mut log) = self.log.lock() {
                    log.push_str(&format!("{} echo {}B\n", ctx.now().as_nanos(), data.len()));
                }
                ctx.tcp_send(conn, data);
            }
            TcpEvent::Closed { .. } | TcpEvent::Connected { .. } => {}
        }
    }
    fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) {}
}

struct TcpDialer {
    me: SocketAddr,
    server: SocketAddr,
    log: Log,
}

impl Host for TcpDialer {
    fn on_udp(&mut self, _: &mut Ctx<'_>, _: SocketAddr, _: SocketAddr, _: PacketBytes) {}
    fn on_tcp_event(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
        match event {
            TcpEvent::Connected { conn } => ctx.tcp_send(conn, vec![9u8; 33]),
            TcpEvent::Data { conn, data } => {
                if let Ok(mut log) = self.log.lock() {
                    log.push_str(&format!("{} reply {}B\n", ctx.now().as_nanos(), data.len()));
                }
                ctx.tcp_close(conn);
            }
            TcpEvent::Closed { .. } | TcpEvent::Incoming { .. } => {}
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: u64) {
        ctx.tcp_connect(self.me, self.server, false);
    }
}

fn tcp_scenario(mut sim: AnySim) -> String {
    let log: Log = Arc::new(Mutex::new(String::new()));
    let ring: Vec<Log> = (0..2).map(|_| Arc::new(Mutex::new(String::new()))).collect();
    // Hosts 0 and 1: the TCP pair (round-robin lands both on distinct
    // shards at >1 shards, hence the pins in `tcp_sharded`).
    sim.add_host(&[addr(0)], Box::new(TcpEcho { log: log.clone() }));
    sim.add_host(
        &[addr(1)],
        Box::new(TcpDialer {
            me: sock(1),
            server: SocketAddr::new(addr(0), 53),
            log: log.clone(),
        }),
    );
    // Hosts 2 and 3: a two-node UDP ring crossing shards.
    for i in 2..4 {
        sim.add_host(
            &[addr(i)],
            Box::new(Relay {
                me: sock(i),
                next: sock(if i == 3 { 2 } else { 3 }),
                log: ring[i - 2].clone(),
            }),
        );
    }
    sim.schedule_timer(1, SimTime::from_millis(1), 0);
    sim.schedule_timer(2, SimTime::from_millis(1), 9);
    let count = sim.run_until(SimTime::from_millis(300));
    let mut out = String::new();
    if let Ok(log) = log.lock() {
        out.push_str(&log);
    }
    for r in &ring {
        if let Ok(r) = r.lock() {
            out.push_str(&r);
        }
    }
    for i in 0..4 {
        out.push_str(&format!("stats {i}: {}\n", sim.stats_line(i)));
    }
    out.push_str(&format!("count: {count}\n"));
    out
}

#[test]
fn pinned_tcp_pair_matches_single_shard() {
    let reference = tcp_scenario(AnySim::Single(Simulator::new(
        topology(0.0),
        config(QueueKind::Heap),
    )));
    assert!(reference.contains("reply"), "TCP exchange happened:\n{reference}");
    for shards in [2u32, 8] {
        let mut plan = ShardPlan::round_robin(shards);
        plan.pin(1, 0); // co-locate the dialer with the echo server
        let sim = ShardedSimulator::new(topology(0.0), config(QueueKind::Heap), plan);
        assert_eq!(
            tcp_scenario(AnySim::Sharded(sim)),
            reference,
            "pinned TCP + cross-shard UDP differs at {shards} shards"
        );
    }
}

#[test]
#[should_panic(expected = "cross-shard TCP is unsupported")]
fn cross_shard_tcp_dial_is_rejected() {
    let log: Log = Arc::new(Mutex::new(String::new()));
    let mut sim = ShardedSimulator::new(
        topology(0.0),
        config(QueueKind::Heap),
        ShardPlan::round_robin(2),
    );
    sim.add_host(&[addr(0)], Box::new(TcpEcho { log: log.clone() }));
    sim.add_host(
        &[addr(1)],
        Box::new(TcpDialer {
            me: sock(1),
            server: SocketAddr::new(addr(0), 53),
            log,
        }),
    );
    sim.schedule_timer(1, SimTime::from_millis(1), 0);
    sim.run_until(SimTime::from_millis(100));
}

#[test]
fn zero_latency_topology_is_rejected() {
    let caught = std::panic::catch_unwind(|| {
        ShardedSimulator::new(
            Topology::uniform(PathConfig::with_rtt(SimDuration::ZERO)),
            config(QueueKind::Heap),
            ShardPlan::round_robin(2),
        )
    });
    assert!(caught.is_err(), "zero lookahead must be refused");
}
