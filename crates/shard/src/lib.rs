//! # ldp-shard
//!
//! A sharded, multi-core front-end for [`netsim`]: hosts are
//! partitioned across N worker simulators, each advancing on its own
//! thread, synchronized by conservative lookahead windows sized by the
//! topology's minimum one-way link latency. Cross-shard datagrams
//! travel through a deterministic exchange carrying their exact
//! single-shard event keys, so the merged transcript — and the
//! canonically ordered telemetry drain — are **byte-identical** to the
//! single-shard run for the same seed, for any shard count, on either
//! queue backend (DESIGN.md §10).
//!
//! ```
//! use ldp_shard::{ShardPlan, ShardedSimulator};
//! use netsim::{PathConfig, SimConfig, SimDuration, Topology};
//!
//! let topo = Topology::uniform(PathConfig::with_rtt(SimDuration::from_millis(10)));
//! let sim = ShardedSimulator::new(topo, SimConfig::default(), ShardPlan::round_robin(4));
//! assert_eq!(sim.shards(), 4);
//! assert_eq!(sim.lookahead(), SimDuration::from_millis(5));
//! ```

#![warn(missing_docs)]

pub mod exchange;
pub mod plan;
pub mod sim;

pub use exchange::Exchange;
pub use plan::ShardPlan;
pub use sim::{ControlId, GlobalHostId, ShardedSimulator};
