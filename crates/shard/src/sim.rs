//! The sharded coordinator: N `netsim` workers on N threads, advanced
//! in conservative lookahead windows.
//!
//! ## How equivalence works
//!
//! A single-shard [`Simulator`] orders events by `(time, lane, seq)`,
//! where the lane is the acting host's *global* id and the seq is that
//! lane's private counter. [`ShardedSimulator`] registers each host on
//! its worker under the same global lane, so every event carries
//! exactly the key it would have carried in the single-shard run —
//! keys never mention shards or threads. Cross-shard datagrams travel
//! through the [`Exchange`] with their keys attached and are enqueued
//! on the owning shard at the same position the single-shard queue
//! would have held them.
//!
//! Windows make that safe: with lookahead `L` = the topology's minimum
//! one-way latency, a window `[start, start + L)` can only produce
//! arrivals at `≥ start + L`, so no shard ever needs an event another
//! shard hasn't exported yet. The exchange asserts this invariant on
//! every routed packet.
//!
//! The merged transcript (host observations) and the canonically
//! ordered telemetry drain are therefore byte-identical to the
//! single-shard run for the same seed — the property the equivalence
//! suite locks in across `{Heap, BTree} × {1, 2, 8}` shards.
//!
//! ## What doesn't shard
//!
//! * TCP connections must have both endpoints on one shard
//!   ([`ShardPlan::pin`]); the conservative exchange carries only UDP.
//! * Control hosts (chaos agents) are replicated on every shard; their
//!   replicas' timer dispatches are excluded from event counts and
//!   telemetry by `netsim`'s control-lane discipline.

use std::any::Any;
use std::collections::BTreeMap;
use std::net::{IpAddr, SocketAddr};
use std::sync::mpsc::{Receiver, Sender};

use ldp_telemetry as tel;
use netsim::{
    stream_seed, FaultInjector, Host, HostStats, PacketBytes, RemoteUdp, SimConfig, SimDuration,
    SimTime, Simulator, Topology, DRIVER_LANE,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::exchange::Exchange;
use crate::plan::ShardPlan;

/// A host id in the sharded simulation: the host's registration index,
/// which is also its event-lane id on whichever worker holds it.
pub type GlobalHostId = usize;

/// Handle to a control host (replicated on every shard).
pub type ControlId = usize;

/// What the coordinator asks of a worker each round.
enum WorkerCmd {
    /// Deliver `inbox`, then process every event strictly before `end`.
    Advance { inbox: Vec<RemoteUdp>, end: SimTime },
    /// Deliver `inbox` only (left-over in-flight packets at the end of
    /// a bounded run); no reply expected.
    Flush { inbox: Vec<RemoteUdp> },
}

/// One worker's answer to an `Advance`.
struct Reply {
    shard: usize,
    count: u64,
    outbox: Vec<RemoteUdp>,
    next: Option<SimTime>,
    /// A panic caught inside the worker (e.g. the cross-shard-TCP
    /// assert); the coordinator re-raises it after the scope unwinds.
    panic: Option<Box<dyn Any + Send>>,
}

fn worker_loop(shard: usize, sim: &mut Simulator, rx: &Receiver<WorkerCmd>, tx: &Sender<Reply>) {
    'cmds: while let Ok(cmd) = rx.recv() {
        match cmd {
            WorkerCmd::Advance { inbox, end } => {
                let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    Exchange::deliver(sim, inbox);
                    let count = sim.run_window(end);
                    (count, sim.take_outbox(), sim.next_event_time())
                }));
                let reply = match ran {
                    Ok((count, outbox, next)) => {
                        Reply { shard, count, outbox, next, panic: None }
                    }
                    Err(payload) => Reply {
                        shard,
                        count: 0,
                        outbox: Vec::new(),
                        next: None,
                        panic: Some(payload),
                    },
                };
                let dead = reply.panic.is_some();
                if tx.send(reply).is_err() || dead {
                    break 'cmds;
                }
            }
            WorkerCmd::Flush { inbox } => Exchange::deliver(sim, inbox),
        }
    }
    // Park this thread's telemetry ring while the closure is still
    // running: `thread::scope` may unblock before TLS destructors do,
    // so relying on the recorder's exit-time flush would race the
    // coordinator's post-run `drain_all`.
    tel::flush_thread();
}

fn min_time(a: Option<SimTime>, b: Option<SimTime>) -> Option<SimTime> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// A drop-in, multi-core variant of [`netsim::Simulator`]: hosts are
/// partitioned across worker shards by a [`ShardPlan`], each worker
/// runs its own event loop on its own thread during [`run`] /
/// [`run_until`], and results are byte-identical to the single-shard
/// run for the same seed and workload.
///
/// [`run`]: ShardedSimulator::run
/// [`run_until`]: ShardedSimulator::run_until
pub struct ShardedSimulator {
    workers: Vec<Simulator>,
    plan: ShardPlan,
    exchange: Exchange,
    /// The conservative window length: no packet can cross a shard
    /// boundary faster than the fastest link's one-way latency.
    lookahead: SimDuration,
    now: SimTime,
    /// The one global driver-lane stream (keys for external timers and
    /// injections), lent to workers for driver-side actions.
    driver_seq: u64,
    driver_rng: StdRng,
    /// Global host id → (shard, worker-local id).
    hosts: Vec<(u32, usize)>,
    /// Control id → worker-local id of the replica on each shard.
    controls: Vec<Vec<usize>>,
    /// Global address → owning shard (control addresses excluded).
    owner: BTreeMap<IpAddr, u32>,
    /// Owner map changed since the workers' shard views were pushed.
    views_dirty: bool,
}

impl ShardedSimulator {
    /// New sharded simulator over `topology` with protocol `config`,
    /// partitioned per `plan`.
    ///
    /// Panics if the topology's minimum one-way latency is zero: a
    /// zero-latency link admits no conservative lookahead window.
    pub fn new(topology: Topology, config: SimConfig, plan: ShardPlan) -> Self {
        let lookahead = topology.min_one_way_latency();
        assert!(
            lookahead > SimDuration::ZERO,
            "sharded simulation needs a nonzero minimum link latency for lookahead \
             (a zero-RTT path admits no conservative window)"
        );
        let shards = plan.shards();
        let workers: Vec<Simulator> = (0..shards)
            .map(|_| Simulator::new(topology.clone(), config))
            .collect();
        ShardedSimulator {
            workers,
            plan,
            exchange: Exchange::new(shards, BTreeMap::new()),
            lookahead,
            now: SimTime::ZERO,
            driver_seq: 0,
            driver_rng: StdRng::seed_from_u64(stream_seed(config.seed, DRIVER_LANE)),
            hosts: Vec::new(),
            controls: Vec::new(),
            owner: BTreeMap::new(),
            views_dirty: false,
        }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> u32 {
        self.plan.shards()
    }

    /// The conservative window length in use.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Current simulated time (the max over workers after a run).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Register a host owning `addrs` on the shard the plan assigns.
    /// Returns the global host id — which is also the host's event
    /// lane, making keys identical to the single-shard run where
    /// global id = registration index.
    pub fn add_host(&mut self, addrs: &[IpAddr], host: Box<dyn Host>) -> GlobalHostId {
        let id = self.hosts.len();
        let shard = self.plan.shard_for(id);
        let local = self.workers[shard as usize].add_host_with_lane(addrs, host, id as u64);
        for addr in addrs {
            let prev = self.owner.insert(*addr, shard);
            assert!(prev.is_none(), "address {addr} already registered");
        }
        self.hosts.push((shard, local));
        self.views_dirty = true;
        id
    }

    /// Register a control host (chaos agent), replicated on every
    /// shard: `make(shard)` builds the replica for each worker. The
    /// replicas all see the same timers and issue the same commands;
    /// commands that target hosts on other shards are natural no-ops
    /// there. Control addresses stay out of the global owner map, so
    /// control hosts must not receive traffic or dial connections.
    pub fn add_control_host(
        &mut self,
        addrs: &[IpAddr],
        mut make: impl FnMut(u32) -> Box<dyn Host>,
    ) -> ControlId {
        let mut locals = Vec::with_capacity(self.workers.len());
        for (i, w) in self.workers.iter_mut().enumerate() {
            locals.push(w.add_control_host(addrs, make(i as u32)));
        }
        self.controls.push(locals);
        self.controls.len() - 1
    }

    /// Install a fault injector on every worker: `make(shard)` builds
    /// each replica. For sharded/single equivalence the injector's
    /// decisions must be stateless in the stream of packets it sees
    /// (e.g. hash-based draws over `(time, src, dst, size)`), since
    /// each replica sees only its own shard's traffic.
    pub fn set_fault_injectors(&mut self, mut make: impl FnMut(u32) -> Box<dyn FaultInjector>) {
        for (i, w) in self.workers.iter_mut().enumerate() {
            w.set_fault_injector(make(i as u32));
        }
    }

    /// Schedule a host timer externally, as [`Simulator::schedule_timer`]
    /// does: one global driver-lane key, routed to the host's shard.
    pub fn schedule_timer(&mut self, host: GlobalHostId, at: SimTime, token: u64) {
        let (shard, local) = self.hosts[host];
        let seq = self.driver_seq;
        self.driver_seq += 1;
        self.workers[shard as usize].schedule_timer_keyed(local, at, token, seq);
    }

    /// Schedule a timer on a control host: consumes ONE driver-lane
    /// key (matching the single-shard run) and arms every replica with
    /// the same key.
    pub fn schedule_control_timer(&mut self, ctrl: ControlId, at: SimTime, token: u64) {
        let seq = self.driver_seq;
        self.driver_seq += 1;
        for (i, w) in self.workers.iter_mut().enumerate() {
            let local = self.controls[ctrl][i];
            w.schedule_timer_keyed(local, at, token, seq);
        }
    }

    /// Inject a UDP datagram from outside, as
    /// [`Simulator::inject_udp`] does. Executed on the source's shard
    /// (for stats credit and fault draws) under the lent global driver
    /// stream; if the destination lives elsewhere the datagram crosses
    /// through the exchange immediately.
    pub fn inject_udp(&mut self, from: SocketAddr, to: SocketAddr, data: impl Into<PacketBytes>) {
        self.refresh_views();
        let shard = match self.owner.get(&from.ip()).or_else(|| self.owner.get(&to.ip())) {
            Some(&s) => s,
            None => 0,
        };
        let w = &mut self.workers[shard as usize];
        w.swap_driver_stream(&mut self.driver_seq, &mut self.driver_rng);
        w.inject_udp(from, to, data);
        w.swap_driver_stream(&mut self.driver_seq, &mut self.driver_rng);
        let out = w.take_outbox();
        if !out.is_empty() {
            self.exchange.route(out, self.now);
            self.deliver_exchange();
        }
    }

    /// Crash the host owning `addr` immediately (driver-side), as
    /// [`Simulator::crash_now`] does. No-op for unknown addresses.
    pub fn crash_now(&mut self, addr: IpAddr) {
        if let Some(&shard) = self.owner.get(&addr) {
            let w = &mut self.workers[shard as usize];
            w.swap_driver_stream(&mut self.driver_seq, &mut self.driver_rng);
            w.crash_now(addr);
            w.swap_driver_stream(&mut self.driver_seq, &mut self.driver_rng);
        }
    }

    /// Restart a crashed host (driver-side).
    pub fn restart_now(&mut self, addr: IpAddr) {
        if let Some(&shard) = self.owner.get(&addr) {
            let w = &mut self.workers[shard as usize];
            w.swap_driver_stream(&mut self.driver_seq, &mut self.driver_rng);
            w.restart_now(addr);
            w.swap_driver_stream(&mut self.driver_seq, &mut self.driver_rng);
        }
    }

    /// Whether the host owning `addr` is currently crashed.
    pub fn host_is_down(&self, addr: IpAddr) -> bool {
        match self.owner.get(&addr) {
            Some(&shard) => self.workers[shard as usize].host_is_down(addr),
            None => false,
        }
    }

    /// Counters for a host.
    pub fn stats(&self, host: GlobalHostId) -> HostStats {
        let (shard, local) = self.hosts[host];
        self.workers[shard as usize].stats(local)
    }

    /// Borrow a host back (e.g. to read results after the run).
    pub fn host(&self, host: GlobalHostId) -> &dyn Host {
        let (shard, local) = self.hosts[host];
        self.workers[shard as usize].host(local)
    }

    /// Mutable borrow of a host between runs.
    pub fn host_mut(&mut self, host: GlobalHostId) -> &mut (dyn Host + '_) {
        let (shard, local) = self.hosts[host];
        self.workers[shard as usize].host_mut(local)
    }

    /// Run until every queue drains. Returns the number of events
    /// processed (control-replica timers excluded), equal to the
    /// single-shard run's count.
    pub fn run(&mut self) -> u64 {
        self.drive(None)
    }

    /// Run until `deadline` passes (events at exactly `deadline`
    /// included, as in [`Simulator::run_until`]).
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.drive(Some(deadline))
    }

    /// Push the owner map to the workers' shard views (and rebuild the
    /// exchange's routing table) if hosts were added since last time.
    fn refresh_views(&mut self) {
        if !self.views_dirty {
            return;
        }
        self.views_dirty = false;
        debug_assert!(self.exchange.is_empty(), "exchange drains before view changes");
        for (i, w) in self.workers.iter_mut().enumerate() {
            w.set_shard_view(self.owner.clone(), i as u32);
        }
        self.exchange = Exchange::new(self.workers.len() as u32, self.owner.clone());
    }

    /// Hand every pending exchange packet to its owning worker's queue
    /// (between windows / outside the threaded scope).
    fn deliver_exchange(&mut self) {
        for i in 0..self.workers.len() {
            let batch = self.exchange.take(i as u32);
            Exchange::deliver(&mut self.workers[i], batch);
        }
    }

    /// The windowed parallel loop. Workers live for the duration of
    /// one drive; each round every worker receives its exchange inbox
    /// and a window end, processes events strictly before it, and
    /// reports its outbox and next event time. The window end is
    /// `min(next event anywhere) + lookahead`, so every cross-shard
    /// arrival lands at or beyond the end of the window that produced
    /// it — asserted per packet by the exchange.
    fn drive(&mut self, deadline: Option<SimTime>) -> u64 {
        self.refresh_views();
        let lookahead = self.lookahead;
        let mut nexts: Vec<Option<SimTime>> =
            self.workers.iter().map(Simulator::next_event_time).collect();
        let workers = &mut self.workers;
        let exchange = &mut self.exchange;
        let mut total: u64 = 0;
        let mut aborted: Option<Box<dyn Any + Send>> = None;

        std::thread::scope(|scope| {
            let (reply_tx, reply_rx) = std::sync::mpsc::channel::<Reply>();
            let mut cmd_txs: Vec<Sender<WorkerCmd>> = Vec::new();
            for (i, sim) in workers.iter_mut().enumerate() {
                let (tx, rx) = std::sync::mpsc::channel::<WorkerCmd>();
                cmd_txs.push(tx);
                let reply = reply_tx.clone();
                scope.spawn(move || worker_loop(i, sim, &rx, &reply));
            }
            drop(reply_tx);

            'rounds: loop {
                let mut next = exchange.next_arrival();
                for n in &nexts {
                    next = min_time(next, *n);
                }
                let Some(start) = next else { break };
                if let Some(d) = deadline {
                    if start > d {
                        break;
                    }
                }
                let mut end = start + lookahead;
                if let Some(d) = deadline {
                    // Events at exactly the deadline are in scope
                    // (run_until semantics), so the cap is d + 1 ns.
                    let cap = d + SimDuration::from_nanos(1);
                    if end > cap {
                        end = cap;
                    }
                }
                for (i, tx) in cmd_txs.iter().enumerate() {
                    let inbox = exchange.take(i as u32);
                    if tx.send(WorkerCmd::Advance { inbox, end }).is_err() {
                        break 'rounds; // worker gone; its panic is in flight
                    }
                }
                for _ in 0..cmd_txs.len() {
                    let Ok(reply) = reply_rx.recv() else { break 'rounds };
                    total += reply.count;
                    exchange.route(reply.outbox, end);
                    nexts[reply.shard] = reply.next;
                    if reply.panic.is_some() {
                        aborted = reply.panic;
                        break 'rounds;
                    }
                }
            }

            // A bounded run can leave packets in flight beyond the
            // deadline: park them in the owning workers' queues so the
            // next drive (or a longer deadline) picks them up.
            for (i, tx) in cmd_txs.iter().enumerate() {
                let inbox = exchange.take(i as u32);
                if !inbox.is_empty() {
                    let _ = tx.send(WorkerCmd::Flush { inbox });
                }
            }
            drop(cmd_txs); // workers exit; scope joins them
        });

        if let Some(payload) = aborted {
            std::panic::resume_unwind(payload);
        }

        match deadline {
            Some(d) => {
                for w in self.workers.iter_mut() {
                    w.advance_now_to(d);
                }
                if self.now < d {
                    self.now = d;
                }
            }
            None => {
                for w in self.workers.iter() {
                    if self.now < w.now() {
                        self.now = w.now();
                    }
                }
            }
        }
        total
    }
}
