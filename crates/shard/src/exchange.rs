//! The deterministic cross-shard packet exchange.
//!
//! Every datagram that crosses a shard boundary carries the explicit
//! `(time, lane, seq)` event key assigned on its *sending* shard.
//! Routing is a pure function of the destination address, and the
//! receiving queue orders purely by key — so the merged event order is
//! a function of the workload alone, never of thread scheduling.
//!
//! This module is the **only** sanctioned caller of
//! [`Simulator::enqueue_remote`] (ldp-lint rule S1): all cross-shard
//! traffic flows through the exchange, where the conservative-
//! lookahead invariant (`arrival ≥ window end`) is asserted on every
//! packet.

use std::collections::BTreeMap;
use std::net::IpAddr;

use netsim::{RemoteUdp, SimTime, Simulator};

/// Per-shard mailboxes for datagrams in flight between windows.
pub struct Exchange {
    inboxes: Vec<Vec<RemoteUdp>>,
    owner: BTreeMap<IpAddr, u32>,
}

impl Exchange {
    /// An empty exchange for `shards` workers over the global
    /// address→shard ownership map.
    pub fn new(shards: u32, owner: BTreeMap<IpAddr, u32>) -> Self {
        Exchange {
            inboxes: (0..shards).map(|_| Vec::new()).collect(),
            owner,
        }
    }

    /// Route one window's outbound datagrams into the destination
    /// shards' mailboxes. `horizon` is the end of the window that
    /// produced them: conservative lookahead guarantees every arrival
    /// is at or beyond it, so no shard can ever receive a packet for a
    /// time it has already processed.
    pub fn route(&mut self, outbound: Vec<RemoteUdp>, horizon: SimTime) {
        for r in outbound {
            assert!(
                r.at >= horizon,
                "lookahead violation: cross-shard packet for t={:?} inside window ending {:?}",
                r.at,
                horizon
            );
            let Some(&dest) = self.owner.get(&r.dst.ip()) else {
                // Workers only export globally-owned destinations;
                // anything else stays local and dies unroutable there.
                continue;
            };
            self.inboxes[dest as usize].push(r);
        }
    }

    /// Earliest pending arrival across all mailboxes (a lower bound on
    /// work the owning shards have not seen yet).
    pub fn next_arrival(&self) -> Option<SimTime> {
        self.inboxes
            .iter()
            .flatten()
            .map(|r| r.at)
            .min()
    }

    /// Take everything pending for one shard.
    pub fn take(&mut self, shard: u32) -> Vec<RemoteUdp> {
        std::mem::take(&mut self.inboxes[shard as usize])
    }

    /// True if no datagram is in flight between shards.
    pub fn is_empty(&self) -> bool {
        self.inboxes.iter().all(|b| b.is_empty())
    }

    /// Enqueue a batch into a worker's event queue under the original
    /// keys assigned on the sending shard. The queue orders by
    /// `(time, lane, seq)`, so the batch's vector order is irrelevant —
    /// delivery order is independent of thread scheduling by
    /// construction.
    pub fn deliver(sim: &mut Simulator, batch: impl IntoIterator<Item = RemoteUdp>) {
        for r in batch {
            sim.enqueue_remote(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, Ipv4Addr, SocketAddr};

    fn addr(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
    }

    fn sock(last: u8) -> SocketAddr {
        SocketAddr::new(addr(last), 53)
    }

    fn remote(at_ns: u64, dst: u8) -> RemoteUdp {
        RemoteUdp {
            at: SimTime::from_nanos(at_ns),
            lane: 1,
            seq: 0,
            src: sock(1),
            dst: sock(dst),
            data: vec![0u8; 4].into(),
        }
    }

    #[test]
    fn routes_by_destination_owner() {
        let mut owner = BTreeMap::new();
        owner.insert(addr(2), 1u32);
        owner.insert(addr(3), 0u32);
        let mut ex = Exchange::new(2, owner);
        assert!(ex.is_empty());
        ex.route(vec![remote(100, 2), remote(50, 3)], SimTime::from_nanos(10));
        assert_eq!(ex.next_arrival(), Some(SimTime::from_nanos(50)));
        assert_eq!(ex.take(1).len(), 1);
        assert_eq!(ex.take(0).len(), 1);
        assert!(ex.is_empty());
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn arrival_inside_the_window_is_a_hard_error() {
        let mut owner = BTreeMap::new();
        owner.insert(addr(2), 0u32);
        let mut ex = Exchange::new(1, owner);
        ex.route(vec![remote(5, 2)], SimTime::from_nanos(10));
    }
}
