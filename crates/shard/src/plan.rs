//! Host→shard assignment.
//!
//! The plan is pure data fixed before the run: a shard count plus
//! optional per-host pins. Placement never changes results — the lane
//! discipline in `netsim` makes transcripts shard-placement-invariant
//! — so the plan is purely a performance/locality knob, with one
//! semantic constraint: both endpoints of any TCP dial must land on
//! the same shard (the conservative exchange carries only UDP).

use std::collections::BTreeMap;

/// How global host ids map onto worker shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shards: u32,
    pinned: BTreeMap<usize, u32>,
}

impl ShardPlan {
    /// `shards` workers; host `i` lands on shard `i % shards` unless
    /// pinned. Clamps a zero shard count to one.
    pub fn round_robin(shards: u32) -> Self {
        ShardPlan {
            shards: shards.max(1),
            pinned: BTreeMap::new(),
        }
    }

    /// Pin one global host id to a specific shard (e.g. to co-locate
    /// the two endpoints of a TCP connection). Out-of-range shards are
    /// wrapped.
    pub fn pin(&mut self, host: usize, shard: u32) -> &mut Self {
        self.pinned.insert(host, shard % self.shards);
        self
    }

    /// Number of worker shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard a global host id lands on.
    pub fn shard_for(&self, host: usize) -> u32 {
        match self.pinned.get(&host) {
            Some(&s) => s,
            None => (host % self.shards as usize) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_and_pins_override() {
        let mut plan = ShardPlan::round_robin(3);
        assert_eq!(plan.shards(), 3);
        assert_eq!(plan.shard_for(0), 0);
        assert_eq!(plan.shard_for(4), 1);
        plan.pin(4, 2);
        assert_eq!(plan.shard_for(4), 2);
        assert_eq!(plan.shard_for(5), 2);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let plan = ShardPlan::round_robin(0);
        assert_eq!(plan.shards(), 1);
        assert_eq!(plan.shard_for(7), 0);
    }
}
