//! # workloads
//!
//! Trace generators standing in for the paper's proprietary captures
//! (Table 1), each calibrated to the published statistics:
//!
//! - [`synthetic`] — fixed inter-arrival traces syn-0..syn-4 for replay
//!   timing validation (Figures 6, 7).
//! - [`broot`] — B-Root-like root-server traffic: ~38 k q/s, ~1 M
//!   clients with Zipf per-client load, 72.3 % DO, 3 % TCP (Figures 8,
//!   9, 10, 11, 13, 14, 15).
//! - [`recursive`] — Rec-17-like department-resolver traffic across
//!   ~549 zones (hierarchy-emulation experiments).
//! - [`attack`] — DoS attack overlays (random-subdomain floods, query
//!   floods, connection floods), the stress-testing application the
//!   paper motivates.
//! - [`zipf`] — the heavy-tail sampler underlying the above.

#![warn(missing_docs)]

pub mod attack;
pub mod broot;
pub mod recursive;
pub mod synthetic;
pub mod zipf;

pub use attack::{AttackKind, AttackSpec};
pub use broot::{client_addr, BRootSpec};
pub use recursive::RecursiveSpec;
pub use synthetic::SyntheticTraceSpec;
pub use zipf::Zipf;
