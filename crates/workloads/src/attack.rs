//! Attack workloads: the paper motivates LDplayer with "how does the
//! current server operate under the stress of a DoS attack?" (§1, §5's
//! future applications). This module generates the classic attack
//! shapes against DNS infrastructure, to be mixed over a base trace:
//!
//! - **random-subdomain (water-torture) floods**: unique junk labels
//!   under a victim zone, defeating caches and hitting the
//!   authoritative with NXDOMAINs;
//! - **direct query floods** from a spoofed-source botnet;
//! - **connection floods** (TCP SYN-heavy: many fresh connections, one
//!   query each).

use std::net::{IpAddr, Ipv4Addr, SocketAddr};

use dns_wire::{RecordType, Transport};
use ldp_trace::TraceEntry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The attack flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Unique random labels under `victim_zone` (cache-busting).
    RandomSubdomain,
    /// Repeated identical queries (amplification-style senders).
    QueryFlood,
    /// One query per fresh TCP connection (connection exhaustion).
    ConnectionFlood,
}

/// Specification of an attack trace.
#[derive(Debug, Clone)]
pub struct AttackSpec {
    /// Attack flavor.
    pub kind: AttackKind,
    /// Queries per second during the attack.
    pub rate: f64,
    /// Attack duration, seconds.
    pub duration_secs: f64,
    /// When the attack starts, seconds into the trace timeline.
    pub start_secs: f64,
    /// Number of attacking sources (spoofed or real).
    pub bots: usize,
    /// The zone under attack.
    pub victim_zone: String,
    /// Target server.
    pub server: SocketAddr,
}

impl Default for AttackSpec {
    fn default() -> Self {
        AttackSpec {
            kind: AttackKind::RandomSubdomain,
            rate: 10_000.0,
            duration_secs: 60.0,
            start_secs: 0.0,
            bots: 5_000,
            victim_zone: "example.com".into(),
            server: SocketAddr::new(IpAddr::V4(Ipv4Addr::new(10, 99, 0, 1)), 53),
        }
    }
}

impl AttackSpec {
    /// Generate the attack trace (time-ordered).
    pub fn generate(&self, seed: u64) -> Vec<TraceEntry> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa77ac4);
        let n = (self.rate * self.duration_secs) as usize;
        let mut out = Vec::with_capacity(n);
        let mut t = self.start_secs;
        let mut i = 0u64;
        while t < self.start_secs + self.duration_secs {
            t += -(1.0 - rng.gen::<f64>()).ln() / self.rate;
            if t >= self.start_secs + self.duration_secs {
                break;
            }
            let bot = rng.gen_range(0..self.bots);
            let src = SocketAddr::new(
                IpAddr::V4(Ipv4Addr::new(
                    172,
                    16 + ((bot >> 16) & 0x0f) as u8,
                    ((bot >> 8) & 0xff) as u8,
                    (bot & 0xff) as u8,
                )),
                1024 + (bot % 60_000) as u16,
            );
            let qname = match self.kind {
                AttackKind::RandomSubdomain => {
                    // Unique label every time: no cache can help.
                    format!("x{:016x}.{}", rng.gen::<u64>(), self.victim_zone)
                }
                AttackKind::QueryFlood | AttackKind::ConnectionFlood => {
                    format!("www.{}", self.victim_zone)
                }
            };
            let mut entry = TraceEntry::query(
                (t * 1e6) as u64,
                src,
                self.server,
                (i & 0xffff) as u16,
                qname.parse().expect("valid name"),
                RecordType::A,
            );
            if self.kind == AttackKind::ConnectionFlood {
                entry.transport = Transport::Tcp;
            }
            out.push(entry);
            i += 1;
        }
        out
    }

    /// Merge an attack into a base trace, keeping global time order —
    /// the "what if this trace happened under attack" mutation.
    pub fn overlay(&self, base: &[TraceEntry], seed: u64) -> Vec<TraceEntry> {
        let mut merged: Vec<TraceEntry> = base.to_vec();
        merged.extend(self.generate(seed));
        merged.sort_by_key(|e| e.time_us);
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticTraceSpec;
    use std::collections::HashSet;

    #[test]
    fn random_subdomain_names_are_unique() {
        let spec = AttackSpec {
            rate: 1000.0,
            duration_secs: 2.0,
            ..Default::default()
        };
        let t = spec.generate(1);
        assert!(t.len() > 1500);
        let names: HashSet<String> = t.iter().map(|e| e.qname().unwrap().to_string()).collect();
        assert_eq!(names.len(), t.len(), "every attack name unique");
        assert!(names.iter().all(|n| n.ends_with("example.com.")));
    }

    #[test]
    fn query_flood_repeats_one_name() {
        let spec = AttackSpec {
            kind: AttackKind::QueryFlood,
            rate: 500.0,
            duration_secs: 1.0,
            ..Default::default()
        };
        let t = spec.generate(2);
        let names: HashSet<String> = t.iter().map(|e| e.qname().unwrap().to_string()).collect();
        assert_eq!(names.len(), 1);
    }

    #[test]
    fn connection_flood_is_tcp() {
        let spec = AttackSpec {
            kind: AttackKind::ConnectionFlood,
            rate: 500.0,
            duration_secs: 1.0,
            ..Default::default()
        };
        let t = spec.generate(3);
        assert!(t.iter().all(|e| e.transport == Transport::Tcp));
    }

    #[test]
    fn bots_bounded() {
        let spec = AttackSpec {
            rate: 2000.0,
            duration_secs: 2.0,
            bots: 50,
            ..Default::default()
        };
        let t = spec.generate(4);
        let sources: HashSet<IpAddr> = t.iter().map(|e| e.src.ip()).collect();
        assert!(sources.len() <= 50);
    }

    #[test]
    fn overlay_interleaves_in_time_order() {
        let base = SyntheticTraceSpec::fixed_interarrival(0.01, 10.0).generate(1);
        let spec = AttackSpec {
            rate: 200.0,
            duration_secs: 4.0,
            start_secs: 3.0,
            ..Default::default()
        };
        let merged = spec.overlay(&base, 5);
        assert!(merged.len() > base.len());
        assert!(merged.windows(2).all(|w| w[0].time_us <= w[1].time_us));
        // Attack confined to its window.
        let attack_times: Vec<f64> = merged
            .iter()
            .filter(|e| e.src.ip().to_string().starts_with("172."))
            .map(|e| e.time_secs())
            .collect();
        assert!(attack_times.iter().all(|&t| (3.0..7.1).contains(&t)));
    }

    #[test]
    fn deterministic() {
        let spec = AttackSpec::default();
        let a = AttackSpec { duration_secs: 1.0, ..spec.clone() }.generate(9);
        let b = AttackSpec { duration_secs: 1.0, ..spec }.generate(9);
        assert_eq!(a, b);
    }
}
