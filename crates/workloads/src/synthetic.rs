//! Synthetic traces with fixed inter-arrival times — the paper's syn-0
//! through syn-4 (Table 1), used to validate replay timing across four
//! orders of magnitude of query rate (Figures 6 and 7).

use std::net::{IpAddr, Ipv4Addr, SocketAddr};

use dns_wire::RecordType;
use ldp_trace::TraceEntry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification for a fixed-inter-arrival synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticTraceSpec {
    /// Gap between consecutive queries, seconds.
    pub interarrival_secs: f64,
    /// Total trace duration, seconds.
    pub duration_secs: f64,
    /// Size of the client-IP pool queries rotate through (Table 1 shows
    /// ~10 k for the fast traces).
    pub client_pool: usize,
    /// Destination server address.
    pub server: SocketAddr,
}

impl SyntheticTraceSpec {
    /// A spec matching the paper's defaults: 60-minute trace, 10 k
    /// client pool, wildcard-able names under `example.com`.
    pub fn fixed_interarrival(interarrival_secs: f64, duration_secs: f64) -> Self {
        SyntheticTraceSpec {
            interarrival_secs,
            duration_secs,
            client_pool: 10_000,
            server: SocketAddr::new(IpAddr::V4(Ipv4Addr::new(10, 99, 0, 1)), 53),
        }
    }

    /// The paper's five synthetic traces syn-0..syn-4 (Table 1):
    /// inter-arrivals of 1 s down to 0.1 ms over 60 minutes.
    pub fn paper_series() -> Vec<(String, SyntheticTraceSpec)> {
        [1.0, 0.1, 0.01, 0.001, 0.0001]
            .iter()
            .enumerate()
            .map(|(i, &ia)| {
                (
                    format!("syn-{i}"),
                    SyntheticTraceSpec::fixed_interarrival(ia, 3600.0),
                )
            })
            .collect()
    }

    /// Number of queries this spec will produce.
    pub fn query_count(&self) -> usize {
        (self.duration_secs / self.interarrival_secs).round() as usize
    }

    /// Generate the trace. Every query carries a unique name (the
    /// paper's trick "to allow us to associate queries with responses
    /// after-the-fact"), all under `example.com` so a wildcard zone
    /// answers them.
    pub fn generate(&self, seed: u64) -> Vec<TraceEntry> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.query_count();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let t_us = (i as f64 * self.interarrival_secs * 1e6).round() as u64;
            let client_idx = rng.gen_range(0..self.client_pool);
            // Pool of client addresses across a /16-ish space.
            let ip = Ipv4Addr::new(
                10,
                1 + (client_idx / 65536) as u8,
                ((client_idx / 256) % 256) as u8,
                (client_idx % 256) as u8,
            );
            let src = SocketAddr::new(IpAddr::V4(ip), 10_000 + (client_idx % 50_000) as u16);
            out.push(TraceEntry::query(
                t_us,
                src,
                self.server,
                i as u16,
                format!("u{i}.example.com").parse().expect("valid name"),
                RecordType::A,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_trace::TraceStats;

    #[test]
    fn count_matches_rate() {
        let spec = SyntheticTraceSpec::fixed_interarrival(0.01, 60.0);
        assert_eq!(spec.query_count(), 6000);
        let t = spec.generate(1);
        assert_eq!(t.len(), 6000);
    }

    #[test]
    fn interarrival_is_fixed() {
        let t = SyntheticTraceSpec::fixed_interarrival(0.001, 1.0).generate(1);
        let stats = TraceStats::compute(&t).unwrap();
        assert!((stats.interarrival_mean - 0.001).abs() < 1e-9);
        assert!(stats.interarrival_stddev < 1e-9);
    }

    #[test]
    fn names_are_unique() {
        let t = SyntheticTraceSpec::fixed_interarrival(0.01, 10.0).generate(1);
        let names: std::collections::HashSet<String> =
            t.iter().map(|e| e.qname().unwrap().to_string()).collect();
        assert_eq!(names.len(), t.len());
        assert!(names.iter().all(|n| n.ends_with("example.com.")));
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = SyntheticTraceSpec::fixed_interarrival(0.01, 5.0);
        assert_eq!(spec.generate(7), spec.generate(7));
        assert_ne!(spec.generate(7), spec.generate(8));
    }

    #[test]
    fn paper_series_shapes() {
        let series = SyntheticTraceSpec::paper_series();
        assert_eq!(series.len(), 5);
        assert_eq!(series[0].0, "syn-0");
        // Table 1 record counts: 3.6k, 36k, 360k, 3.6M, 36M.
        assert_eq!(series[0].1.query_count(), 3_600);
        assert_eq!(series[1].1.query_count(), 36_000);
        assert_eq!(series[2].1.query_count(), 360_000);
        assert_eq!(series[3].1.query_count(), 3_600_000);
        assert_eq!(series[4].1.query_count(), 36_000_000);
    }

    #[test]
    fn client_pool_respected() {
        let mut spec = SyntheticTraceSpec::fixed_interarrival(0.001, 30.0);
        spec.client_pool = 100;
        let t = spec.generate(3);
        let clients: std::collections::HashSet<std::net::IpAddr> =
            t.iter().map(|e| e.src.ip()).collect();
        assert!(clients.len() <= 100);
        assert!(clients.len() > 90, "pool mostly covered: {}", clients.len());
    }
}
