//! A Zipf-distributed sampler over ranks `0..n`, used to give clients
//! the heavy-tailed per-client query load real root traffic shows
//! (paper Figure 15c: ~1 % of clients send ~75 % of queries, ~81 % send
//! fewer than 10).

use rand::Rng;

/// Zipf sampler with exponent `s` over `n` ranks, via precomputed
/// cumulative weights and binary search (exact, O(log n) per sample).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n` ranks with exponent `s` (s > 0; larger =
    /// more skew).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        // Normalize.
        for c in cumulative.iter_mut() {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false (n > 0 enforced).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cumulative.partition_point(|&c| c < u)
    }

    /// The probability mass of the top `k` ranks.
    pub fn top_k_mass(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.cumulative[k.min(self.cumulative.len()) - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rank_zero_most_popular() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[500]);
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn top_mass_monotone_in_s() {
        let flat = Zipf::new(10_000, 0.5);
        let skew = Zipf::new(10_000, 1.3);
        assert!(skew.top_k_mass(100) > flat.top_k_mass(100));
    }

    #[test]
    fn top_k_mass_bounds() {
        let z = Zipf::new(100, 1.0);
        assert_eq!(z.top_k_mass(0), 0.0);
        assert!((z.top_k_mass(100) - 1.0).abs() < 1e-12);
        assert!((z.top_k_mass(1000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "zero ranks")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }
}
