//! Rec-17-like traces: the workload seen by a department-level
//! recursive resolver (Table 1: 91 clients, 20 k queries over an hour,
//! ~549 distinct zones). These drive the hierarchy-emulation
//! experiments: every query must be resolvable by walking root → TLD →
//! SLD through the meta-DNS-server.

use std::net::{IpAddr, Ipv4Addr, SocketAddr};

use dns_wire::RecordType;
use ldp_trace::TraceEntry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Specification for a recursive-resolver workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecursiveSpec {
    /// Trace duration, seconds.
    pub duration_secs: f64,
    /// Mean stub query rate, q/s (Rec-17: ~5.5 q/s).
    pub mean_rate: f64,
    /// Number of stub clients (Rec-17: 91).
    pub clients: usize,
    /// Number of distinct second-level zones queried (Rec-17: 549).
    pub zones: usize,
    /// Zipf exponent over zone popularity.
    pub zipf_s: f64,
    /// Hosts per zone (www, mail, api, ...).
    pub hosts_per_zone: usize,
    /// The recursive resolver the stubs query.
    pub resolver: SocketAddr,
}

impl RecursiveSpec {
    /// A Rec-17-shaped spec (Table 1).
    pub fn rec_17() -> Self {
        RecursiveSpec {
            duration_secs: 3600.0,
            mean_rate: 5.53, // ⇒ ~20 k queries/hour
            clients: 91,
            zones: 549,
            zipf_s: 1.0,
            hosts_per_zone: 4,
            resolver: SocketAddr::new(IpAddr::V4(Ipv4Addr::new(10, 2, 0, 1)), 53),
        }
    }

    /// The set of second-level zone names this spec queries
    /// (deterministic, independent of the RNG): `z<i>.example-<tld>`.
    pub fn zone_names(&self) -> Vec<String> {
        let tlds = ["com", "net", "org"];
        (0..self.zones)
            .map(|i| format!("zone{}.ex{}.{}", i, i % 40, tlds[i % tlds.len()]))
            .collect()
    }

    /// Host labels per zone.
    pub fn host_labels() -> &'static [&'static str] {
        &["www", "mail", "api", "cdn", "ns1", "login", "static", "img"]
    }

    /// Generate the stub-to-recursive query trace.
    pub fn generate(&self, seed: u64) -> Vec<TraceEntry> {
        let mut rng = StdRng::seed_from_u64(seed);
        let zone_zipf = Zipf::new(self.zones, self.zipf_s);
        let zones = self.zone_names();
        let hosts = Self::host_labels();
        let n = (self.duration_secs * self.mean_rate) as usize;
        let mut out = Vec::with_capacity(n);
        let mut t = 0.0f64;
        let mut i = 0u64;
        while t < self.duration_secs {
            t += -(1.0 - rng.gen::<f64>()).ln() / self.mean_rate;
            if t >= self.duration_secs {
                break;
            }
            let client = rng.gen_range(0..self.clients);
            let src = SocketAddr::new(
                IpAddr::V4(Ipv4Addr::new(10, 2, 1, 1 + (client % 250) as u8)),
                20_000 + client as u16,
            );
            let zone = &zones[zone_zipf.sample(&mut rng)];
            let host = hosts[rng.gen_range(0..self.hosts_per_zone.min(hosts.len()))];
            out.push(TraceEntry::query(
                (t * 1e6) as u64,
                src,
                self.resolver,
                (i & 0xffff) as u16,
                format!("{host}.{zone}").parse().expect("valid name"),
                RecordType::A,
            ));
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_trace::TraceStats;
    use std::collections::HashSet;

    fn quick() -> (RecursiveSpec, Vec<TraceEntry>) {
        let spec = RecursiveSpec {
            duration_secs: 600.0,
            mean_rate: 20.0,
            zones: 100,
            ..RecursiveSpec::rec_17()
        };
        let t = spec.generate(11);
        (spec, t)
    }

    #[test]
    fn table1_shape() {
        let spec = RecursiveSpec::rec_17();
        // ~20 k records over the hour.
        let expected = spec.duration_secs * spec.mean_rate;
        assert!((expected - 19_908.0).abs() < 100.0);
        assert_eq!(spec.clients, 91);
        assert_eq!(spec.zone_names().len(), 549);
    }

    #[test]
    fn clients_bounded() {
        let (spec, t) = quick();
        let clients: HashSet<std::net::IpAddr> = t.iter().map(|e| e.src.ip()).collect();
        assert!(clients.len() <= spec.clients);
    }

    #[test]
    fn zones_covered_with_zipf_popularity() {
        let (spec, t) = quick();
        let zone_of = |name: &str| -> String {
            // host.zoneN.exM.tld → drop the host label.
            name.split_once('.').unwrap().1.to_string()
        };
        let mut counts: std::collections::HashMap<String, usize> = Default::default();
        for e in &t {
            *counts.entry(zone_of(&e.qname().unwrap().to_string())).or_default() += 1;
        }
        assert!(counts.len() > spec.zones / 2, "most zones touched: {}", counts.len());
        let max = counts.values().max().unwrap();
        let mean = t.len() / counts.len();
        assert!(*max > 3 * mean, "popular zones dominate");
    }

    #[test]
    fn all_names_resolvable_shape() {
        let (spec, t) = quick();
        let zones: HashSet<String> = spec.zone_names().into_iter().collect();
        for e in t.iter().take(200) {
            let name = e.qname().unwrap().to_string();
            let zone = name.split_once('.').unwrap().1.trim_end_matches('.');
            assert!(zones.contains(zone), "query {name} maps to a known zone");
        }
    }

    #[test]
    fn rate_matches() {
        let (_, t) = quick();
        let stats = TraceStats::compute(&t).unwrap();
        assert!((stats.mean_rate - 20.0).abs() < 3.0, "rate {}", stats.mean_rate);
    }

    #[test]
    fn deterministic() {
        let spec = RecursiveSpec { duration_secs: 60.0, ..RecursiveSpec::rec_17() };
        assert_eq!(spec.generate(5), spec.generate(5));
    }
}
