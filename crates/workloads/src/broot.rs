//! B-Root-like trace generation.
//!
//! The paper replays proprietary DITL captures of B-Root (Table 1:
//! B-Root-16, B-Root-17a, B-Root-17b). Those traces cannot be shipped,
//! so this generator produces traces with the same *statistical shape* —
//! the properties every experiment in the paper actually depends on:
//!
//! - mean rate ~38 k q/s with slow time-of-day style variation
//!   (Figure 8 validates per-second rate tracking),
//! - Poisson-like inter-arrivals at microsecond scale (Figures 6, 7),
//! - ~1 M distinct clients with Zipf per-client load and bursty
//!   temporal locality, jointly calibrated so that ~1 % of clients
//!   carry ~3/4 of all queries, ~80 % send <10 queries (Figure 15c),
//!   and a 20 s window sees ~55-60 k distinct sources at full scale
//!   (the driver of Figure 13's connection counts) — verify with
//!   `cargo run --release -p ldp-bench --bin calibrate_broot`,
//! - 72.3 % of queries with the EDNS DO bit (§5.1) and ~3 % over TCP
//!   (§5.2),
//! - root-server name mix: mostly junk (NXDOMAIN) plus real TLD
//!   referrals.

use std::net::{IpAddr, Ipv4Addr, SocketAddr};

use dns_wire::{RecordType, Transport};
use ldp_trace::TraceEntry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// The TLD labels used for "valid" root queries (a representative
/// subset; the zone builder delegates each of these).
pub const TLDS: &[&str] = &[
    "com", "net", "org", "edu", "gov", "mil", "int", "arpa", "io", "uk", "de", "jp", "fr", "nl",
    "br", "au", "cn", "ru", "info", "biz", "xyz", "online", "top", "site", "club", "app", "dev",
];

/// Specification for a B-Root-like trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BRootSpec {
    /// Trace duration, seconds (paper: 3600 for -16/-17a, 1200 for -17b).
    pub duration_secs: f64,
    /// Mean query rate, q/s (paper: median 38 k).
    pub mean_rate: f64,
    /// Distinct client population (paper: ~1.07 M - 1.17 M).
    pub clients: usize,
    /// Zipf exponent of the per-client load distribution.
    pub zipf_s: f64,
    /// Fraction of queries with the DO bit set (72.3 % as of 2017).
    pub do_fraction: f64,
    /// Fraction of queries over TCP (~3 %).
    pub tcp_fraction: f64,
    /// Fraction of queries for names under real TLDs (answered with a
    /// referral); the rest are junk names (NXDOMAIN at the root).
    pub valid_fraction: f64,
    /// Amplitude of the slow sinusoidal rate modulation (0.0–1.0).
    pub rate_wave: f64,
    /// Temporal locality: the probability that a query *continues a
    /// burst* from a recently active client instead of being a fresh
    /// Zipf draw. Real resolvers query in episodes; without this, the
    /// active-client set (and thus the §5.2 concurrent-connection
    /// counts) comes out several times too large, while with a plain
    /// shared pool the per-client load CDF (Figure 15c) flattens.
    /// Burst continuation picks a *recency-biased* (geometric) entry
    /// from the recent-client stack, so light clients appear once in a
    /// tight burst and heavy Zipf ranks stay continuously active.
    pub locality: f64,
    /// Depth of the recent-client stack bursts draw from.
    pub active_pool: usize,
    /// Server (root) address queries are sent to.
    pub server: SocketAddr,
}

impl BRootSpec {
    /// Full-scale spec shaped like B-Root-17a (Table 1). ~141 M queries:
    /// generation takes minutes and several GB — intended for the real
    /// benchmark harness.
    pub fn b_root_17a() -> Self {
        BRootSpec {
            duration_secs: 3600.0,
            mean_rate: 39_000.0,
            clients: 1_170_000,
            zipf_s: 1.25,
            do_fraction: 0.723,
            tcp_fraction: 0.03,
            valid_fraction: 0.35,
            rate_wave: 0.15,
            locality: 0.45,
            active_pool: 64,
            server: SocketAddr::new(IpAddr::V4(Ipv4Addr::new(10, 99, 0, 1)), 53),
        }
    }

    /// Full-scale spec shaped like B-Root-16 (Table 1): ~38 k q/s
    /// median, ~1.07 M clients, 2016 DO mix.
    pub fn b_root_16_like() -> Self {
        BRootSpec {
            mean_rate: 38_000.0,
            clients: 1_070_000,
            ..BRootSpec::b_root_17a()
        }
    }

    /// A spec shaped like the 20-minute B-Root-17b subset.
    pub fn b_root_17b() -> Self {
        BRootSpec {
            duration_secs: 1200.0,
            mean_rate: 44_000.0,
            clients: 725_000,
            ..BRootSpec::b_root_17a()
        }
    }

    /// The same distributions at a reduced scale: `scale` divides the
    /// duration-rate product and client count, keeping every ratio the
    /// paper's results depend on. Used by tests and quick experiment
    /// runs.
    pub fn scaled(self, scale: f64) -> Self {
        BRootSpec {
            mean_rate: (self.mean_rate / scale).max(1.0),
            clients: ((self.clients as f64 / scale) as usize).max(10),
            ..self
        }
    }

    /// Generate the trace (time-ordered).
    pub fn generate(&self, seed: u64) -> Vec<TraceEntry> {
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf = Zipf::new(self.clients, self.zipf_s);
        let expected = (self.duration_secs * self.mean_rate) as usize;
        let mut out = Vec::with_capacity(expected + expected / 8);
        // Recent-client stack for the burst model.
        let stack_cap = self.active_pool.max(1);
        let mut recent: std::collections::VecDeque<usize> =
            std::collections::VecDeque::with_capacity(stack_cap);

        let mut t = 0.0f64;
        let mut i = 0u64;
        while t < self.duration_secs {
            // Inhomogeneous Poisson arrivals: rate modulated by a slow
            // sine (period = trace duration) so per-second rates vary as
            // in real traffic.
            let phase = 2.0 * std::f64::consts::PI * t / self.duration_secs;
            let rate = self.mean_rate * (1.0 + self.rate_wave * phase.sin());
            let gap = -(1.0 - rng.gen::<f64>()).ln() / rate;
            t += gap;
            if t >= self.duration_secs {
                break;
            }
            let client_rank = if !recent.is_empty() && rng.gen::<f64>() < self.locality {
                // Continue a burst: geometric recency bias (depth 0 =
                // the most recent client).
                let mut depth = 0usize;
                while depth + 1 < recent.len() && rng.gen::<f64>() < 0.5 {
                    depth += 1;
                }
                recent[depth]
            } else {
                let rank = zipf.sample(&mut rng);
                recent.push_front(rank);
                recent.truncate(stack_cap);
                rank
            };
            let src = client_addr(client_rank);
            let qname = if rng.gen::<f64>() < self.valid_fraction {
                let tld = TLDS[rng.gen_range(0..TLDS.len())];
                format!("w{}.example.{}", i % 100_000, tld)
            } else {
                // Root junk: random nonexistent TLDs.
                format!("junk{}.invalid{}", i, rng.gen_range(0..100_000))
            };
            let mut entry = TraceEntry::query(
                (t * 1e6) as u64,
                src,
                self.server,
                (i & 0xffff) as u16,
                qname.parse().expect("valid name"),
                if rng.gen::<f64>() < 0.1 {
                    RecordType::AAAA
                } else {
                    RecordType::A
                },
            );
            if rng.gen::<f64>() < self.do_fraction {
                entry.message.set_dnssec_ok(true);
            }
            if rng.gen::<f64>() < self.tcp_fraction {
                entry.transport = Transport::Tcp;
            }
            out.push(entry);
            i += 1;
        }
        out
    }
}

/// Deterministic client address for a Zipf rank: spread across
/// 100.64.0.0/10-style space, one address per rank.
pub fn client_addr(rank: usize) -> SocketAddr {
    let ip = Ipv4Addr::new(
        100,
        64 + ((rank >> 16) & 0x3f) as u8,
        ((rank >> 8) & 0xff) as u8,
        (rank & 0xff) as u8,
    );
    // Vary source port by rank too (recursives use ephemeral ports).
    SocketAddr::new(IpAddr::V4(ip), 1024 + (rank % 60_000) as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_trace::TraceStats;
    use std::collections::HashMap;

    fn small() -> Vec<TraceEntry> {
        // 60 s at ~2 k q/s with 10 k clients: fast enough for tests.
        let spec = BRootSpec {
            duration_secs: 60.0,
            mean_rate: 2000.0,
            clients: 10_000,
            ..BRootSpec::b_root_17a()
        };
        spec.generate(42)
    }

    #[test]
    fn rate_close_to_spec() {
        let t = small();
        let stats = TraceStats::compute(&t).unwrap();
        assert!(
            (stats.mean_rate - 2000.0).abs() < 200.0,
            "mean rate {}",
            stats.mean_rate
        );
    }

    #[test]
    fn time_ordered() {
        let t = small();
        assert!(t.windows(2).all(|w| w[0].time_us <= w[1].time_us));
    }

    #[test]
    fn do_fraction_matches() {
        let t = small();
        let frac = t.iter().filter(|e| e.message.dnssec_ok()).count() as f64 / t.len() as f64;
        assert!((frac - 0.723).abs() < 0.03, "DO fraction {frac}");
    }

    #[test]
    fn tcp_fraction_matches() {
        let t = small();
        let frac = t.iter().filter(|e| e.transport == Transport::Tcp).count() as f64
            / t.len() as f64;
        assert!((frac - 0.03).abs() < 0.01, "TCP fraction {frac}");
    }

    #[test]
    fn client_load_is_heavy_tailed() {
        let t = small();
        let mut per_client: HashMap<std::net::IpAddr, usize> = HashMap::new();
        for e in &t {
            *per_client.entry(e.src.ip()).or_default() += 1;
        }
        let mut loads: Vec<usize> = per_client.values().copied().collect();
        loads.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = loads.iter().sum();
        let top1pct = loads.len().div_ceil(100);
        let top_share: usize = loads.iter().take(top1pct).sum();
        let share = top_share as f64 / total as f64;
        // Figure 15c shape: a tiny fraction of clients dominates. With a
        // smaller population, the skew softens; still expect > 40 %.
        assert!(share > 0.4, "top 1% share {share}");
        // Most clients are low-volume.
        let low = loads.iter().filter(|&&l| l < 10).count() as f64 / loads.len() as f64;
        assert!(low > 0.5, "low-volume fraction {low}");
    }

    #[test]
    fn rate_varies_over_time() {
        let spec = BRootSpec {
            duration_secs: 100.0,
            mean_rate: 1000.0,
            clients: 1000,
            rate_wave: 0.3,
            ..BRootSpec::b_root_17a()
        };
        let t = spec.generate(7);
        let mut rates = ldp_metrics_rate(&t);
        rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = rates[2]; // skip edge buckets
        let max = rates[rates.len() - 3];
        assert!(max > min * 1.2, "rate varies: {min}..{max}");
    }

    fn ldp_metrics_rate(t: &[TraceEntry]) -> Vec<f64> {
        let mut counts = vec![0u64; 101];
        let t0 = t[0].time_us;
        for e in t {
            let idx = ((e.time_us - t0) / 1_000_000) as usize;
            counts[idx.min(100)] += 1;
        }
        counts.into_iter().map(|c| c as f64).collect()
    }

    #[test]
    fn deterministic() {
        let spec = BRootSpec {
            duration_secs: 5.0,
            mean_rate: 500.0,
            clients: 100,
            ..BRootSpec::b_root_17a()
        };
        assert_eq!(spec.generate(1), spec.generate(1));
        assert_ne!(spec.generate(1), spec.generate(2));
    }

    #[test]
    fn valid_and_junk_mix() {
        let t = small();
        let valid = t
            .iter()
            .filter(|e| {
                let n = e.qname().unwrap().to_string();
                TLDS.iter().any(|tld| n.ends_with(&format!(".{tld}.")))
            })
            .count() as f64
            / t.len() as f64;
        assert!((valid - 0.35).abs() < 0.05, "valid fraction {valid}");
    }

    #[test]
    fn scaled_preserves_ratios() {
        let full = BRootSpec::b_root_17a();
        let small = full.scaled(1000.0);
        assert_eq!(small.do_fraction, full.do_fraction);
        assert_eq!(small.tcp_fraction, full.tcp_fraction);
        assert!((small.mean_rate - 39.0).abs() < 0.1);
        assert_eq!(small.clients, 1170);
    }

    #[test]
    fn client_addr_injective_for_small_ranks() {
        let mut seen = std::collections::HashSet::new();
        for rank in 0..100_000 {
            assert!(seen.insert(client_addr(rank)), "collision at {rank}");
        }
    }
}
