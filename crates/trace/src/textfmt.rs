//! The column-based plain-text trace format (paper §2.5, Figure 3):
//! one line per DNS message, whitespace-separated fields, trivially
//! editable with a text editor or awk — the "easy manipulation" leg of
//! the trace-mutation pipeline.
//!
//! Columns:
//!
//! ```text
//! time_us  src_ip  src_port  dst_ip  dst_port  proto  id  qr  qname  qtype  qclass  flags  do
//! ```
//!
//! `flags` is a compact letter set (`R`=rd, `A`=aa, `T`=tc, `a`=ra, `-`
//! if none). The format carries everything needed to *replay queries*;
//! response bodies are not representable here (use the binary format for
//! lossless pipelines) — matching the paper, whose text stage exists to
//! edit queries.

use std::net::{IpAddr, SocketAddr};

use dns_wire::{Message, Name, RecordClass, RecordType, Transport};

use crate::entry::TraceEntry;

/// Errors parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for TextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TextError {}

/// Render one entry as a text line.
pub fn to_line(entry: &TraceEntry) -> String {
    let m = &entry.message;
    let (qname, qtype, qclass) = match m.question() {
        Some(q) => (q.name.to_string(), q.qtype.to_string(), q.qclass.to_string()),
        None => (".".to_string(), "A".to_string(), "IN".to_string()),
    };
    let mut flags = String::new();
    if m.flags.recursion_desired {
        flags.push('R');
    }
    if m.flags.authoritative {
        flags.push('A');
    }
    if m.flags.truncated {
        flags.push('T');
    }
    if m.flags.recursion_available {
        flags.push('a');
    }
    if flags.is_empty() {
        flags.push('-');
    }
    format!(
        "{} {} {} {} {} {} {} {} {} {} {} {} {}",
        entry.time_us,
        entry.src.ip(),
        entry.src.port(),
        entry.dst.ip(),
        entry.dst.port(),
        entry.transport.mnemonic(),
        m.id,
        if m.flags.response { 1 } else { 0 },
        qname,
        qtype,
        qclass,
        flags,
        if m.dnssec_ok() { 1 } else { 0 },
    )
}

/// Render a whole trace.
pub fn write_text(entries: &[TraceEntry]) -> String {
    let mut out = String::with_capacity(entries.len() * 64);
    out.push_str("# time_us src_ip src_port dst_ip dst_port proto id qr qname qtype qclass flags do\n");
    for e in entries {
        out.push_str(&to_line(e));
        out.push('\n');
    }
    out
}

/// Parse one text line back into an entry.
pub fn from_line(line: &str, lineno: usize) -> Result<TraceEntry, TextError> {
    let err = |m: String| TextError { line: lineno, message: m };
    let f: Vec<&str> = line.split_whitespace().collect();
    if f.len() < 13 {
        return Err(err(format!("expected 13 fields, got {}", f.len())));
    }
    let time_us: u64 = f[0].parse().map_err(|_| err(format!("bad time {:?}", f[0])))?;
    let src_ip: IpAddr = f[1].parse().map_err(|_| err(format!("bad src ip {:?}", f[1])))?;
    let src_port: u16 = f[2].parse().map_err(|_| err(format!("bad src port {:?}", f[2])))?;
    let dst_ip: IpAddr = f[3].parse().map_err(|_| err(format!("bad dst ip {:?}", f[3])))?;
    let dst_port: u16 = f[4].parse().map_err(|_| err(format!("bad dst port {:?}", f[4])))?;
    let transport =
        Transport::from_mnemonic(f[5]).ok_or_else(|| err(format!("bad proto {:?}", f[5])))?;
    let id: u16 = f[6].parse().map_err(|_| err(format!("bad id {:?}", f[6])))?;
    let qr = f[7] == "1";
    let qname: Name = f[8].parse().map_err(|e| err(format!("bad qname: {e}")))?;
    let qtype =
        RecordType::from_str_mnemonic(f[9]).ok_or_else(|| err(format!("bad qtype {:?}", f[9])))?;
    let qclass = RecordClass::from_str_mnemonic(f[10])
        .ok_or_else(|| err(format!("bad qclass {:?}", f[10])))?;
    let do_bit = f[12] == "1";

    let mut message = Message::query(id, qname, qtype);
    message.questions[0].qclass = qclass;
    message.flags.response = qr;
    message.flags.recursion_desired = f[11].contains('R');
    message.flags.authoritative = f[11].contains('A');
    message.flags.truncated = f[11].contains('T');
    message.flags.recursion_available = f[11].contains('a');
    if !f[11].contains('R') {
        message.flags.recursion_desired = false;
    }
    message.set_dnssec_ok(do_bit);

    Ok(TraceEntry {
        time_us,
        src: SocketAddr::new(src_ip, src_port),
        dst: SocketAddr::new(dst_ip, dst_port),
        transport,
        message,
    })
}

/// Parse a whole text trace (skipping `#` comments and blank lines).
pub fn parse_text(text: &str) -> Result<Vec<TraceEntry>, TextError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        out.push(from_line(trimmed, i + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceEntry {
        let mut e = TraceEntry::query(
            1_461_234_567_012_345,
            "192.168.1.1:5301".parse().unwrap(),
            "198.41.0.4:53".parse().unwrap(),
            4660,
            "example.com".parse().unwrap(),
            RecordType::A,
        );
        e.transport = Transport::Tcp;
        e.message.set_dnssec_ok(true);
        e
    }

    #[test]
    fn line_round_trip() {
        let e = sample();
        let line = to_line(&e);
        let back = from_line(&line, 1).unwrap();
        assert_eq!(back.time_us, e.time_us);
        assert_eq!(back.src, e.src);
        assert_eq!(back.dst, e.dst);
        assert_eq!(back.transport, e.transport);
        assert_eq!(back.message.id, e.message.id);
        assert_eq!(back.message.question(), e.message.question());
        assert!(back.message.dnssec_ok());
        assert!(back.message.flags.recursion_desired);
    }

    #[test]
    fn whole_trace_round_trip() {
        let entries = vec![sample(), {
            let mut e = sample();
            e.time_us += 1000;
            e.message.set_dnssec_ok(false);
            e.message.flags.recursion_desired = false;
            e
        }];
        let text = write_text(&entries);
        let back = parse_text(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert!(!back[1].message.dnssec_ok());
        assert!(!back[1].message.flags.recursion_desired);
        assert_eq!(back[1].time_us, entries[1].time_us);
    }

    #[test]
    fn line_is_editable_with_field_replacement() {
        // The use case: swap the transport column with sed/awk.
        let line = to_line(&sample());
        let edited = line.replace(" TCP ", " TLS ");
        let back = from_line(&edited, 1).unwrap();
        assert_eq!(back.transport, Transport::Tls);
    }

    #[test]
    fn ipv6_addresses_survive() {
        let mut e = sample();
        e.src = "[2001:db8::1]:5353".parse().unwrap();
        let back = from_line(&to_line(&e), 1).unwrap();
        assert_eq!(back.src, e.src);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = format!("# header\n\n{}\n", to_line(&sample()));
        assert_eq!(parse_text(&text).unwrap().len(), 1);
    }

    #[test]
    fn bad_fields_error_with_line_number() {
        let err = parse_text("bogus line with too few fields\n").unwrap_err();
        assert_eq!(err.line, 1);
        let mut line = to_line(&sample());
        line = line.replacen("TCP", "SCTP", 1);
        let err = from_line(&line, 5).unwrap_err();
        assert_eq!(err.line, 5);
        assert!(err.message.contains("proto"));
    }
}
