//! Classic libpcap file format, implemented from scratch: global header
//! plus per-packet headers, with Ethernet/IPv4/UDP (and simplified TCP)
//! encapsulation of DNS messages.
//!
//! This is the "network trace" input of the paper's Figure 3 pipeline.
//! Writing always emits one DNS message per packet (TCP messages carry
//! the RFC 7766 2-byte length prefix); reading tolerates both orders of
//! magic (big/little endian) and skips non-DNS packets rather than
//! failing, since real captures contain ARP/ICMP noise.

use std::net::{IpAddr, Ipv4Addr, SocketAddr};

use dns_wire::{Message, Transport};

use crate::entry::TraceEntry;

const PCAP_MAGIC_LE: u32 = 0xa1b2c3d4; // stored LE in our writer
const LINKTYPE_ETHERNET: u32 = 1;
const ETHERTYPE_IPV4: u16 = 0x0800;

/// Errors reading a pcap file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcapError {
    /// Too short or bad magic.
    BadHeader,
    /// Truncated packet record.
    Truncated,
    /// Unsupported link type.
    UnsupportedLinkType(u32),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::BadHeader => write!(f, "bad pcap global header"),
            PcapError::Truncated => write!(f, "truncated pcap record"),
            PcapError::UnsupportedLinkType(l) => write!(f, "unsupported link type {l}"),
        }
    }
}

impl std::error::Error for PcapError {}

/// Serialize a trace as a pcap file (Ethernet/IPv4; IPv6 entries are
/// skipped with a count returned).
///
/// Lossiness note: TLS entries serialize as TCP frames (a capture shows
/// TCP); on read they come back as [`Transport::Tls`] only when a port
/// is 853. The binary format ([`crate::binfmt`]) is the lossless one.
pub fn write_pcap(entries: &[TraceEntry]) -> (Vec<u8>, usize) {
    let mut out = Vec::with_capacity(24 + entries.len() * 128);
    // Global header.
    out.extend_from_slice(&PCAP_MAGIC_LE.to_le_bytes());
    out.extend_from_slice(&2u16.to_le_bytes()); // version major
    out.extend_from_slice(&4u16.to_le_bytes()); // version minor
    out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
    out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
    out.extend_from_slice(&65535u32.to_le_bytes()); // snaplen
    out.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());

    let mut skipped = 0;
    for e in entries {
        let (IpAddr::V4(src_ip), IpAddr::V4(dst_ip)) = (e.src.ip(), e.dst.ip()) else {
            skipped += 1;
            continue;
        };
        let dns = e.message.encode();
        let l4 = build_l4(e.transport, e.src.port(), e.dst.port(), &dns);
        let ip = build_ipv4(src_ip, dst_ip, e.transport, &l4);
        let frame_len = 14 + ip.len();
        out.extend_from_slice(&((e.time_us / 1_000_000) as u32).to_le_bytes());
        out.extend_from_slice(&((e.time_us % 1_000_000) as u32).to_le_bytes());
        out.extend_from_slice(&(frame_len as u32).to_le_bytes());
        out.extend_from_slice(&(frame_len as u32).to_le_bytes());
        // Ethernet header: synthetic MACs.
        out.extend_from_slice(&[0x02, 0, 0, 0, 0, 1]);
        out.extend_from_slice(&[0x02, 0, 0, 0, 0, 2]);
        out.extend_from_slice(&ETHERTYPE_IPV4.to_be_bytes());
        out.extend_from_slice(&ip);
    }
    (out, skipped)
}

fn build_l4(transport: Transport, sport: u16, dport: u16, dns: &[u8]) -> Vec<u8> {
    match transport {
        Transport::Udp => {
            let mut out = Vec::with_capacity(8 + dns.len());
            out.extend_from_slice(&sport.to_be_bytes());
            out.extend_from_slice(&dport.to_be_bytes());
            out.extend_from_slice(&((8 + dns.len()) as u16).to_be_bytes());
            out.extend_from_slice(&0u16.to_be_bytes()); // checksum 0 = unset
            out.extend_from_slice(dns);
            out
        }
        Transport::Tcp | Transport::Tls => {
            // Minimal TCP header (20 bytes, PSH|ACK) + length-prefixed DNS.
            let mut out = Vec::with_capacity(22 + dns.len());
            out.extend_from_slice(&sport.to_be_bytes());
            out.extend_from_slice(&dport.to_be_bytes());
            out.extend_from_slice(&1u32.to_be_bytes()); // seq
            out.extend_from_slice(&1u32.to_be_bytes()); // ack
            out.push(5 << 4); // data offset 5 words
            out.push(0x18); // PSH|ACK
            out.extend_from_slice(&65535u16.to_be_bytes()); // window
            out.extend_from_slice(&0u16.to_be_bytes()); // checksum
            out.extend_from_slice(&0u16.to_be_bytes()); // urgent
            out.extend_from_slice(&(dns.len() as u16).to_be_bytes());
            out.extend_from_slice(dns);
            out
        }
    }
}

fn build_ipv4(src: Ipv4Addr, dst: Ipv4Addr, transport: Transport, l4: &[u8]) -> Vec<u8> {
    let total = 20 + l4.len();
    let mut out = Vec::with_capacity(total);
    out.push(0x45); // v4, IHL 5
    out.push(0);
    out.extend_from_slice(&(total as u16).to_be_bytes());
    out.extend_from_slice(&0u16.to_be_bytes()); // id
    out.extend_from_slice(&0u16.to_be_bytes()); // flags/frag
    out.push(64); // ttl
    out.push(match transport {
        Transport::Udp => 17,
        Transport::Tcp | Transport::Tls => 6,
    });
    out.extend_from_slice(&0u16.to_be_bytes()); // checksum placeholder
    out.extend_from_slice(&src.octets());
    out.extend_from_slice(&dst.octets());
    // Fill in the header checksum.
    let cksum = ipv4_checksum(&out[..20]);
    out[10..12].copy_from_slice(&cksum.to_be_bytes());
    out.extend_from_slice(l4);
    out
}

/// RFC 1071 internet checksum over an IPv4 header.
pub fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    for chunk in header.chunks(2) {
        let word = if chunk.len() == 2 {
            u16::from_be_bytes([chunk[0], chunk[1]])
        } else {
            u16::from_be_bytes([chunk[0], 0])
        };
        sum += word as u32;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Parse a pcap file into trace entries. Non-DNS and unparseable
/// packets are counted and skipped, not fatal.
pub fn parse_pcap(buf: &[u8]) -> Result<(Vec<TraceEntry>, usize), PcapError> {
    if buf.len() < 24 {
        return Err(PcapError::BadHeader);
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    let (le, ns_res) = match magic {
        0xa1b2c3d4 => (true, false),
        0xd4c3b2a1 => (false, false),
        0xa1b23c4d => (true, true),
        0x4d3cb2a1 => (false, true),
        _ => return Err(PcapError::BadHeader),
    };
    let read_u32 = |b: &[u8]| -> u32 {
        let arr: [u8; 4] = b.try_into().unwrap();
        if le {
            u32::from_le_bytes(arr)
        } else {
            u32::from_be_bytes(arr)
        }
    };
    let linktype = read_u32(&buf[20..24]);
    if linktype != LINKTYPE_ETHERNET {
        return Err(PcapError::UnsupportedLinkType(linktype));
    }
    let mut entries = Vec::new();
    let mut skipped = 0usize;
    let mut pos = 24;
    while pos + 16 <= buf.len() {
        let ts_sec = read_u32(&buf[pos..pos + 4]) as u64;
        let ts_frac = read_u32(&buf[pos + 4..pos + 8]) as u64;
        let incl = read_u32(&buf[pos + 8..pos + 12]) as usize;
        pos += 16;
        if pos + incl > buf.len() {
            return Err(PcapError::Truncated);
        }
        let frame = &buf[pos..pos + incl];
        pos += incl;
        let time_us = ts_sec * 1_000_000 + if ns_res { ts_frac / 1000 } else { ts_frac };
        match parse_frame(frame, time_us) {
            Some(e) => entries.push(e),
            None => skipped += 1,
        }
    }
    Ok((entries, skipped))
}

fn parse_frame(frame: &[u8], time_us: u64) -> Option<TraceEntry> {
    if frame.len() < 14 {
        return None;
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != ETHERTYPE_IPV4 {
        return None;
    }
    let ip = &frame[14..];
    if ip.len() < 20 || ip[0] >> 4 != 4 {
        return None;
    }
    let ihl = ((ip[0] & 0x0f) as usize) * 4;
    let proto = ip[9];
    let src_ip = Ipv4Addr::new(ip[12], ip[13], ip[14], ip[15]);
    let dst_ip = Ipv4Addr::new(ip[16], ip[17], ip[18], ip[19]);
    let l4 = &ip[ihl..];
    let (transport, sport, dport, dns) = match proto {
        17 => {
            if l4.len() < 8 {
                return None;
            }
            let sport = u16::from_be_bytes([l4[0], l4[1]]);
            let dport = u16::from_be_bytes([l4[2], l4[3]]);
            (Transport::Udp, sport, dport, &l4[8..])
        }
        6 => {
            if l4.len() < 20 {
                return None;
            }
            let sport = u16::from_be_bytes([l4[0], l4[1]]);
            let dport = u16::from_be_bytes([l4[2], l4[3]]);
            let offset = ((l4[12] >> 4) as usize) * 4;
            if l4.len() < offset + 2 {
                return None;
            }
            let seg = &l4[offset..];
            // Our writer length-prefixes; require a consistent prefix.
            let dns_len = u16::from_be_bytes([seg[0], seg[1]]) as usize;
            if seg.len() < 2 + dns_len {
                return None;
            }
            // DNS-over-TLS is indistinguishable from TCP in a cleartext
            // capture except by its well-known port (853, RFC 7858).
            let transport = if sport == 853 || dport == 853 {
                Transport::Tls
            } else {
                Transport::Tcp
            };
            (transport, sport, dport, &seg[2..2 + dns_len])
        }
        _ => return None,
    };
    let message = Message::decode(dns).ok()?;
    Some(TraceEntry {
        time_us,
        src: SocketAddr::new(IpAddr::V4(src_ip), sport),
        dst: SocketAddr::new(IpAddr::V4(dst_ip), dport),
        transport,
        message,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::RecordType;

    fn sample(i: u64, tcp: bool) -> TraceEntry {
        let mut e = TraceEntry::query(
            1_461_234_567_000_000 + i * 1000,
            format!("192.168.0.{}:53{}", 1 + i % 200, i % 10).parse().unwrap(),
            "198.41.0.4:53".parse().unwrap(),
            i as u16,
            format!("q{i}.example.com").parse().unwrap(),
            RecordType::A,
        );
        if tcp {
            e.transport = Transport::Tcp;
        }
        e
    }

    #[test]
    fn udp_round_trip() {
        let entries: Vec<TraceEntry> = (0..10).map(|i| sample(i, false)).collect();
        let (buf, skipped) = write_pcap(&entries);
        assert_eq!(skipped, 0);
        let (back, bad) = parse_pcap(&buf).unwrap();
        assert_eq!(bad, 0);
        assert_eq!(back, entries);
    }

    #[test]
    fn tcp_round_trip() {
        let entries: Vec<TraceEntry> = (0..10).map(|i| sample(i, true)).collect();
        let (buf, _) = write_pcap(&entries);
        let (back, bad) = parse_pcap(&buf).unwrap();
        assert_eq!(bad, 0);
        assert_eq!(back, entries);
    }

    #[test]
    fn timestamps_preserved_to_microseconds() {
        let e = sample(7, false);
        let (buf, _) = write_pcap(std::slice::from_ref(&e));
        let (back, _) = parse_pcap(&buf).unwrap();
        assert_eq!(back[0].time_us, e.time_us);
    }

    #[test]
    fn ipv6_entries_skipped_on_write() {
        let mut e = sample(0, false);
        e.src = "[2001:db8::1]:5353".parse().unwrap();
        let (buf, skipped) = write_pcap(&[e]);
        assert_eq!(skipped, 1);
        let (back, _) = parse_pcap(&buf).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(parse_pcap(&[0u8; 24]), Err(PcapError::BadHeader));
        assert_eq!(parse_pcap(&[0u8; 3]), Err(PcapError::BadHeader));
    }

    #[test]
    fn non_dns_packets_skipped() {
        let entries = vec![sample(0, false)];
        let (mut buf, _) = write_pcap(&entries);
        // Append an ARP-ish frame: valid record header, ethertype 0x0806.
        let frame = {
            let mut f = vec![0u8; 14];
            f[12] = 0x08;
            f[13] = 0x06;
            f
        };
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        buf.extend_from_slice(&frame);
        let (back, skipped) = parse_pcap(&buf).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn truncated_record_rejected() {
        let (buf, _) = write_pcap(&[sample(0, false)]);
        let r = parse_pcap(&buf[..buf.len() - 3]);
        assert_eq!(r, Err(PcapError::Truncated));
    }

    #[test]
    fn checksum_known_vector() {
        // Wikipedia's classic IPv4 header checksum example.
        let header = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(ipv4_checksum(&header), 0xb861);
    }

    #[test]
    fn checksum_validates_written_headers() {
        let (buf, _) = write_pcap(&[sample(3, false)]);
        // First packet's IP header starts at 24 (global) + 16 (rec) + 14 (eth).
        let ip = &buf[54..74];
        // Checksum over a correct header (with its checksum field) is 0.
        assert_eq!(ipv4_checksum(ip), 0);
    }
}
