//! The query mutator (paper §2.5): programmatic, composable rewrites of
//! a trace for what-if experiments — "what if all queries used TCP?",
//! "what if every query set the DO bit?" — plus the replay plumbing
//! mutations (unique-prefix tagging for query/response matching, §4.2).

use dns_wire::Transport;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::entry::TraceEntry;

/// One rewrite applied to every entry (or a deterministic subset).
#[derive(Debug, Clone)]
pub enum Mutation {
    /// Force every message onto one transport (the §5.2 experiments).
    SetTransport(Transport),
    /// Set the EDNS DO bit on a deterministic fraction of queries
    /// (0.0–1.0); the paper's §5.1 sweeps 72.3 % → 100 %.
    SetDnssecFraction(f64),
    /// Clear the DO bit everywhere.
    ClearDnssec,
    /// Prepend a unique per-query label to each qname (e.g. `q0042.`),
    /// the paper's trick for matching replayed queries to originals.
    UniquePrefix {
        /// Prefix text; the entry index is appended.
        tag: String,
    },
    /// Scale all inter-arrival gaps by a factor (2.0 = half the rate).
    ScaleTime(f64),
    /// Keep only queries (drop responses).
    QueriesOnly,
    /// Rewrite every destination to one server address.
    RetargetServer(std::net::SocketAddr),
}

/// Applies an ordered list of mutations to a trace.
///
/// Mutations are deterministic: fraction-based choices derive from a
/// seeded RNG so the same mutator config always produces the same
/// mutated trace (repeatability, paper §2.1).
#[derive(Debug, Clone)]
pub struct Mutator {
    mutations: Vec<Mutation>,
    seed: u64,
}

impl Mutator {
    /// New mutator with a fixed default seed.
    pub fn new(mutations: Vec<Mutation>) -> Self {
        Mutator {
            mutations,
            seed: 0x1edbeef,
        }
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Apply all mutations, in order, to `trace`.
    pub fn apply(&self, trace: &mut Vec<TraceEntry>) {
        for m in &self.mutations {
            self.apply_one(m, trace);
        }
    }

    fn apply_one(&self, m: &Mutation, trace: &mut Vec<TraceEntry>) {
        match m {
            Mutation::SetTransport(t) => {
                for e in trace.iter_mut() {
                    e.transport = *t;
                }
            }
            Mutation::SetDnssecFraction(frac) => {
                let mut rng = StdRng::seed_from_u64(self.seed);
                for e in trace.iter_mut() {
                    let on = rng.gen::<f64>() < *frac;
                    e.message.set_dnssec_ok(on);
                }
            }
            Mutation::ClearDnssec => {
                for e in trace.iter_mut() {
                    e.message.set_dnssec_ok(false);
                }
            }
            Mutation::UniquePrefix { tag } => {
                for (i, e) in trace.iter_mut().enumerate() {
                    if let Some(q) = e.message.questions.first_mut() {
                        let label = format!("{tag}{i}");
                        if let Ok(tagged) = q.name.child(label.as_bytes()) {
                            q.name = tagged;
                        }
                    }
                }
            }
            Mutation::ScaleTime(factor) => {
                if let Some(first) = trace.first().map(|e| e.time_us) {
                    for e in trace.iter_mut() {
                        let delta = e.time_us - first;
                        e.time_us = first + (delta as f64 * factor).round() as u64;
                    }
                }
            }
            Mutation::QueriesOnly => {
                trace.retain(|e| e.is_query());
            }
            Mutation::RetargetServer(addr) => {
                for e in trace.iter_mut() {
                    e.dst = *addr;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::RecordType;

    fn trace(n: u64) -> Vec<TraceEntry> {
        (0..n)
            .map(|i| {
                TraceEntry::query(
                    1_000_000 + i * 10_000,
                    format!("10.0.0.{}:1234", i % 250 + 1).parse().unwrap(),
                    "10.9.9.9:53".parse().unwrap(),
                    i as u16,
                    format!("q{i}.example.com").parse().unwrap(),
                    RecordType::A,
                )
            })
            .collect()
    }

    #[test]
    fn set_transport_all_tcp() {
        let mut t = trace(20);
        Mutator::new(vec![Mutation::SetTransport(Transport::Tcp)]).apply(&mut t);
        assert!(t.iter().all(|e| e.transport == Transport::Tcp));
    }

    #[test]
    fn dnssec_fraction_approximate_and_deterministic() {
        let mut t1 = trace(2000);
        let mut t2 = trace(2000);
        let m = Mutator::new(vec![Mutation::SetDnssecFraction(0.723)]);
        m.apply(&mut t1);
        m.apply(&mut t2);
        assert_eq!(t1, t2, "same seed, same outcome");
        let on = t1.iter().filter(|e| e.message.dnssec_ok()).count();
        let frac = on as f64 / t1.len() as f64;
        assert!((frac - 0.723).abs() < 0.05, "DO fraction {frac}");
    }

    #[test]
    fn dnssec_fraction_one_sets_all() {
        let mut t = trace(100);
        Mutator::new(vec![Mutation::SetDnssecFraction(1.0)]).apply(&mut t);
        assert!(t.iter().all(|e| e.message.dnssec_ok()));
        Mutator::new(vec![Mutation::ClearDnssec]).apply(&mut t);
        assert!(t.iter().all(|e| !e.message.dnssec_ok()));
    }

    #[test]
    fn unique_prefix_distinguishes_queries() {
        let mut t = trace(5);
        Mutator::new(vec![Mutation::UniquePrefix { tag: "ldp".into() }]).apply(&mut t);
        let names: std::collections::HashSet<String> =
            t.iter().map(|e| e.qname().unwrap().to_string()).collect();
        assert_eq!(names.len(), 5);
        assert!(t[0].qname().unwrap().to_string().starts_with("ldp0."));
        // Original name preserved as suffix.
        assert!(t[3].qname().unwrap().to_string().ends_with("q3.example.com."));
    }

    #[test]
    fn scale_time_doubles_gaps() {
        let mut t = trace(3);
        Mutator::new(vec![Mutation::ScaleTime(2.0)]).apply(&mut t);
        assert_eq!(t[0].time_us, 1_000_000);
        assert_eq!(t[1].time_us, 1_020_000);
        assert_eq!(t[2].time_us, 1_040_000);
    }

    #[test]
    fn queries_only_drops_responses() {
        let mut t = trace(4);
        t[2].message.flags.response = true;
        Mutator::new(vec![Mutation::QueriesOnly]).apply(&mut t);
        assert_eq!(t.len(), 3);
        assert!(t.iter().all(|e| e.is_query()));
    }

    #[test]
    fn retarget_server() {
        let mut t = trace(3);
        let new: std::net::SocketAddr = "127.0.0.1:5353".parse().unwrap();
        Mutator::new(vec![Mutation::RetargetServer(new)]).apply(&mut t);
        assert!(t.iter().all(|e| e.dst == new));
    }

    #[test]
    fn mutations_compose_in_order() {
        let mut t = trace(10);
        Mutator::new(vec![
            Mutation::SetTransport(Transport::Tls),
            Mutation::SetDnssecFraction(1.0),
            Mutation::UniquePrefix { tag: "x".into() },
        ])
        .apply(&mut t);
        assert!(t.iter().all(|e| e.transport == Transport::Tls));
        assert!(t.iter().all(|e| e.message.dnssec_ok()));
        assert!(t[9].qname().unwrap().to_string().starts_with("x9."));
    }
}
