//! Trace statistics: the columns of the paper's Table 1 (duration,
//! inter-arrival mean/stddev, distinct client IPs, record count).

use std::collections::HashSet;
use std::net::IpAddr;

use crate::entry::TraceEntry;

/// Summary statistics for one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of records (queries) in the trace.
    pub records: usize,
    /// Trace duration in seconds (first to last timestamp).
    pub duration_secs: f64,
    /// Mean inter-arrival time, seconds.
    pub interarrival_mean: f64,
    /// Standard deviation of inter-arrival time, seconds.
    pub interarrival_stddev: f64,
    /// Number of distinct client (source) IPs.
    pub client_ips: usize,
    /// Mean query rate (records / duration), per second.
    pub mean_rate: f64,
}

impl TraceStats {
    /// Compute stats over `trace` (assumed time-ordered; sorts a copy of
    /// the timestamps if not). Returns `None` for an empty trace.
    pub fn compute(trace: &[TraceEntry]) -> Option<TraceStats> {
        if trace.is_empty() {
            return None;
        }
        let mut times: Vec<u64> = trace.iter().map(|e| e.time_us).collect();
        if times.windows(2).any(|w| w[0] > w[1]) {
            times.sort_unstable();
        }
        let duration_us = times[times.len() - 1] - times[0];
        let gaps: Vec<f64> = times
            .windows(2)
            .map(|w| (w[1] - w[0]) as f64 / 1e6)
            .collect();
        let (mean, sd) = if gaps.is_empty() {
            (0.0, 0.0)
        } else {
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            (mean, var.sqrt())
        };
        let clients: HashSet<IpAddr> = trace.iter().map(|e| e.src.ip()).collect();
        let duration_secs = duration_us as f64 / 1e6;
        Some(TraceStats {
            records: trace.len(),
            duration_secs,
            interarrival_mean: mean,
            interarrival_stddev: sd,
            client_ips: clients.len(),
            mean_rate: if duration_secs > 0.0 {
                trace.len() as f64 / duration_secs
            } else {
                trace.len() as f64
            },
        })
    }

    /// Render a Table 1-style row.
    pub fn render_row(&self, name: &str) -> String {
        format!(
            "{:<12} {:>10} rec  {:>9.1} s  inter-arrival {:.6} ±{:.6} s  {:>8} client IPs  {:>9.0} q/s",
            name,
            self.records,
            self.duration_secs,
            self.interarrival_mean,
            self.interarrival_stddev,
            self.client_ips,
            self.mean_rate
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::RecordType;

    fn entry(t_us: u64, client: u8) -> TraceEntry {
        TraceEntry::query(
            t_us,
            format!("10.0.0.{client}:999").parse().unwrap(),
            "10.9.9.9:53".parse().unwrap(),
            1,
            "example.com".parse().unwrap(),
            RecordType::A,
        )
    }

    #[test]
    fn empty_is_none() {
        assert!(TraceStats::compute(&[]).is_none());
    }

    #[test]
    fn fixed_interarrival() {
        // 1 ms gaps, 11 records → 10 gaps, duration 10 ms.
        let trace: Vec<TraceEntry> = (0..11).map(|i| entry(i * 1000, (i % 3) as u8)).collect();
        let s = TraceStats::compute(&trace).unwrap();
        assert_eq!(s.records, 11);
        assert!((s.interarrival_mean - 0.001).abs() < 1e-12);
        assert!(s.interarrival_stddev < 1e-12);
        assert_eq!(s.client_ips, 3);
        assert!((s.duration_secs - 0.01).abs() < 1e-12);
        assert!((s.mean_rate - 1100.0).abs() < 1.0);
    }

    #[test]
    fn unordered_input_tolerated() {
        let trace = vec![entry(5000, 1), entry(1000, 2), entry(3000, 3)];
        let s = TraceStats::compute(&trace).unwrap();
        assert!((s.duration_secs - 0.004).abs() < 1e-12);
        assert!((s.interarrival_mean - 0.002).abs() < 1e-12);
    }

    #[test]
    fn single_record() {
        let s = TraceStats::compute(&[entry(1000, 1)]).unwrap();
        assert_eq!(s.records, 1);
        assert_eq!(s.duration_secs, 0.0);
        assert_eq!(s.interarrival_mean, 0.0);
    }

    #[test]
    fn render_row_contains_fields() {
        let trace: Vec<TraceEntry> = (0..10).map(|i| entry(i * 100, 1)).collect();
        let row = TraceStats::compute(&trace).unwrap().render_row("syn-0");
        assert!(row.contains("syn-0"));
        assert!(row.contains("10 rec"));
    }
}
