//! The unit of a DNS trace: one observed message with its timestamp,
//! addressing and transport.

use std::net::SocketAddr;

use dns_wire::{Message, Name, RecordType, Transport};

/// One trace record: a DNS message seen at a capture point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Capture time, microseconds since the epoch (pcap resolution).
    pub time_us: u64,
    /// Source address (the client for queries).
    pub src: SocketAddr,
    /// Destination address (the server for queries).
    pub dst: SocketAddr,
    /// Transport the message was carried over.
    pub transport: Transport,
    /// The parsed DNS message.
    pub message: Message,
}

impl TraceEntry {
    /// Convenience constructor for a UDP query entry.
    pub fn query(
        time_us: u64,
        src: SocketAddr,
        dst: SocketAddr,
        id: u16,
        qname: Name,
        qtype: RecordType,
    ) -> Self {
        TraceEntry {
            time_us,
            src,
            dst,
            transport: Transport::Udp,
            message: Message::query(id, qname, qtype),
        }
    }

    /// Capture time in floating-point seconds.
    pub fn time_secs(&self) -> f64 {
        self.time_us as f64 / 1e6
    }

    /// True if this entry is a query (QR = 0).
    pub fn is_query(&self) -> bool {
        !self.message.flags.response
    }

    /// The query name, if the message has a question.
    pub fn qname(&self) -> Option<&Name> {
        self.message.question().map(|q| &q.name)
    }
}

/// A whole trace: entries in capture order.
pub type Trace = Vec<TraceEntry>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_constructor() {
        let e = TraceEntry::query(
            1_461_234_567_012_345,
            "192.0.2.1:5301".parse().unwrap(),
            "198.41.0.4:53".parse().unwrap(),
            7,
            "example.com".parse().unwrap(),
            RecordType::A,
        );
        assert!(e.is_query());
        assert_eq!(e.transport, Transport::Udp);
        assert!((e.time_secs() - 1_461_234_567.012345).abs() < 1e-6);
        assert_eq!(e.qname().unwrap().to_string(), "example.com.");
    }
}
