//! # ldp-trace
//!
//! LDplayer's trace toolchain (paper §2.5, Figure 3): a from-scratch
//! libpcap reader/writer, the human-editable column-based plain-text
//! format, the length-prefixed internal binary message stream the replay
//! engine consumes, converters between all three, the query mutator for
//! what-if experiments, and Table 1-style trace statistics.
//!
//! ```
//! use ldp_trace::{TraceEntry, Mutator, Mutation};
//! use dns_wire::{RecordType, Transport};
//!
//! let mut trace = vec![TraceEntry::query(
//!     0, "10.0.0.1:999".parse().unwrap(), "10.0.0.2:53".parse().unwrap(),
//!     1, "example.com".parse().unwrap(), RecordType::A,
//! )];
//! // What if every query used TCP?
//! Mutator::new(vec![Mutation::SetTransport(Transport::Tcp)]).apply(&mut trace);
//! assert_eq!(trace[0].transport, Transport::Tcp);
//!
//! // Lossless binary round trip (the replay engine's input format).
//! let bin = ldp_trace::write_binary(&trace);
//! assert_eq!(ldp_trace::parse_binary(&bin).unwrap(), trace);
//! ```

#![warn(missing_docs)]

pub mod binfmt;
pub mod entry;
pub mod mutate;
pub mod pcap;
pub mod stats;
pub mod textfmt;

pub use binfmt::{parse_binary, write_binary, BinError, BinReader, StreamReader};
pub use entry::{Trace, TraceEntry};
pub use mutate::{Mutation, Mutator};
pub use pcap::{parse_pcap, write_pcap, PcapError};
pub use stats::TraceStats;
pub use textfmt::{parse_text, write_text, TextError};

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::RecordType;

    /// The full Figure 3 pipeline: pcap → text → (edit) → binary.
    #[test]
    fn figure3_pipeline_pcap_text_binary() {
        let entries: Vec<TraceEntry> = (0..20)
            .map(|i| {
                TraceEntry::query(
                    1_461_000_000_000_000 + i * 2500,
                    format!("192.0.2.{}:5301", 1 + i % 100).parse().unwrap(),
                    "198.41.0.4:53".parse().unwrap(),
                    i as u16,
                    format!("name{i}.example.com").parse().unwrap(),
                    RecordType::A,
                )
            })
            .collect();

        // pcap → entries.
        let (pcap_bytes, _) = write_pcap(&entries);
        let (from_pcap, skipped) = parse_pcap(&pcap_bytes).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(from_pcap, entries);

        // entries → text → entries (queries are lossless through text).
        let text = write_text(&from_pcap);
        let from_text = parse_text(&text).unwrap();
        assert_eq!(from_text.len(), entries.len());
        assert_eq!(from_text[3].qname(), entries[3].qname());

        // edit in text stage: all TCP.
        let edited = text.replace(" UDP ", " TCP ");
        let mutated = parse_text(&edited).unwrap();
        assert!(mutated.iter().all(|e| e.transport == dns_wire::Transport::Tcp));

        // entries → binary → entries.
        let bin = write_binary(&mutated);
        let from_bin = parse_binary(&bin).unwrap();
        mutated.iter().zip(&from_bin).for_each(|(a, b)| assert_eq!(a, b));
    }
}
