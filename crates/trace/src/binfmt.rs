//! The customized binary stream of internal messages (paper §2.5,
//! Figure 3): each record is length-prefixed so the replay engine can
//! stream-parse it with no per-record allocation surprises; the DNS
//! message itself is embedded in wire form, making the format lossless
//! (unlike the text format) and fast to decode.
//!
//! Record layout (all integers big-endian):
//!
//! ```text
//! u16 record_len   (bytes after this field)
//! u64 time_us
//! u8  addr_kind    (4 or 6)
//! src ip (4/16 bytes), u16 src_port
//! dst ip (4/16 bytes), u16 dst_port
//! u8  transport    (0=UDP 1=TCP 2=TLS)
//! u16 msg_len, msg bytes (DNS wire format)
//! ```

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};

use dns_wire::{Message, Transport};

use crate::entry::TraceEntry;

/// Errors decoding the binary stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// The stream ended mid-record.
    Truncated,
    /// A field held an invalid value.
    Invalid(&'static str),
    /// The embedded DNS message failed to parse.
    BadMessage(String),
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Truncated => write!(f, "binary stream truncated"),
            BinError::Invalid(what) => write!(f, "invalid field: {what}"),
            BinError::BadMessage(e) => write!(f, "bad DNS message: {e}"),
        }
    }
}

impl std::error::Error for BinError {}

fn put_addr(out: &mut Vec<u8>, addr: SocketAddr) {
    match addr.ip() {
        IpAddr::V4(v4) => out.extend_from_slice(&v4.octets()),
        IpAddr::V6(v6) => out.extend_from_slice(&v6.octets()),
    }
    out.extend_from_slice(&addr.port().to_be_bytes());
}

/// Append one record to `out`.
pub fn append_record(out: &mut Vec<u8>, entry: &TraceEntry) {
    let msg = entry.message.encode();
    let kind: u8 = match (entry.src.ip(), entry.dst.ip()) {
        (IpAddr::V4(_), IpAddr::V4(_)) => 4,
        _ => 6,
    };
    // With mixed families, promote v4 to mapped v6 for a uniform layout.
    let (src, dst) = if kind == 6 {
        (promote(entry.src), promote(entry.dst))
    } else {
        (entry.src, entry.dst)
    };
    let addr_len = if kind == 4 { 4 } else { 16 };
    let record_len = 8 + 1 + 2 * (addr_len + 2) + 1 + 2 + msg.len();
    out.extend_from_slice(&(record_len as u16).to_be_bytes());
    out.extend_from_slice(&entry.time_us.to_be_bytes());
    out.push(kind);
    put_addr(out, src);
    put_addr(out, dst);
    out.push(match entry.transport {
        Transport::Udp => 0,
        Transport::Tcp => 1,
        Transport::Tls => 2,
    });
    out.extend_from_slice(&(msg.len() as u16).to_be_bytes());
    out.extend_from_slice(&msg);
}

fn promote(addr: SocketAddr) -> SocketAddr {
    match addr.ip() {
        IpAddr::V4(v4) => SocketAddr::new(IpAddr::V6(v4.to_ipv6_mapped()), addr.port()),
        IpAddr::V6(_) => addr,
    }
}

/// Serialize a whole trace.
pub fn write_binary(entries: &[TraceEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * 96);
    for e in entries {
        append_record(&mut out, e);
    }
    out
}

/// A streaming reader over the binary format.
pub struct BinReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    /// Reader over a complete buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        BinReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.remaining() < n {
            return Err(BinError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Decode the next record, or `None` at a clean end of stream.
    pub fn next_record(&mut self) -> Result<Option<TraceEntry>, BinError> {
        if self.remaining() == 0 {
            return Ok(None);
        }
        let len = u16::from_be_bytes(self.take(2)?.try_into().unwrap()) as usize;
        let body = self.take(len)?;
        let mut p = 0usize;
        let mut field = |n: usize| -> Result<&[u8], BinError> {
            if body.len() < p + n {
                return Err(BinError::Truncated);
            }
            let s = &body[p..p + n];
            p += n;
            Ok(s)
        };
        let time_us = u64::from_be_bytes(field(8)?.try_into().unwrap());
        let kind = field(1)?[0];
        let addr_len = match kind {
            4 => 4,
            6 => 16,
            _ => return Err(BinError::Invalid("addr kind")),
        };
        let src_ip = parse_ip(field(addr_len)?, kind)?;
        let src_port = u16::from_be_bytes(field(2)?.try_into().unwrap());
        let dst_ip = parse_ip(field(addr_len)?, kind)?;
        let dst_port = u16::from_be_bytes(field(2)?.try_into().unwrap());
        let transport = match field(1)?[0] {
            0 => Transport::Udp,
            1 => Transport::Tcp,
            2 => Transport::Tls,
            _ => return Err(BinError::Invalid("transport")),
        };
        let msg_len = u16::from_be_bytes(field(2)?.try_into().unwrap()) as usize;
        let msg_bytes = field(msg_len)?;
        if p != body.len() {
            return Err(BinError::Invalid("record length mismatch"));
        }
        let message =
            Message::decode(msg_bytes).map_err(|e| BinError::BadMessage(e.to_string()))?;
        Ok(Some(TraceEntry {
            time_us,
            src: SocketAddr::new(src_ip, src_port),
            dst: SocketAddr::new(dst_ip, dst_port),
            transport,
            message,
        }))
    }

    /// Decode every record.
    pub fn read_all(&mut self) -> Result<Vec<TraceEntry>, BinError> {
        let mut out = Vec::new();
        while let Some(e) = self.next_record()? {
            out.push(e);
        }
        Ok(out)
    }
}

fn parse_ip(bytes: &[u8], kind: u8) -> Result<IpAddr, BinError> {
    Ok(match kind {
        4 => IpAddr::V4(Ipv4Addr::new(bytes[0], bytes[1], bytes[2], bytes[3])),
        6 => {
            let mut o = [0u8; 16];
            o.copy_from_slice(bytes);
            IpAddr::V6(Ipv6Addr::from(o))
        }
        _ => return Err(BinError::Invalid("addr kind")),
    })
}

/// Parse a whole binary trace.
pub fn parse_binary(buf: &[u8]) -> Result<Vec<TraceEntry>, BinError> {
    BinReader::new(buf).read_all()
}

/// A streaming reader over any [`std::io::Read`] source: full-scale
/// traces (B-Root-17a is ~14 GB in this format) never need to fit in
/// memory — this is the Reader process of the paper's Figure 4, which
/// "pre-loads a window of queries to avoid falling behind real time".
pub struct StreamReader<R: std::io::Read> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: std::io::Read> StreamReader<R> {
    /// Wrap a byte source.
    pub fn new(inner: R) -> Self {
        StreamReader {
            inner,
            buf: Vec::with_capacity(512),
        }
    }

    /// Read the next record; `Ok(None)` at clean end of stream.
    pub fn next_record(&mut self) -> Result<Option<TraceEntry>, BinError> {
        let mut len_buf = [0u8; 2];
        // Distinguish clean EOF (no bytes) from a torn record.
        match self.inner.read(&mut len_buf[..1]) {
            Ok(0) => return Ok(None),
            Ok(1) => {}
            Ok(_) => unreachable!(),
            Err(_) => return Err(BinError::Truncated),
        }
        self.inner
            .read_exact(&mut len_buf[1..])
            .map_err(|_| BinError::Truncated)?;
        let len = u16::from_be_bytes(len_buf) as usize;
        self.buf.clear();
        self.buf.resize(2 + len, 0);
        self.buf[..2].copy_from_slice(&len_buf);
        self.inner
            .read_exact(&mut self.buf[2..])
            .map_err(|_| BinError::Truncated)?;
        let mut reader = BinReader::new(&self.buf);
        reader.next_record()
    }

    /// Iterate records, stopping at the first error (reported once).
    pub fn iter(&mut self) -> impl Iterator<Item = Result<TraceEntry, BinError>> + '_ {
        std::iter::from_fn(move || self.next_record().transpose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::RecordType;

    fn sample(i: u64) -> TraceEntry {
        let mut e = TraceEntry::query(
            1_000_000 + i,
            "10.0.0.1:5301".parse().unwrap(),
            "10.0.0.9:53".parse().unwrap(),
            i as u16,
            format!("q{i}.example.com").parse().unwrap(),
            RecordType::A,
        );
        if i.is_multiple_of(2) {
            e.transport = Transport::Tcp;
        }
        if i.is_multiple_of(3) {
            e.message.set_dnssec_ok(true);
        }
        e
    }

    #[test]
    fn round_trip_many() {
        let entries: Vec<TraceEntry> = (0..50).map(sample).collect();
        let buf = write_binary(&entries);
        let back = parse_binary(&buf).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn ipv6_and_mixed_families() {
        let mut e = sample(1);
        e.src = "[2001:db8::1]:5353".parse().unwrap();
        let buf = write_binary(&[e.clone()]);
        let back = parse_binary(&buf).unwrap();
        assert_eq!(back[0].src, e.src);
        // v4 dst was promoted to a mapped v6 address.
        match back[0].dst.ip() {
            IpAddr::V6(v6) => assert_eq!(v6.to_ipv4_mapped().unwrap().to_string(), "10.0.0.9"),
            other => panic!("expected mapped v6, got {other}"),
        }
    }

    #[test]
    fn streaming_reader_yields_in_order() {
        let entries: Vec<TraceEntry> = (0..5).map(sample).collect();
        let buf = write_binary(&entries);
        let mut reader = BinReader::new(&buf);
        for want in &entries {
            let got = reader.next_record().unwrap().unwrap();
            assert_eq!(&got, want);
        }
        assert!(reader.next_record().unwrap().is_none());
    }

    #[test]
    fn truncated_stream_rejected() {
        let buf = write_binary(&[sample(0)]);
        for cut in 1..buf.len() {
            let r = parse_binary(&buf[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn garbage_transport_rejected() {
        let mut buf = write_binary(&[sample(1)]);
        // transport byte is at: 2 + 8 + 1 + (4+2)*2 = 23.
        buf[23] = 9;
        assert!(matches!(parse_binary(&buf), Err(BinError::Invalid("transport"))));
    }

    #[test]
    fn empty_stream_is_empty_trace() {
        assert_eq!(parse_binary(&[]).unwrap().len(), 0);
    }

    #[test]
    fn stream_reader_from_io() {
        let entries: Vec<TraceEntry> = (0..20).map(sample).collect();
        let buf = write_binary(&entries);
        let cursor = std::io::Cursor::new(buf);
        let mut sr = StreamReader::new(cursor);
        let got: Result<Vec<_>, _> = sr.iter().collect();
        assert_eq!(got.unwrap(), entries);
    }

    #[test]
    fn stream_reader_clean_eof_vs_torn_record() {
        let entries: Vec<TraceEntry> = (0..3).map(sample).collect();
        let buf = write_binary(&entries);
        // Clean EOF.
        let mut sr = StreamReader::new(std::io::Cursor::new(buf.clone()));
        while sr.next_record().unwrap().is_some() {}
        // Torn record: cut mid-way.
        let mut sr = StreamReader::new(std::io::Cursor::new(buf[..buf.len() - 4].to_vec()));
        let mut saw_err = false;
        loop {
            match sr.next_record() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(BinError::Truncated) => {
                    saw_err = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(saw_err, "torn tail must be reported");
    }

    #[test]
    fn lossless_for_responses() {
        // Unlike the text format, the binary format must preserve full
        // response bodies.
        use dns_wire::{RData, Record};
        let mut e = sample(2);
        let mut resp = e.message.response_to();
        resp.answers.push(Record::new(
            "q2.example.com".parse().unwrap(),
            60,
            RData::A("1.2.3.4".parse().unwrap()),
        ));
        e.message = resp;
        let back = parse_binary(&write_binary(&[e.clone()])).unwrap();
        assert_eq!(back[0].message.answers.len(), 1);
        assert_eq!(back[0], e);
    }
}
