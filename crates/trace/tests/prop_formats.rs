//! Property tests: arbitrary trace entries survive every format round
//! trip the Figure 3 pipeline performs, and the decoders never panic on
//! arbitrary bytes.

use proptest::prelude::*;

use dns_wire::{Name, RecordType, Transport};
use ldp_trace::{
    parse_binary, parse_pcap, parse_text, write_binary, write_pcap, write_text, Mutation, Mutator,
    TraceEntry,
};
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec("[a-z0-9]{1,12}", 1..4).prop_map(|labels| {
        Name::from_labels(labels.iter().map(|l| l.as_bytes())).expect("valid")
    })
}

fn arb_v4_addr() -> impl Strategy<Value = SocketAddr> {
    (any::<u32>(), 1024u16..65535).prop_map(|(ip, port)| {
        SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::from(ip), port))
    })
}

prop_compose! {
    fn arb_entry()(
        time_us in 0u64..10_000_000_000,
        src in arb_v4_addr(),
        dst in arb_v4_addr(),
        id in any::<u16>(),
        name in arb_name(),
        qtype in 1u16..260,
        transport in 0u8..3,
        do_bit in any::<bool>(),
        rd in any::<bool>(),
    ) -> TraceEntry {
        let mut e = TraceEntry::query(time_us, src, dst, id, name, RecordType::from_u16(qtype));
        e.transport = match transport { 0 => Transport::Udp, 1 => Transport::Tcp, _ => Transport::Tls };
        e.message.set_dnssec_ok(do_bit);
        e.message.flags.recursion_desired = rd;
        e
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn binary_round_trip(entries in proptest::collection::vec(arb_entry(), 0..20)) {
        let bin = write_binary(&entries);
        prop_assert_eq!(parse_binary(&bin).unwrap(), entries);
    }

    #[test]
    fn text_round_trip_preserves_query_fields(entries in proptest::collection::vec(arb_entry(), 1..20)) {
        let text = write_text(&entries);
        let back = parse_text(&text).unwrap();
        prop_assert_eq!(back.len(), entries.len());
        for (a, b) in entries.iter().zip(&back) {
            prop_assert_eq!(a.time_us, b.time_us);
            prop_assert_eq!(a.src, b.src);
            prop_assert_eq!(a.dst, b.dst);
            prop_assert_eq!(a.transport, b.transport);
            prop_assert_eq!(a.message.id, b.message.id);
            prop_assert_eq!(a.message.question(), b.message.question());
            prop_assert_eq!(a.message.dnssec_ok(), b.message.dnssec_ok());
            prop_assert_eq!(a.message.flags.recursion_desired, b.message.flags.recursion_desired);
        }
    }

    #[test]
    fn pcap_round_trip_v4(entries in proptest::collection::vec(arb_entry(), 0..20)) {
        let (pcap, skipped) = write_pcap(&entries);
        prop_assert_eq!(skipped, 0, "all-v4 entries all written");
        let (back, bad) = parse_pcap(&pcap).unwrap();
        prop_assert_eq!(bad, 0);
        // pcap is lossy about TLS (it is just TCP on the wire unless a
        // port is 853): normalize the expectation accordingly.
        let expected: Vec<TraceEntry> = entries
            .into_iter()
            .map(|mut e| {
                if e.transport == Transport::Tls && e.src.port() != 853 && e.dst.port() != 853 {
                    e.transport = Transport::Tcp;
                }
                e
            })
            .collect();
        prop_assert_eq!(back, expected);
    }

    #[test]
    fn binary_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = parse_binary(&bytes);
    }

    #[test]
    fn pcap_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = parse_pcap(&bytes);
    }

    #[test]
    fn text_parser_never_panics(s in "[ -~\n]{0,300}") {
        let _ = parse_text(&s);
    }

    #[test]
    fn mutator_preserves_count_and_order(
        entries in proptest::collection::vec(arb_entry(), 1..30),
        scale in 0.1f64..5.0,
    ) {
        let mut sorted = entries.clone();
        sorted.sort_by_key(|e| e.time_us);
        let mut mutated = sorted.clone();
        Mutator::new(vec![
            Mutation::SetTransport(Transport::Tcp),
            Mutation::ScaleTime(scale),
            Mutation::UniquePrefix { tag: "p".into() },
        ]).apply(&mut mutated);
        prop_assert_eq!(mutated.len(), sorted.len());
        // Time order preserved under positive scaling.
        prop_assert!(mutated.windows(2).all(|w| w[0].time_us <= w[1].time_us));
        // First timestamp anchored.
        prop_assert_eq!(mutated[0].time_us, sorted[0].time_us);
        // Unique names.
        let names: std::collections::HashSet<String> =
            mutated.iter().map(|e| e.qname().unwrap().to_string()).collect();
        prop_assert_eq!(names.len(), mutated.len());
    }

    #[test]
    fn message_embedding_is_lossless_for_responses(
        entry in arb_entry(),
        answers in 0usize..4,
    ) {
        // Responses with answer bodies only survive the binary format.
        let mut e = entry;
        let mut resp = e.message.response_to();
        for i in 0..answers {
            resp.answers.push(dns_wire::Record::new(
                e.message.question().unwrap().name.clone(),
                60 + i as u32,
                dns_wire::RData::A(Ipv4Addr::from(i as u32 + 1)),
            ));
        }
        e.message = resp;
        let bin = write_binary(std::slice::from_ref(&e));
        let back = parse_binary(&bin).unwrap();
        prop_assert_eq!(&back[0], &e);
        prop_assert_eq!(back[0].message.answers.len(), answers);
    }
}

/// Text round trip must also survive a full re-serialization cycle
/// (text → entries → text): fixed point after one pass.
#[test]
fn text_fixed_point() {
    let entries: Vec<TraceEntry> = (0..10)
        .map(|i| {
            TraceEntry::query(
                i * 1000,
                "10.0.0.1:53".parse().unwrap(),
                "10.0.0.2:53".parse().unwrap(),
                i as u16,
                format!("n{i}.example.com").parse().unwrap(),
                RecordType::A,
            )
        })
        .collect();
    let t1 = write_text(&entries);
    let t2 = write_text(&parse_text(&t1).unwrap());
    assert_eq!(t1, t2);
}
