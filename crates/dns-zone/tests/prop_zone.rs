//! Property tests for the zone layer: master-file round trips for
//! arbitrary zones, lookup total-ness (never panics, always classifies),
//! and signing invariants.

use proptest::prelude::*;

use dns_wire::{Name, Question, RData, Record, RecordType, Soa};
use dns_zone::dnssec::{sign_zone, SignConfig};
use dns_zone::{lookup, parse_zone, write_zone, AnswerKind, Zone};

fn arb_label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,8}[a-z0-9]".prop_map(|s| s)
}

fn arb_rel_name() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(arb_label(), 1..3)
}

#[derive(Debug, Clone)]
enum GenRecord {
    A(Vec<String>, [u8; 4]),
    Txt(Vec<String>, String),
    Mx(Vec<String>, u16),
    Cname(Vec<String>, Vec<String>),
    Delegation(Vec<String>),
}

fn arb_record() -> impl Strategy<Value = GenRecord> {
    prop_oneof![
        (arb_rel_name(), any::<[u8; 4]>()).prop_map(|(n, ip)| GenRecord::A(n, ip)),
        (arb_rel_name(), "[a-z ]{0,20}").prop_map(|(n, t)| GenRecord::Txt(n, t)),
        (arb_rel_name(), any::<u16>()).prop_map(|(n, p)| GenRecord::Mx(n, p)),
        (arb_rel_name(), arb_rel_name()).prop_map(|(n, t)| GenRecord::Cname(n, t)),
        arb_rel_name().prop_map(GenRecord::Delegation),
    ]
}

/// Build a valid zone from generated records (skipping CNAME conflicts,
/// as a zone file loader would reject them).
fn build_zone(records: Vec<GenRecord>) -> Zone {
    let origin: Name = "prop.example".parse().unwrap();
    let mut zone = Zone::new(origin.clone());
    zone.insert(Record::new(
        origin.clone(),
        3600,
        RData::Soa(Soa {
            mname: "ns1.prop.example".parse().unwrap(),
            rname: "host.prop.example".parse().unwrap(),
            serial: 1,
            refresh: 7200,
            retry: 3600,
            expire: 86400,
            minimum: 300,
        }),
    ))
    .unwrap();
    zone.insert(Record::new(origin.clone(), 3600, RData::Ns("ns1.prop.example".parse().unwrap())))
        .unwrap();
    zone.insert(Record::new(
        "ns1.prop.example".parse().unwrap(),
        3600,
        RData::A("10.0.0.1".parse().unwrap()),
    ))
    .unwrap();

    let full = |labels: &[String]| -> Name {
        format!("{}.prop.example", labels.join(".")).parse().unwrap()
    };
    for r in records {
        let _ = match r {
            GenRecord::A(n, ip) => zone.insert(Record::new(full(&n), 300, RData::A(ip.into()))),
            GenRecord::Txt(n, t) => zone.insert(Record::new(
                full(&n),
                300,
                RData::Txt(vec![t.into_bytes()]),
            )),
            GenRecord::Mx(n, p) => zone.insert(Record::new(
                full(&n),
                300,
                RData::Mx { preference: p, exchange: "mx.prop.example".parse().unwrap() },
            )),
            GenRecord::Cname(n, t) => {
                zone.insert(Record::new(full(&n), 300, RData::Cname(full(&t))))
            }
            GenRecord::Delegation(n) => zone.insert(Record::new(
                full(&n),
                300,
                RData::Ns("ns.child.invalid.".parse().unwrap()),
            )),
        };
    }
    zone
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn master_file_round_trip(records in proptest::collection::vec(arb_record(), 0..20)) {
        let zone = build_zone(records);
        let text = write_zone(&zone);
        let parsed = parse_zone(&text, zone.origin()).expect("writer output parses");
        prop_assert_eq!(parsed, zone);
    }

    #[test]
    fn lookup_total_and_classified(
        records in proptest::collection::vec(arb_record(), 0..20),
        qname in arb_rel_name(),
        qtype in 1u16..60,
    ) {
        let zone = build_zone(records);
        let name: Name = format!("{}.prop.example", qname.join(".")).parse().unwrap();
        let q = Question::new(name, RecordType::from_u16(qtype));
        let ans = lookup(&zone, &q);
        // Total: every query is classified, and the invariants of each
        // class hold.
        match ans.kind {
            AnswerKind::Answer | AnswerKind::CnameChain => {
                prop_assert!(ans.authoritative);
            }
            AnswerKind::Referral { .. } => {
                prop_assert!(!ans.authoritative);
                prop_assert!(ans.answers.is_empty());
                prop_assert!(ans.authorities.iter().any(|r| r.rtype() == RecordType::NS));
            }
            AnswerKind::NoData | AnswerKind::NxDomain => {
                prop_assert!(ans.authorities.iter().any(|r| r.rtype() == RecordType::SOA),
                    "negative answers carry SOA");
            }
        }
    }

    #[test]
    fn out_of_zone_is_refused(qname in arb_rel_name()) {
        let zone = build_zone(vec![]);
        let name: Name = format!("{}.other.example", qname.join(".")).parse().unwrap();
        let ans = lookup(&zone, &Question::new(name, RecordType::A));
        prop_assert_eq!(ans.rcode, dns_wire::Rcode::Refused);
    }

    #[test]
    fn signing_preserves_unsigned_data(records in proptest::collection::vec(arb_record(), 0..12)) {
        let zone = build_zone(records);
        let signed = sign_zone(&zone, SignConfig::with_zsk_bits(1024));
        // Every original record is still present in the signed zone.
        for rec in zone.records() {
            let node = signed.zone.node(&rec.name);
            prop_assert!(node.is_some(), "name {} survives signing", rec.name);
            let node = node.unwrap();
            let set = node.get(rec.rtype());
            prop_assert!(set.is_some(), "rrset {}/{} survives", rec.name, rec.rtype());
            prop_assert!(set.unwrap().rdatas.contains(&rec.rdata));
        }
        // And the signed zone is strictly bigger.
        prop_assert!(signed.zone.record_count() > zone.record_count());
    }

    #[test]
    fn signed_zone_round_trips_master_file(records in proptest::collection::vec(arb_record(), 0..8)) {
        let zone = build_zone(records);
        let signed = sign_zone(&zone, SignConfig::with_zsk_bits(1024));
        let text = write_zone(&signed.zone);
        let parsed = parse_zone(&text, signed.zone.origin()).expect("signed zone parses");
        prop_assert_eq!(parsed, signed.zone);
    }
}
