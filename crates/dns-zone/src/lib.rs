//! # dns-zone
//!
//! Zone model for the LDplayer reproduction: master-file parsing and
//! generation, the canonical zone tree with delegation awareness,
//! authoritative lookup semantics (referrals, wildcards, CNAME chains,
//! NXDOMAIN/NODATA), split-horizon views keyed on query source address
//! (the paper's §2.4 hierarchy-emulation mechanism), and a synthetic
//! DNSSEC signer whose record sizes track the configured key sizes
//! (paper §5.1).

#![warn(missing_docs)]

pub mod catalog;
pub mod dnssec;
pub mod lookup;
pub mod master;
pub mod rrset;
pub mod view;
pub mod zone;

pub use catalog::Catalog;
pub use dnssec::{sign_zone, SignConfig, SignedZone};
pub use lookup::{lookup, Answer, AnswerKind};
pub use master::{parse_records, parse_zone, write_zone, MasterError};
pub use rrset::RRset;
pub use view::{ClientMatch, View, ViewSet};
pub use zone::{Node, Zone, ZoneError};
