//! Authoritative query answering over a [`Zone`] (RFC 1034 §4.3.2).
//!
//! This is where hierarchy emulation gets its correctness: a query at or
//! below a delegation point yields a *referral* (NS in authority + glue),
//! never a final answer — the round trip the paper's meta-DNS-server must
//! preserve so a recursive resolver walks root → TLD → SLD exactly as it
//! would against independent servers (paper §2.4).

use dns_wire::{Message, Name, Question, RData, Rcode, Record, RecordType};

use crate::zone::Zone;

/// The semantic category of an authoritative answer, before rendering
/// into a message. Exposed so tests and the resolver can assert on
/// answer *kinds*, not just message bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnswerKind {
    /// Authoritative data for the query.
    Answer,
    /// Delegation to a child zone.
    Referral {
        /// The zone-cut name.
        cut: Name,
    },
    /// Name exists, no data of the queried type.
    NoData,
    /// Name does not exist.
    NxDomain,
    /// Answer involved CNAME chasing (terminating in-zone or leaving it).
    CnameChain,
}

/// A rendered authoritative answer.
#[derive(Debug, Clone)]
pub struct Answer {
    /// What kind of response this is.
    pub kind: AnswerKind,
    /// Response code.
    pub rcode: Rcode,
    /// Whether AA should be set.
    pub authoritative: bool,
    /// Answer-section records.
    pub answers: Vec<Record>,
    /// Authority-section records.
    pub authorities: Vec<Record>,
    /// Additional-section records (glue).
    pub additionals: Vec<Record>,
}

impl Answer {
    /// Render into a response message for `query`, including DNSSEC
    /// records only when the query set the DO bit.
    pub fn into_message(self, query: &Message) -> Message {
        let mut resp = query.response_to();
        resp.rcode = self.rcode;
        resp.flags.authoritative = self.authoritative;
        let strip = !query.dnssec_ok();
        let keep = |r: &Record| !strip || !r.rtype().is_dnssec();
        resp.answers = self.answers.into_iter().filter(|r| keep(r)).collect();
        resp.authorities = self.authorities.into_iter().filter(|r| keep(r)).collect();
        resp.additionals = self.additionals.into_iter().filter(|r| keep(r)).collect();
        resp
    }
}

/// Maximum in-zone CNAME chain hops (loop protection).
const MAX_CNAME_HOPS: usize = 8;

/// Answer `question` from `zone` authoritatively.
///
/// `zone` must be the closest enclosing zone for the qname (the
/// [`crate::catalog::Catalog`] picks it); qnames outside the zone yield
/// REFUSED.
pub fn lookup(zone: &Zone, question: &Question) -> Answer {
    if !question.name.is_subdomain_of(zone.origin()) {
        return Answer {
            kind: AnswerKind::NxDomain,
            rcode: Rcode::Refused,
            authoritative: false,
            answers: vec![],
            authorities: vec![],
            additionals: vec![],
        };
    }

    // Referral check first: a cut between apex and qname shadows
    // everything below it.
    if let Some((cut, ns)) = zone.find_zone_cut(&question.name) {
        let cut = cut.clone();
        let mut authorities = ns.to_records();
        // DS at the cut proves (un)signed delegation when present.
        if let Some(node) = zone.node(&cut) {
            if let Some(ds) = node.get(RecordType::DS) {
                authorities.extend(ds.to_records());
            }
            if let Some(sig) = node.get(RecordType::RRSIG) {
                authorities.extend(sig.to_records());
            }
        }
        let additionals = glue_for(zone, &authorities);
        return Answer {
            kind: AnswerKind::Referral { cut },
            rcode: Rcode::NoError,
            authoritative: false,
            answers: vec![],
            authorities,
            additionals,
        };
    }

    let mut answers: Vec<Record> = Vec::new();
    let mut current = question.name.clone();
    let mut chased = false;

    for _ in 0..MAX_CNAME_HOPS {
        match answer_at_name(zone, &current, question.qtype, &question.name, &mut answers) {
            NodeResult::Found => {
                let additionals = glue_for(zone, &answers);
                return Answer {
                    kind: if chased { AnswerKind::CnameChain } else { AnswerKind::Answer },
                    rcode: Rcode::NoError,
                    authoritative: true,
                    answers,
                    authorities: vec![],
                    additionals,
                };
            }
            NodeResult::Cname(target) => {
                chased = true;
                if !target.is_subdomain_of(zone.origin())
                    || zone.find_zone_cut(&target).is_some()
                {
                    // Chain leaves our authority: return what we have.
                    return Answer {
                        kind: AnswerKind::CnameChain,
                        rcode: Rcode::NoError,
                        authoritative: true,
                        answers,
                        authorities: vec![],
                        additionals: vec![],
                    };
                }
                current = target;
            }
            NodeResult::NoData => {
                return negative(zone, AnswerKind::NoData, Rcode::NoError, answers, &current);
            }
            NodeResult::NxDomain => {
                // RFC 2308: NXDOMAIN for the final name in a CNAME chain
                // still reports NXDOMAIN alongside the partial answers.
                return negative(zone, AnswerKind::NxDomain, Rcode::NxDomain, answers, &current);
            }
        }
    }
    // CNAME loop: serve what was accumulated.
    Answer {
        kind: AnswerKind::CnameChain,
        rcode: Rcode::NoError,
        authoritative: true,
        answers,
        authorities: vec![],
        additionals: vec![],
    }
}

enum NodeResult {
    /// Records appended; done.
    Found,
    /// Followed a CNAME to this target.
    Cname(Name),
    NoData,
    NxDomain,
}

/// Try to answer `qtype` at `name`, appending to `answers`. `owner`
/// overrides the record owner for wildcard synthesis on the first hop.
fn answer_at_name(
    zone: &Zone,
    name: &Name,
    qtype: RecordType,
    original_qname: &Name,
    answers: &mut Vec<Record>,
) -> NodeResult {
    if let Some(node) = zone.node(name) {
        return answer_at_node(zone, node, name, qtype, name, answers);
    }
    // Empty non-terminal: the name "exists" but holds no data.
    if zone.has_names_below(name) {
        return NodeResult::NoData;
    }
    // Wildcard: *.closest-encloser, with the original qname as owner.
    if let Some(encloser) = zone.closest_encloser(name) {
        if let Ok(wild) = encloser.child(b"*") {
            if let Some(node) = zone.node(&wild) {
                // Only the first hop synthesizes at the original qname;
                // chained hops synthesize at the chased name.
                let owner = if name == original_qname { original_qname } else { name };
                return answer_at_node(zone, node, &wild, qtype, owner, answers);
            }
        }
    }
    NodeResult::NxDomain
}

fn answer_at_node(
    _zone: &Zone,
    node: &crate::zone::Node,
    _node_name: &Name,
    qtype: RecordType,
    owner: &Name,
    answers: &mut Vec<Record>,
) -> NodeResult {
    if qtype == RecordType::ANY {
        let mut any = false;
        for set in node.iter() {
            if set.rtype == RecordType::RRSIG {
                continue; // covered below per-set
            }
            answers.extend(set.to_records_as(owner));
            any = true;
        }
        if let Some(sigs) = node.get(RecordType::RRSIG) {
            answers.extend(sigs.to_records_as(owner));
        }
        return if any { NodeResult::Found } else { NodeResult::NoData };
    }
    if let Some(set) = node.get(qtype) {
        answers.extend(set.to_records_as(owner));
        append_covering_rrsig(node, qtype, owner, answers);
        return NodeResult::Found;
    }
    if qtype != RecordType::CNAME {
        if let Some(cname) = node.get(RecordType::CNAME) {
            answers.extend(cname.to_records_as(owner));
            append_covering_rrsig(node, RecordType::CNAME, owner, answers);
            if let Some(RData::Cname(target)) = cname.rdatas.first() {
                return NodeResult::Cname(target.clone());
            }
        }
    }
    NodeResult::NoData
}

/// Attach the RRSIG covering `covered` at this node, if present.
fn append_covering_rrsig(
    node: &crate::zone::Node,
    covered: RecordType,
    owner: &Name,
    answers: &mut Vec<Record>,
) {
    if let Some(sigs) = node.get(RecordType::RRSIG) {
        for rec in sigs.to_records_as(owner) {
            if let RData::Rrsig(ref s) = rec.rdata {
                if s.type_covered == covered {
                    answers.push(rec);
                }
            }
        }
    }
}

/// Build a negative (NoData/NXDOMAIN) answer with SOA (+NSEC when
/// present) in the authority section.
fn negative(
    zone: &Zone,
    kind: AnswerKind,
    rcode: Rcode,
    answers: Vec<Record>,
    qname: &Name,
) -> Answer {
    let mut authorities = Vec::new();
    if let Some(soa) = zone.soa_rrset() {
        // Negative TTL is min(SOA TTL, SOA.minimum) per RFC 2308.
        let neg_ttl = zone
            .soa()
            .map(|s| s.minimum.min(soa.ttl))
            .unwrap_or(soa.ttl);
        for mut rec in soa.to_records() {
            rec.ttl = neg_ttl;
            authorities.push(rec);
        }
        if let Some(apex) = zone.node(zone.origin()) {
            // SOA's covering RRSIG.
            if let Some(sigs) = apex.get(RecordType::RRSIG) {
                for rec in sigs.to_records() {
                    if let RData::Rrsig(ref s) = rec.rdata {
                        if s.type_covered == RecordType::SOA {
                            authorities.push(rec);
                        }
                    }
                }
            }
        }
    }
    // NSEC denial of existence: the covering NSEC is the one owned by
    // the last zone name canonically ≤ qname that carries an NSEC RRset.
    let covering = zone
        .names()
        .filter(|name| name.canonical_cmp(qname) != std::cmp::Ordering::Greater)
        .filter(|name| {
            zone.node(name)
                .map(|node| node.get(RecordType::NSEC).is_some())
                .unwrap_or(false)
        })
        .last()
        .cloned();
    if let Some(holder) = covering {
        if let Some(node) = zone.node(&holder) {
            if let Some(nsec) = node.get(RecordType::NSEC) {
                authorities.extend(nsec.to_records());
                if let Some(sigs) = node.get(RecordType::RRSIG) {
                    for rec in sigs.to_records() {
                        if let RData::Rrsig(ref s) = rec.rdata {
                            if s.type_covered == RecordType::NSEC {
                                authorities.push(rec);
                            }
                        }
                    }
                }
            }
        }
    }
    Answer {
        kind,
        rcode,
        authoritative: true,
        answers,
        authorities,
        additionals: vec![],
    }
}

/// Glue: A/AAAA records for every NS/MX/SRV target that lives in-zone.
fn glue_for(zone: &Zone, records: &[Record]) -> Vec<Record> {
    let mut glue = Vec::new();
    for rec in records {
        let target = match &rec.rdata {
            RData::Ns(t) => t,
            RData::Mx { exchange, .. } => exchange,
            RData::Srv { target, .. } => target,
            _ => continue,
        };
        if let Some(node) = zone.node(target) {
            for ty in [RecordType::A, RecordType::AAAA] {
                if let Some(set) = node.get(ty) {
                    for g in set.to_records() {
                        if !glue.contains(&g) {
                            glue.push(g);
                        }
                    }
                }
            }
        }
    }
    glue
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::Soa;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn rec(name: &str, rd: RData) -> Record {
        Record::new(n(name), 3600, rd)
    }

    fn q(name: &str, t: RecordType) -> Question {
        Question::new(n(name), t)
    }

    fn test_zone() -> Zone {
        let mut z = Zone::new(n("example.com"));
        z.insert(rec(
            "example.com",
            RData::Soa(Soa {
                mname: n("ns1.example.com"),
                rname: n("admin.example.com"),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        ))
        .unwrap();
        z.insert(rec("example.com", RData::Ns(n("ns1.example.com")))).unwrap();
        z.insert(rec("ns1.example.com", RData::A("10.0.0.53".parse().unwrap()))).unwrap();
        z.insert(rec("www.example.com", RData::A("10.0.0.1".parse().unwrap()))).unwrap();
        z.insert(rec("www.example.com", RData::Aaaa("2001:db8::1".parse().unwrap()))).unwrap();
        z.insert(rec("alias.example.com", RData::Cname(n("www.example.com")))).unwrap();
        z.insert(rec("extalias.example.com", RData::Cname(n("cdn.example.net")))).unwrap();
        z.insert(rec("chain1.example.com", RData::Cname(n("chain2.example.com")))).unwrap();
        z.insert(rec("chain2.example.com", RData::Cname(n("www.example.com")))).unwrap();
        z.insert(rec("loop1.example.com", RData::Cname(n("loop2.example.com")))).unwrap();
        z.insert(rec("loop2.example.com", RData::Cname(n("loop1.example.com")))).unwrap();
        z.insert(rec("*.wild.example.com", RData::A("10.9.9.9".parse().unwrap()))).unwrap();
        z.insert(rec("sub.example.com", RData::Ns(n("ns.sub.example.com")))).unwrap();
        z.insert(rec("ns.sub.example.com", RData::A("10.0.1.53".parse().unwrap()))).unwrap();
        z.insert(rec("deep.under.example.com", RData::A("10.0.0.7".parse().unwrap()))).unwrap();
        z
    }

    #[test]
    fn positive_answer() {
        let z = test_zone();
        let a = lookup(&z, &q("www.example.com", RecordType::A));
        assert_eq!(a.kind, AnswerKind::Answer);
        assert_eq!(a.rcode, Rcode::NoError);
        assert!(a.authoritative);
        assert_eq!(a.answers.len(), 1);
        assert_eq!(a.answers[0].rdata, RData::A("10.0.0.1".parse().unwrap()));
    }

    #[test]
    fn nodata_for_missing_type() {
        let z = test_zone();
        let a = lookup(&z, &q("www.example.com", RecordType::MX));
        assert_eq!(a.kind, AnswerKind::NoData);
        assert_eq!(a.rcode, Rcode::NoError);
        assert!(a.answers.is_empty());
        // SOA in authority with negative TTL = SOA.minimum (300 < 3600).
        assert_eq!(a.authorities[0].rtype(), RecordType::SOA);
        assert_eq!(a.authorities[0].ttl, 300);
    }

    #[test]
    fn nxdomain_for_missing_name() {
        let z = test_zone();
        let a = lookup(&z, &q("missing.example.com", RecordType::A));
        assert_eq!(a.kind, AnswerKind::NxDomain);
        assert_eq!(a.rcode, Rcode::NxDomain);
        assert_eq!(a.authorities[0].rtype(), RecordType::SOA);
    }

    #[test]
    fn referral_below_cut() {
        let z = test_zone();
        let a = lookup(&z, &q("host.sub.example.com", RecordType::A));
        assert_eq!(a.kind, AnswerKind::Referral { cut: n("sub.example.com") });
        assert_eq!(a.rcode, Rcode::NoError);
        assert!(!a.authoritative, "referrals are not authoritative");
        assert!(a.answers.is_empty());
        assert_eq!(a.authorities[0].rtype(), RecordType::NS);
        // Glue for in-zone NS target.
        assert_eq!(a.additionals.len(), 1);
        assert_eq!(a.additionals[0].name, n("ns.sub.example.com"));
    }

    #[test]
    fn referral_at_cut_itself() {
        let z = test_zone();
        let a = lookup(&z, &q("sub.example.com", RecordType::A));
        assert!(matches!(a.kind, AnswerKind::Referral { .. }));
    }

    #[test]
    fn cname_followed_in_zone() {
        let z = test_zone();
        let a = lookup(&z, &q("alias.example.com", RecordType::A));
        assert_eq!(a.kind, AnswerKind::CnameChain);
        assert_eq!(a.answers.len(), 2);
        assert_eq!(a.answers[0].rtype(), RecordType::CNAME);
        assert_eq!(a.answers[1].rtype(), RecordType::A);
        assert_eq!(a.answers[1].name, n("www.example.com"));
    }

    #[test]
    fn cname_chain_two_hops() {
        let z = test_zone();
        let a = lookup(&z, &q("chain1.example.com", RecordType::A));
        assert_eq!(a.answers.len(), 3);
        assert_eq!(a.answers[2].rtype(), RecordType::A);
    }

    #[test]
    fn cname_out_of_zone_stops() {
        let z = test_zone();
        let a = lookup(&z, &q("extalias.example.com", RecordType::A));
        assert_eq!(a.kind, AnswerKind::CnameChain);
        assert_eq!(a.answers.len(), 1);
        assert_eq!(a.answers[0].rtype(), RecordType::CNAME);
        assert_eq!(a.rcode, Rcode::NoError);
    }

    #[test]
    fn cname_loop_terminates() {
        let z = test_zone();
        let a = lookup(&z, &q("loop1.example.com", RecordType::A));
        assert_eq!(a.kind, AnswerKind::CnameChain);
        // Loop protection: bounded answer count.
        assert!(a.answers.len() <= 2 * MAX_CNAME_HOPS);
    }

    #[test]
    fn cname_query_returns_cname_itself() {
        let z = test_zone();
        let a = lookup(&z, &q("alias.example.com", RecordType::CNAME));
        assert_eq!(a.kind, AnswerKind::Answer);
        assert_eq!(a.answers.len(), 1);
        assert_eq!(a.answers[0].rtype(), RecordType::CNAME);
    }

    #[test]
    fn wildcard_synthesis() {
        let z = test_zone();
        let a = lookup(&z, &q("anything.wild.example.com", RecordType::A));
        assert_eq!(a.kind, AnswerKind::Answer);
        assert_eq!(a.answers.len(), 1);
        // Owner is the query name, not the wildcard.
        assert_eq!(a.answers[0].name, n("anything.wild.example.com"));
        assert_eq!(a.answers[0].rdata, RData::A("10.9.9.9".parse().unwrap()));
    }

    #[test]
    fn wildcard_does_not_match_other_branches() {
        let z = test_zone();
        // missing.example.com has closest encloser example.com which has
        // no *.example.com wildcard.
        let a = lookup(&z, &q("missing.example.com", RecordType::A));
        assert_eq!(a.kind, AnswerKind::NxDomain);
    }

    #[test]
    fn wildcard_nodata_for_missing_type() {
        let z = test_zone();
        let a = lookup(&z, &q("x.wild.example.com", RecordType::MX));
        assert_eq!(a.kind, AnswerKind::NoData);
    }

    #[test]
    fn empty_non_terminal_is_nodata() {
        let z = test_zone();
        // under.example.com exists only as part of deep.under.example.com.
        let a = lookup(&z, &q("under.example.com", RecordType::A));
        assert_eq!(a.kind, AnswerKind::NoData, "ENT must be NODATA, not NXDOMAIN");
        assert_eq!(a.rcode, Rcode::NoError);
    }

    #[test]
    fn any_query_returns_all_types() {
        let z = test_zone();
        let a = lookup(&z, &q("www.example.com", RecordType::ANY));
        assert_eq!(a.kind, AnswerKind::Answer);
        assert_eq!(a.answers.len(), 2); // A + AAAA
    }

    #[test]
    fn out_of_zone_refused() {
        let z = test_zone();
        let a = lookup(&z, &q("www.example.org", RecordType::A));
        assert_eq!(a.rcode, Rcode::Refused);
        assert!(!a.authoritative);
    }

    #[test]
    fn apex_soa_query() {
        let z = test_zone();
        let a = lookup(&z, &q("example.com", RecordType::SOA));
        assert_eq!(a.kind, AnswerKind::Answer);
        assert_eq!(a.answers[0].rtype(), RecordType::SOA);
    }

    #[test]
    fn into_message_sets_flags() {
        let z = test_zone();
        let query = Message::query(77, n("www.example.com"), RecordType::A);
        let a = lookup(&z, &q("www.example.com", RecordType::A));
        let msg = a.into_message(&query);
        assert_eq!(msg.id, 77);
        assert!(msg.flags.response);
        assert!(msg.flags.authoritative);
        assert_eq!(msg.answers.len(), 1);
    }

    #[test]
    fn into_message_strips_dnssec_without_do() {
        let mut z = test_zone();
        z.insert(rec(
            "www.example.com",
            RData::Rrsig(dns_wire::Rrsig {
                type_covered: RecordType::A,
                algorithm: 8,
                labels: 3,
                original_ttl: 3600,
                expiration: 0,
                inception: 0,
                key_tag: 1,
                signer_name: n("example.com"),
                signature: vec![0; 128],
            }),
        ))
        .unwrap();
        let a = lookup(&z, &q("www.example.com", RecordType::A));
        assert_eq!(a.answers.len(), 2, "A + RRSIG gathered");

        let mut query = Message::query(1, n("www.example.com"), RecordType::A);
        let plain = lookup(&z, &q("www.example.com", RecordType::A)).into_message(&query);
        assert_eq!(plain.answers.len(), 1, "no DO → RRSIG stripped");

        query.set_dnssec_ok(true);
        let signed = lookup(&z, &q("www.example.com", RecordType::A)).into_message(&query);
        assert_eq!(signed.answers.len(), 2, "DO → RRSIG included");
    }
}
