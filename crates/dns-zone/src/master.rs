//! Zone master-file (RFC 1035 §5.1) parsing and generation.
//!
//! Supports `$ORIGIN`, `$TTL`, parenthesized multi-line records, comments,
//! inherited owner names, relative names and RFC 3597 generic RDATA —
//! enough to round-trip the zones our constructor emits and to load real
//! root-zone-shaped files.

use dns_wire::text::tokenize;
use dns_wire::{Name, RData, Record, RecordClass, RecordType};

use crate::zone::{Zone, ZoneError};

/// Errors reading a master file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MasterError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for MasterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MasterError {}

/// Parse master-file text into records.
///
/// `default_origin` seeds `$ORIGIN` (usually the zone name the file is
/// being loaded for).
pub fn parse_records(text: &str, default_origin: &Name) -> Result<Vec<Record>, MasterError> {
    let mut origin = default_origin.clone();
    let mut default_ttl: u32 = 3600;
    let mut last_owner: Option<Name> = None;
    let mut records = Vec::new();

    // Handle parentheses by logically joining lines first.
    let logical = join_parenthesized(text);

    for (lineno, line) in logical {
        let err = |m: String| MasterError { line: lineno, message: m };
        let tokens_owned = tokenize(&line);
        if tokens_owned.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = tokens_owned.iter().map(|s| s.as_str()).collect();

        // Directives.
        match tokens[0] {
            "$ORIGIN" => {
                let name = tokens
                    .get(1)
                    .ok_or_else(|| err("$ORIGIN needs a name".into()))?;
                origin = name
                    .parse()
                    .map_err(|e| err(format!("bad $ORIGIN: {e}")))?;
                continue;
            }
            "$TTL" => {
                let t = tokens.get(1).ok_or_else(|| err("$TTL needs a value".into()))?;
                default_ttl = parse_ttl(t).ok_or_else(|| err(format!("bad $TTL {t:?}")))?;
                continue;
            }
            "$INCLUDE" => {
                return Err(err("$INCLUDE is not supported".into()));
            }
            _ => {}
        }

        // Owner: if the raw line starts with whitespace, inherit.
        let starts_blank = line.starts_with(' ') || line.starts_with('\t');
        let mut idx = 0;
        let owner: Name = if starts_blank {
            last_owner
                .clone()
                .ok_or_else(|| err("no previous owner to inherit".into()))?
        } else {
            let tok = tokens[0];
            idx = 1;
            resolve_name(tok, &origin).map_err(&err)?
        };
        last_owner = Some(owner.clone());

        // Optional TTL and class, in either order.
        let mut ttl = default_ttl;
        let mut class = RecordClass::IN;
        let mut seen_ttl = false;
        let mut seen_class = false;
        while idx < tokens.len() {
            let tok = tokens[idx];
            if !seen_ttl && tok.chars().next().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                if let Some(t) = parse_ttl(tok) {
                    // Distinguish TTL from a type mnemonic like TYPE123:
                    // bare integers/durations are TTLs.
                    ttl = t;
                    seen_ttl = true;
                    idx += 1;
                    continue;
                }
            }
            if !seen_class {
                if let Some(c) = RecordClass::from_str_mnemonic(tok) {
                    // Avoid eating a type mnemonic ("ANY" is both): class
                    // tokens are IN/CH/HS/NONE/CLASSn.
                    if !matches!(tok.to_ascii_uppercase().as_str(), "ANY" | "*") {
                        class = c;
                        seen_class = true;
                        idx += 1;
                        continue;
                    }
                }
            }
            break;
        }

        let type_tok = tokens
            .get(idx)
            .ok_or_else(|| err("missing record type".into()))?;
        let rtype = RecordType::from_str_mnemonic(type_tok)
            .ok_or_else(|| err(format!("unknown record type {type_tok:?}")))?;
        idx += 1;

        let rdata = RData::parse_presentation(rtype, &tokens[idx..], &origin)
            .map_err(|e| err(format!("bad {rtype} rdata: {e}")))?;
        records.push(Record {
            name: owner,
            class,
            ttl,
            rdata,
        });
    }
    Ok(records)
}

/// Parse a master file directly into a [`Zone`].
pub fn parse_zone(text: &str, origin: &Name) -> Result<Zone, MasterError> {
    let records = parse_records(text, origin)?;
    let mut zone = Zone::new(origin.clone());
    for rec in records {
        zone.insert(rec).map_err(|e: ZoneError| MasterError {
            line: 0,
            message: e.to_string(),
        })?;
    }
    Ok(zone)
}

/// Render a zone back to master-file text (SOA first, then canonical
/// order), parseable by [`parse_zone`].
pub fn write_zone(zone: &Zone) -> String {
    let mut out = String::new();
    out.push_str(&format!("$ORIGIN {}\n", zone.origin()));
    // SOA first (conventional and required by some loaders).
    if let Some(soa) = zone.soa_rrset() {
        for rec in soa.to_records() {
            out.push_str(&rec.to_string());
            out.push('\n');
        }
    }
    for (name, node) in zone.iter() {
        for set in node.iter() {
            if name == zone.origin() && set.rtype == RecordType::SOA {
                continue;
            }
            for rec in set.to_records() {
                out.push_str(&rec.to_string());
                out.push('\n');
            }
        }
    }
    out
}

/// Resolve a possibly-relative owner-name token against the origin.
fn resolve_name(tok: &str, origin: &Name) -> Result<Name, String> {
    if tok == "@" {
        return Ok(origin.clone());
    }
    let name: Name = tok.parse().map_err(|e| format!("bad name {tok:?}: {e}"))?;
    if tok.ends_with('.') {
        Ok(name)
    } else {
        name.concat(origin)
            .map_err(|e| format!("bad name {tok:?}: {e}"))
    }
}

/// Parse a TTL: plain seconds or BIND duration units (1h30m, 2d, 1w).
pub fn parse_ttl(tok: &str) -> Option<u32> {
    if let Ok(v) = tok.parse::<u32>() {
        return Some(v);
    }
    let mut total: u64 = 0;
    let mut cur: u64 = 0;
    let mut any = false;
    for c in tok.chars() {
        match c {
            '0'..='9' => {
                cur = cur * 10 + (c as u64 - '0' as u64);
                any = true;
            }
            's' | 'S' => {
                total += cur;
                cur = 0;
            }
            'm' | 'M' => {
                total += cur * 60;
                cur = 0;
            }
            'h' | 'H' => {
                total += cur * 3600;
                cur = 0;
            }
            'd' | 'D' => {
                total += cur * 86400;
                cur = 0;
            }
            'w' | 'W' => {
                total += cur * 604800;
                cur = 0;
            }
            _ => return None,
        }
    }
    total += cur;
    if !any {
        return None;
    }
    u32::try_from(total).ok()
}

/// Join lines so that parenthesized groups become one logical line.
/// Returns `(first_physical_line_number, joined_text)` pairs.
fn join_parenthesized(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    let mut start_line = 0usize;
    for (i, raw) in text.lines().enumerate() {
        // Strip comments outside quotes before counting parens.
        let stripped = strip_comment(raw);
        if depth == 0 {
            start_line = i + 1;
            current.clear();
        } else {
            current.push(' ');
        }
        for c in stripped.chars() {
            match c {
                '(' => {
                    depth += 1;
                }
                ')' => {
                    depth = depth.saturating_sub(1);
                }
                c => current.push(c),
            }
        }
        if depth == 0 {
            out.push((start_line, current.clone()));
        }
    }
    if depth > 0 {
        out.push((start_line, current));
    }
    out
}

/// Remove a `;` comment, respecting quoted strings.
fn strip_comment(line: &str) -> String {
    let mut out = String::new();
    let mut in_quote = false;
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_quote = !in_quote;
                out.push(c);
            }
            '\\' => {
                out.push(c);
                if let Some(n) = chars.next() {
                    out.push(n);
                }
            }
            ';' if !in_quote => break,
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::RData;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    const SAMPLE: &str = r#"
$ORIGIN example.com.
$TTL 3600
@   IN  SOA ns1 admin 2018103100 7200 3600 1209600 300
    IN  NS  ns1
ns1     IN  A   10.0.0.53
www 600 IN  A   10.0.0.1
www     IN  AAAA 2001:db8::1
alias   IN  CNAME www
text    IN  TXT "hello world" "second"
mx      IN  MX  10 mail.example.net.
"#;

    #[test]
    fn parses_sample() {
        let recs = parse_records(SAMPLE, &Name::root()).unwrap();
        assert_eq!(recs.len(), 8);
        assert_eq!(recs[0].name, n("example.com"));
        assert_eq!(recs[0].rtype(), RecordType::SOA);
        // Inherited owner from blank-prefixed line.
        assert_eq!(recs[1].name, n("example.com"));
        assert_eq!(recs[1].rtype(), RecordType::NS);
        assert_eq!(recs[1].rdata, RData::Ns(n("ns1.example.com")));
        // Explicit TTL.
        assert_eq!(recs[3].ttl, 600);
        // Default TTL.
        assert_eq!(recs[2].ttl, 3600);
        // Absolute name untouched.
        assert_eq!(
            recs[7].rdata,
            RData::Mx { preference: 10, exchange: n("mail.example.net") }
        );
    }

    #[test]
    fn parse_zone_validates() {
        let z = parse_zone(SAMPLE, &n("example.com")).unwrap();
        assert!(z.validate().is_ok());
        assert_eq!(z.origin(), &n("example.com"));
        assert!(z.node(&n("www.example.com")).is_some());
    }

    #[test]
    fn round_trip_through_writer() {
        let z = parse_zone(SAMPLE, &n("example.com")).unwrap();
        let text = write_zone(&z);
        let z2 = parse_zone(&text, &n("example.com")).unwrap();
        assert_eq!(z, z2);
    }

    #[test]
    fn parenthesized_soa() {
        let text = r#"
$ORIGIN example.org.
@ IN SOA ns1.example.org. admin.example.org. (
        2018103100 ; serial
        7200       ; refresh
        3600       ; retry
        1209600    ; expire
        300 )      ; minimum
"#;
        let recs = parse_records(text, &Name::root()).unwrap();
        assert_eq!(recs.len(), 1);
        match &recs[0].rdata {
            RData::Soa(soa) => {
                assert_eq!(soa.serial, 2018103100);
                assert_eq!(soa.minimum, 300);
            }
            other => panic!("expected SOA, got {other:?}"),
        }
    }

    #[test]
    fn comments_ignored() {
        let text = "; full comment line\nwww.example.com. 60 IN A 1.2.3.4 ; trailing\n";
        let recs = parse_records(text, &Name::root()).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn ttl_units() {
        assert_eq!(parse_ttl("300"), Some(300));
        assert_eq!(parse_ttl("1h"), Some(3600));
        assert_eq!(parse_ttl("1h30m"), Some(5400));
        assert_eq!(parse_ttl("2d"), Some(172800));
        assert_eq!(parse_ttl("1w"), Some(604800));
        assert_eq!(parse_ttl("90s"), Some(90));
        assert_eq!(parse_ttl("xyz"), None);
        assert_eq!(parse_ttl(""), None);
    }

    #[test]
    fn class_and_ttl_any_order() {
        let a = parse_records("x.example. IN 60 A 1.1.1.1\n", &Name::root()).unwrap();
        let b = parse_records("x.example. 60 IN A 1.1.1.1\n", &Name::root()).unwrap();
        assert_eq!(a[0], b[0]);
        assert_eq!(a[0].ttl, 60);
    }

    #[test]
    fn missing_type_errors_with_line() {
        let err = parse_records("\n\nwww.example.com. 60 IN\n", &Name::root()).unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn unknown_type_errors() {
        let err = parse_records("x.example. 60 IN BOGUS 1.2.3.4\n", &Name::root()).unwrap_err();
        assert!(err.message.contains("unknown record type"));
    }

    #[test]
    fn generic_rdata_syntax() {
        let recs =
            parse_records("x.example. 60 IN TYPE731 \\# 3 abcdef\n", &Name::root()).unwrap();
        assert_eq!(
            recs[0].rdata,
            RData::Unknown { rtype: 731, data: vec![0xab, 0xcd, 0xef] }
        );
    }

    #[test]
    fn origin_changes_apply() {
        let text = "$ORIGIN a.example.\nwww IN A 1.1.1.1\n$ORIGIN b.example.\nwww IN A 2.2.2.2\n";
        let recs = parse_records(text, &Name::root()).unwrap();
        assert_eq!(recs[0].name, n("www.a.example"));
        assert_eq!(recs[1].name, n("www.b.example"));
    }

    #[test]
    fn at_sign_is_origin() {
        let recs = parse_records("$ORIGIN example.com.\n@ IN NS ns1\n", &Name::root()).unwrap();
        assert_eq!(recs[0].name, n("example.com"));
    }

    #[test]
    fn include_rejected() {
        assert!(parse_records("$INCLUDE other.zone\n", &Name::root()).is_err());
    }

    #[test]
    fn real_root_zone_fragment() {
        // Shape of the actual root zone file.
        let text = r#"
.   86400   IN  SOA a.root-servers.net. nstld.verisign-grs.com. 2018103100 1800 900 604800 86400
.   518400  IN  NS  a.root-servers.net.
.   518400  IN  NS  b.root-servers.net.
com.    172800  IN  NS  a.gtld-servers.net.
a.gtld-servers.net. 172800 IN A 192.5.6.30
a.root-servers.net. 518400 IN A 198.41.0.4
b.root-servers.net. 518400 IN A 199.9.14.201
"#;
        let z = parse_zone(text, &Name::root()).unwrap();
        assert!(z.validate().is_ok());
        assert_eq!(z.apex_ns().unwrap().len(), 2);
        let (cut, _) = z.find_zone_cut(&n("www.example.com")).unwrap();
        assert_eq!(cut, &n("com"));
    }
}
