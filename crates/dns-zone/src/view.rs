//! Split-horizon DNS views (paper §2.4): the meta-DNS-server hosts many
//! zones and selects which one answers each query **by the query's
//! source address** — which, after the recursive proxy rewrote it to the
//! original query destination (OQDA), identifies the level of the
//! hierarchy the query was aimed at.
//!
//! This mirrors BIND's `view { match-clients { ... }; }` mechanism that
//! the paper relies on.

use std::net::IpAddr;

use dns_wire::Name;

use crate::catalog::Catalog;

/// A client matcher: exact address, prefix, or match-all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientMatch {
    /// Matches one exact source address.
    Exact(IpAddr),
    /// Matches a v4 prefix of the given length.
    PrefixV4 {
        /// Network address.
        net: std::net::Ipv4Addr,
        /// Prefix length (0–32).
        len: u8,
    },
    /// Matches every client (the "default" view).
    Any,
}

impl ClientMatch {
    /// Does `addr` satisfy this matcher?
    pub fn matches(&self, addr: IpAddr) -> bool {
        match self {
            ClientMatch::Exact(a) => *a == addr,
            ClientMatch::PrefixV4 { net, len } => match addr {
                IpAddr::V4(v4) => {
                    let l = u32::from(*len).min(32);
                    if l == 0 {
                        return true;
                    }
                    let mask = u32::MAX << (32 - l);
                    (u32::from(v4) & mask) == (u32::from(*net) & mask)
                }
                IpAddr::V6(_) => false,
            },
            ClientMatch::Any => true,
        }
    }
}

/// One view: a name (diagnostics), its client matchers and its catalog.
#[derive(Debug, Clone)]
pub struct View {
    /// Human-readable view name ("root", "com", ...).
    pub name: String,
    /// Match conditions, any-of.
    pub match_clients: Vec<ClientMatch>,
    /// Zones this view serves.
    pub catalog: Catalog,
}

impl View {
    /// New view serving `catalog` for clients matching any matcher.
    pub fn new(name: impl Into<String>, match_clients: Vec<ClientMatch>, catalog: Catalog) -> Self {
        View {
            name: name.into(),
            match_clients,
            catalog,
        }
    }

    /// True if a client at `addr` is served by this view.
    pub fn matches(&self, addr: IpAddr) -> bool {
        self.match_clients.iter().any(|m| m.matches(addr))
    }
}

/// An ordered list of views: first match wins (BIND semantics).
#[derive(Debug, Clone, Default)]
pub struct ViewSet {
    views: Vec<View>,
}

impl ViewSet {
    /// Empty view set.
    pub fn new() -> Self {
        ViewSet::default()
    }

    /// Append a view (later = lower priority).
    pub fn push(&mut self, view: View) {
        self.views.push(view);
    }

    /// Select the view for a query from `addr`.
    pub fn select(&self, addr: IpAddr) -> Option<&View> {
        self.views.iter().find(|v| v.matches(addr))
    }

    /// Select the *index* of the view for a query from `addr` (same
    /// first-match-wins semantics as [`ViewSet::select`]). Per-view
    /// resources held outside the set — e.g. the server's response
    /// rate limiters — are keyed by this index.
    pub fn select_index(&self, addr: IpAddr) -> Option<usize> {
        self.views.iter().position(|v| v.matches(addr))
    }

    /// Number of views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True if no views are configured.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Iterate views in priority order.
    pub fn iter(&self) -> impl Iterator<Item = &View> {
        self.views.iter()
    }

    /// Convenience: build the paper's hierarchy-emulation view set. Each
    /// `(zone_origin, nameserver_addrs, zone_catalog)` becomes one view
    /// matched by that level's public nameserver addresses — queries
    /// arriving "from" `a.gtld-servers.net`'s address (after proxy
    /// rewriting) see only the `com` zone, etc.
    pub fn for_hierarchy<I>(levels: I) -> ViewSet
    where
        I: IntoIterator<Item = (Name, Vec<IpAddr>, Catalog)>,
    {
        let mut set = ViewSet::new();
        for (origin, addrs, catalog) in levels {
            set.push(View::new(
                origin.to_string(),
                addrs.into_iter().map(ClientMatch::Exact).collect(),
                catalog,
            ));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::Zone;
    use dns_wire::{RData, Record, Soa};

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn zone(origin: &str) -> Zone {
        let mut z = Zone::new(n(origin));
        z.insert(Record::new(
            n(origin),
            60,
            RData::Soa(Soa {
                mname: n("ns.example"),
                rname: n("admin.example"),
                serial: 1,
                refresh: 1,
                retry: 1,
                expire: 1,
                minimum: 1,
            }),
        ))
        .unwrap();
        z
    }

    fn cat(origin: &str) -> Catalog {
        let mut c = Catalog::new();
        c.insert(zone(origin));
        c
    }

    #[test]
    fn exact_match() {
        let m = ClientMatch::Exact(ip("198.41.0.4"));
        assert!(m.matches(ip("198.41.0.4")));
        assert!(!m.matches(ip("198.41.0.5")));
    }

    #[test]
    fn prefix_match() {
        let m = ClientMatch::PrefixV4 { net: "10.1.0.0".parse().unwrap(), len: 16 };
        assert!(m.matches(ip("10.1.2.3")));
        assert!(!m.matches(ip("10.2.0.1")));
        assert!(!m.matches(ip("2001:db8::1")));
        let all = ClientMatch::PrefixV4 { net: "0.0.0.0".parse().unwrap(), len: 0 };
        assert!(all.matches(ip("9.9.9.9")));
    }

    #[test]
    fn first_view_wins() {
        let mut set = ViewSet::new();
        set.push(View::new("root", vec![ClientMatch::Exact(ip("198.41.0.4"))], cat(".")));
        set.push(View::new("com", vec![ClientMatch::Exact(ip("192.5.6.30"))], cat("com")));
        set.push(View::new("default", vec![ClientMatch::Any], cat("example.com")));

        assert_eq!(set.select(ip("198.41.0.4")).unwrap().name, "root");
        assert_eq!(set.select(ip("192.5.6.30")).unwrap().name, "com");
        assert_eq!(set.select(ip("8.8.8.8")).unwrap().name, "default");
    }

    #[test]
    fn select_index_agrees_with_select() {
        let mut set = ViewSet::new();
        set.push(View::new("root", vec![ClientMatch::Exact(ip("198.41.0.4"))], cat(".")));
        set.push(View::new("com", vec![ClientMatch::Exact(ip("192.5.6.30"))], cat("com")));
        set.push(View::new("default", vec![ClientMatch::Any], cat("example.com")));

        assert_eq!(set.select_index(ip("198.41.0.4")), Some(0));
        assert_eq!(set.select_index(ip("192.5.6.30")), Some(1));
        assert_eq!(set.select_index(ip("8.8.8.8")), Some(2), "Any matcher wins last");
        for addr in ["198.41.0.4", "192.5.6.30", "8.8.8.8"] {
            let a = addr.parse().unwrap();
            let by_ref = set.select(a).map(|v| v.name.clone());
            let by_idx = set.select_index(a).map(|i| set.iter().nth(i).unwrap().name.clone());
            assert_eq!(by_ref, by_idx);
        }
    }

    #[test]
    fn no_match_none() {
        let mut set = ViewSet::new();
        set.push(View::new("root", vec![ClientMatch::Exact(ip("198.41.0.4"))], cat(".")));
        assert!(set.select(ip("1.1.1.1")).is_none());
    }

    #[test]
    fn hierarchy_builder() {
        let set = ViewSet::for_hierarchy(vec![
            (Name::root(), vec![ip("198.41.0.4"), ip("199.9.14.201")], cat(".")),
            (n("com"), vec![ip("192.5.6.30")], cat("com")),
        ]);
        assert_eq!(set.len(), 2);
        // Either root nameserver address selects the root view.
        assert_eq!(set.select(ip("199.9.14.201")).unwrap().name, ".");
        assert_eq!(set.select(ip("192.5.6.30")).unwrap().name, "com.");
        // The views answer differently for the same qname — the crux of
        // split-horizon hierarchy emulation.
        let root_view = set.select(ip("198.41.0.4")).unwrap();
        let com_view = set.select(ip("192.5.6.30")).unwrap();
        assert_eq!(root_view.catalog.find(&n("x.com")).unwrap().origin(), &Name::root());
        assert_eq!(com_view.catalog.find(&n("x.com")).unwrap().origin(), &n("com"));
    }
}
