//! RRsets: all records sharing an owner name and type.

use dns_wire::{Name, RData, Record, RecordType};

/// A set of records with the same owner name and type (RFC 2181 §5).
///
/// All members share one TTL (the RFC requires it; we normalize to the
/// minimum on insert, which is also what caches do).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RRset {
    /// Owner name.
    pub name: Name,
    /// Record type of every member.
    pub rtype: RecordType,
    /// Shared TTL.
    pub ttl: u32,
    /// The member RDATAs (no duplicates).
    pub rdatas: Vec<RData>,
}

impl RRset {
    /// New RRset seeded with one record's data.
    pub fn new(name: Name, rtype: RecordType, ttl: u32) -> Self {
        RRset {
            name,
            rtype,
            ttl,
            rdatas: Vec::new(),
        }
    }

    /// Build an RRset from one record.
    pub fn from_record(rec: Record) -> Self {
        RRset {
            name: rec.name,
            rtype: rec.rdata.record_type(),
            ttl: rec.ttl,
            rdatas: vec![rec.rdata],
        }
    }

    /// Add a record's data. Duplicate RDATA is ignored; TTL becomes the
    /// minimum of the set. Panics if type or name mismatch (callers
    /// group records before inserting).
    pub fn push(&mut self, rec: Record) {
        assert_eq!(rec.name, self.name, "RRset owner mismatch");
        assert_eq!(rec.rdata.record_type(), self.rtype, "RRset type mismatch");
        self.ttl = self.ttl.min(rec.ttl);
        if !self.rdatas.contains(&rec.rdata) {
            self.rdatas.push(rec.rdata);
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.rdatas.len()
    }

    /// True if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.rdatas.is_empty()
    }

    /// Materialize the RRset as wire records.
    pub fn to_records(&self) -> Vec<Record> {
        self.rdatas
            .iter()
            .map(|rd| Record::new(self.name.clone(), self.ttl, rd.clone()))
            .collect()
    }

    /// Materialize with a different owner name (wildcard synthesis).
    pub fn to_records_as(&self, owner: &Name) -> Vec<Record> {
        self.rdatas
            .iter()
            .map(|rd| Record::new(owner.clone(), self.ttl, rd.clone()))
            .collect()
    }

    /// The total wire size of all members, uncompressed (used by the
    /// bandwidth accounting in the DNSSEC experiment).
    pub fn wire_len(&self) -> usize {
        self.to_records().iter().map(|r| r.wire_len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn a(name: &str, ttl: u32, ip: &str) -> Record {
        Record::new(n(name), ttl, RData::A(ip.parse().unwrap()))
    }

    #[test]
    fn push_dedups_and_min_ttl() {
        let mut set = RRset::from_record(a("www.example.com", 300, "1.1.1.1"));
        set.push(a("www.example.com", 60, "2.2.2.2"));
        set.push(a("www.example.com", 600, "1.1.1.1")); // dup rdata
        assert_eq!(set.len(), 2);
        assert_eq!(set.ttl, 60);
    }

    #[test]
    fn to_records_share_ttl() {
        let mut set = RRset::from_record(a("x.example", 100, "1.1.1.1"));
        set.push(a("x.example", 50, "2.2.2.2"));
        for rec in set.to_records() {
            assert_eq!(rec.ttl, 50);
            assert_eq!(rec.name, n("x.example"));
        }
    }

    #[test]
    fn to_records_as_rewrites_owner() {
        let set = RRset::from_record(a("*.example.com", 60, "9.9.9.9"));
        let recs = set.to_records_as(&n("foo.example.com"));
        assert_eq!(recs[0].name, n("foo.example.com"));
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let mut set = RRset::from_record(a("x.example", 60, "1.1.1.1"));
        set.push(Record::new(n("x.example"), 60, RData::Ns(n("ns.example"))));
    }

    #[test]
    #[should_panic(expected = "owner mismatch")]
    fn owner_mismatch_panics() {
        let mut set = RRset::from_record(a("x.example", 60, "1.1.1.1"));
        set.push(a("y.example", 60, "1.1.1.1"));
    }

    #[test]
    fn wire_len_sums_members() {
        let mut set = RRset::from_record(a("x.example", 60, "1.1.1.1"));
        let one = set.wire_len();
        set.push(a("x.example", 60, "2.2.2.2"));
        assert_eq!(set.wire_len(), 2 * one);
    }
}
