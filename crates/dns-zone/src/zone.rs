//! The zone: an origin plus a canonical-ordered tree of nodes, each
//! holding RRsets, with delegation (zone cut) awareness.

use std::collections::BTreeMap;

use dns_wire::{Name, RData, Record, RecordType, Soa};

use crate::rrset::RRset;

/// Errors constructing a zone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneError {
    /// Record owner is outside the zone's origin.
    OutOfZone {
        /// The offending owner name.
        name: String,
    },
    /// The zone has no SOA at its apex.
    MissingSoa,
    /// A CNAME coexists with other data at the same node.
    CnameAndOther(String),
    /// Multiple CNAMEs at one node.
    MultipleCname(String),
}

impl std::fmt::Display for ZoneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZoneError::OutOfZone { name } => write!(f, "record {name} outside zone"),
            ZoneError::MissingSoa => write!(f, "zone has no SOA record at apex"),
            ZoneError::CnameAndOther(n) => write!(f, "CNAME and other data at {n}"),
            ZoneError::MultipleCname(n) => write!(f, "multiple CNAME records at {n}"),
        }
    }
}

impl std::error::Error for ZoneError {}

/// All RRsets at one owner name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Node {
    /// RRsets keyed by type.
    pub rrsets: BTreeMap<u16, RRset>,
}

impl Node {
    /// RRset of `rtype` at this node, if present.
    pub fn get(&self, rtype: RecordType) -> Option<&RRset> {
        self.rrsets.get(&rtype.to_u16())
    }

    /// True if the node carries an NS RRset (a delegation point when not
    /// the apex).
    pub fn has_ns(&self) -> bool {
        self.get(RecordType::NS).is_some()
    }

    /// All RRsets at this node.
    pub fn iter(&self) -> impl Iterator<Item = &RRset> {
        self.rrsets.values()
    }

    /// The record types present (for NSEC synthesis).
    pub fn types(&self) -> Vec<RecordType> {
        self.rrsets
            .keys()
            .map(|&t| RecordType::from_u16(t))
            .collect()
    }
}

/// An authoritative zone: origin name and the node tree.
///
/// Nodes are kept in canonical DNS order ([`Name`]'s `Ord`), which makes
/// closest-encloser walks and NSEC chains straightforward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Zone {
    origin: Name,
    nodes: BTreeMap<Name, Node>,
}

impl Zone {
    /// Empty zone rooted at `origin`.
    pub fn new(origin: Name) -> Self {
        Zone {
            origin,
            nodes: BTreeMap::new(),
        }
    }

    /// The zone origin (apex name).
    pub fn origin(&self) -> &Name {
        &self.origin
    }

    /// Insert a record. Owner must be at or below the origin.
    pub fn insert(&mut self, rec: Record) -> Result<(), ZoneError> {
        if !rec.name.is_subdomain_of(&self.origin) {
            return Err(ZoneError::OutOfZone {
                name: rec.name.to_string(),
            });
        }
        let rtype = rec.rdata.record_type();
        let node = self.nodes.entry(rec.name.clone()).or_default();
        // CNAME exclusivity (RFC 1034 §3.6.2); DNSSEC types may coexist.
        if rtype == RecordType::CNAME {
            if node
                .rrsets
                .keys()
                .any(|&t| !RecordType::from_u16(t).is_dnssec() && t != RecordType::CNAME.to_u16())
            {
                return Err(ZoneError::CnameAndOther(rec.name.to_string()));
            }
            if let Some(existing) = node.get(RecordType::CNAME) {
                if !existing.rdatas.contains(&rec.rdata) && !existing.rdatas.is_empty() {
                    return Err(ZoneError::MultipleCname(rec.name.to_string()));
                }
            }
        } else if !rtype.is_dnssec() && node.get(RecordType::CNAME).is_some() {
            return Err(ZoneError::CnameAndOther(rec.name.to_string()));
        }
        node.rrsets
            .entry(rtype.to_u16())
            .or_insert_with(|| RRset::new(rec.name.clone(), rtype, rec.ttl))
            .push(rec);
        Ok(())
    }

    /// Node at exactly `name`, if any.
    pub fn node(&self, name: &Name) -> Option<&Node> {
        self.nodes.get(name)
    }

    /// The SOA RRset at the apex.
    pub fn soa_rrset(&self) -> Option<&RRset> {
        self.nodes.get(&self.origin)?.get(RecordType::SOA)
    }

    /// The parsed SOA fields.
    pub fn soa(&self) -> Option<&Soa> {
        match self.soa_rrset()?.rdatas.first()? {
            RData::Soa(soa) => Some(soa),
            _ => None,
        }
    }

    /// The apex NS RRset.
    pub fn apex_ns(&self) -> Option<&RRset> {
        self.nodes.get(&self.origin)?.get(RecordType::NS)
    }

    /// Validate structural invariants: SOA present at apex.
    pub fn validate(&self) -> Result<(), ZoneError> {
        if self.soa().is_none() {
            return Err(ZoneError::MissingSoa);
        }
        Ok(())
    }

    /// Walk from the apex towards `qname` and return the first
    /// delegation point strictly between apex and `qname` (exclusive of
    /// the apex, inclusive of `qname`'s ancestors *and* `qname` itself).
    ///
    /// Returns the cut name and its NS RRset. A query at or below a cut
    /// must be answered with a referral, not an authoritative answer —
    /// this is exactly the behaviour that forces naive single-server
    /// hierarchies to give wrong answers (paper §2.4) and that our
    /// split-horizon emulation preserves.
    pub fn find_zone_cut(&self, qname: &Name) -> Option<(&Name, &RRset)> {
        if !qname.is_subdomain_of(&self.origin) {
            return None;
        }
        // Candidate ancestor names from just-below-apex down to qname.
        let mut ancestors: Vec<Name> = Vec::new();
        let mut cur = qname.clone();
        while cur.label_count() > self.origin.label_count() {
            ancestors.push(cur.clone());
            cur = cur.parent()?;
        }
        for anc in ancestors.iter().rev() {
            if let Some(node) = self.nodes.get(anc) {
                if node.has_ns() {
                    let (name, _) = self.nodes.get_key_value(anc).expect("just found");
                    return Some((name, node.get(RecordType::NS).expect("has_ns")));
                }
            }
        }
        None
    }

    /// Find the closest encloser: the longest existing ancestor name of
    /// `qname` (used for wildcard lookup and NXDOMAIN proofs).
    pub fn closest_encloser(&self, qname: &Name) -> Option<Name> {
        let mut cur = qname.parent()?;
        loop {
            // A name "exists" if it holds records or is an empty
            // non-terminal (names exist below it) — both make it a valid
            // closest encloser for wildcard matching (RFC 4592 §3.3.1).
            if self.nodes.contains_key(&cur) || self.has_names_below(&cur) {
                return Some(cur);
            }
            if cur == self.origin {
                return None;
            }
            cur = cur.parent()?;
        }
    }

    /// Whether any node exists strictly below `name` (an "empty
    /// non-terminal" check: `b.example` has no records but exists when
    /// `a.b.example` does).
    pub fn has_names_below(&self, name: &Name) -> bool {
        self.nodes
            .range(name.clone()..)
            .any(|(n, _)| n != name && n.is_subdomain_of(name))
    }

    /// Iterate all nodes in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &Node)> {
        self.nodes.iter()
    }

    /// Iterate all records in canonical order.
    pub fn records(&self) -> impl Iterator<Item = Record> + '_ {
        self.nodes
            .values()
            .flat_map(|node| node.iter().flat_map(|set| set.to_records()))
    }

    /// Number of nodes (owner names).
    pub fn name_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of records.
    pub fn record_count(&self) -> usize {
        self.nodes
            .values()
            .map(|n| n.iter().map(|s| s.len()).sum::<usize>())
            .sum()
    }

    /// Remove signing output (DNSKEY/RRSIG/NSEC/NSEC3). DS records are
    /// *kept*: they are delegation data owned by this zone's operator,
    /// not an artifact of signing, and re-signing must preserve them.
    pub fn strip_dnssec(&mut self) {
        for node in self.nodes.values_mut() {
            node.rrsets.retain(|&t, _| {
                let ty = RecordType::from_u16(t);
                !ty.is_dnssec() || ty == RecordType::DS
            });
        }
        self.nodes.retain(|_, node| !node.rrsets.is_empty());
    }

    /// Names in canonical order (for NSEC chain construction).
    pub fn names(&self) -> impl Iterator<Item = &Name> {
        self.nodes.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn rec(name: &str, rd: RData) -> Record {
        Record::new(n(name), 3600, rd)
    }

    fn soa_rec(zone: &str) -> Record {
        rec(
            zone,
            RData::Soa(Soa {
                mname: n("ns1.example.com"),
                rname: n("admin.example.com"),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 3600,
            }),
        )
    }

    fn example_zone() -> Zone {
        let mut z = Zone::new(n("example.com"));
        z.insert(soa_rec("example.com")).unwrap();
        z.insert(rec("example.com", RData::Ns(n("ns1.example.com")))).unwrap();
        z.insert(rec("ns1.example.com", RData::A("10.0.0.53".parse().unwrap()))).unwrap();
        z.insert(rec("www.example.com", RData::A("10.0.0.1".parse().unwrap()))).unwrap();
        // Delegation: sub.example.com is its own zone.
        z.insert(rec("sub.example.com", RData::Ns(n("ns.sub.example.com")))).unwrap();
        z.insert(rec("ns.sub.example.com", RData::A("10.0.1.53".parse().unwrap()))).unwrap();
        // Deep name creating an empty non-terminal at b.example.com.
        z.insert(rec("a.b.example.com", RData::A("10.0.0.2".parse().unwrap()))).unwrap();
        z
    }

    #[test]
    fn insert_and_lookup() {
        let z = example_zone();
        assert!(z.validate().is_ok());
        assert_eq!(z.node(&n("www.example.com")).unwrap().types(), vec![RecordType::A]);
        assert!(z.node(&n("nothere.example.com")).is_none());
        assert!(z.soa().is_some());
        assert_eq!(z.apex_ns().unwrap().len(), 1);
    }

    #[test]
    fn out_of_zone_rejected() {
        let mut z = Zone::new(n("example.com"));
        let err = z
            .insert(rec("example.org", RData::A("1.1.1.1".parse().unwrap())))
            .unwrap_err();
        assert!(matches!(err, ZoneError::OutOfZone { .. }));
    }

    #[test]
    fn missing_soa_invalid() {
        let z = Zone::new(n("example.com"));
        assert_eq!(z.validate(), Err(ZoneError::MissingSoa));
    }

    #[test]
    fn zone_cut_found_for_names_below() {
        let z = example_zone();
        let (cut, ns) = z.find_zone_cut(&n("host.sub.example.com")).unwrap();
        assert_eq!(cut, &n("sub.example.com"));
        assert_eq!(ns.rtype, RecordType::NS);
        // Query exactly at the cut is also a referral.
        let (cut, _) = z.find_zone_cut(&n("sub.example.com")).unwrap();
        assert_eq!(cut, &n("sub.example.com"));
    }

    #[test]
    fn apex_ns_is_not_a_cut() {
        let z = example_zone();
        assert!(z.find_zone_cut(&n("www.example.com")).is_none());
        assert!(z.find_zone_cut(&n("example.com")).is_none());
    }

    #[test]
    fn closest_encloser_walks_up() {
        let z = example_zone();
        assert_eq!(z.closest_encloser(&n("x.y.www.example.com")).unwrap(), n("www.example.com"));
        assert_eq!(z.closest_encloser(&n("zzz.example.com")).unwrap(), n("example.com"));
        // Empty non-terminal is a valid encloser.
        assert_eq!(z.closest_encloser(&n("x.b.example.com")).unwrap(), n("b.example.com"));
    }

    #[test]
    fn empty_non_terminal_detected() {
        let z = example_zone();
        assert!(z.node(&n("b.example.com")).is_none());
        assert!(z.has_names_below(&n("b.example.com")));
        assert!(!z.has_names_below(&n("www.example.com")));
    }

    #[test]
    fn cname_exclusivity() {
        let mut z = Zone::new(n("example.com"));
        z.insert(soa_rec("example.com")).unwrap();
        z.insert(rec("alias.example.com", RData::Cname(n("www.example.com")))).unwrap();
        let err = z
            .insert(rec("alias.example.com", RData::A("1.1.1.1".parse().unwrap())))
            .unwrap_err();
        assert!(matches!(err, ZoneError::CnameAndOther(_)));
        // And the reverse order.
        let mut z2 = Zone::new(n("example.com"));
        z2.insert(rec("x.example.com", RData::A("1.1.1.1".parse().unwrap()))).unwrap();
        let err = z2
            .insert(rec("x.example.com", RData::Cname(n("y.example.com"))))
            .unwrap_err();
        assert!(matches!(err, ZoneError::CnameAndOther(_)));
    }

    #[test]
    fn multiple_cname_rejected() {
        let mut z = Zone::new(n("example.com"));
        z.insert(rec("alias.example.com", RData::Cname(n("a.example.com")))).unwrap();
        let err = z
            .insert(rec("alias.example.com", RData::Cname(n("b.example.com"))))
            .unwrap_err();
        assert!(matches!(err, ZoneError::MultipleCname(_)));
    }

    #[test]
    fn counts() {
        let z = example_zone();
        assert_eq!(z.name_count(), 6);
        assert_eq!(z.record_count(), 7);
        assert_eq!(z.records().count(), 7);
    }

    #[test]
    fn strip_dnssec_removes_only_dnssec() {
        let mut z = example_zone();
        z.insert(rec(
            "example.com",
            RData::Dnskey {
                flags: 256,
                protocol: 3,
                algorithm: 8,
                public_key: vec![1, 2, 3],
            },
        ))
        .unwrap();
        let before = z.record_count();
        z.strip_dnssec();
        assert_eq!(z.record_count(), before - 1);
        assert!(z.soa().is_some());
    }
}
