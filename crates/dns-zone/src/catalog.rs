//! A catalog of zones served by one authoritative server, with
//! closest-enclosing-zone selection.

use std::collections::BTreeMap;
use std::sync::Arc;

use dns_wire::Name;

use crate::zone::Zone;

/// The set of zones one server (or one split-horizon view) serves.
///
/// Lookup picks the zone with the *longest* origin that is a suffix of
/// the query name — the standard "closest enclosing zone" rule. With the
/// root, `com` and `google.com` all loaded, a query for
/// `www.google.com` must be answered from `google.com`, not from the
/// root; putting all three in one catalog is exactly the naive
/// configuration the paper shows gives wrong (short-circuited) answers,
/// which is why hierarchy emulation assigns each level its own *view*
/// instead (see [`crate::view`]).
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    zones: BTreeMap<Name, Arc<Zone>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Add (or replace) a zone.
    pub fn insert(&mut self, zone: Zone) {
        self.zones.insert(zone.origin().clone(), Arc::new(zone));
    }

    /// Add an already-shared zone.
    pub fn insert_arc(&mut self, zone: Arc<Zone>) {
        self.zones.insert(zone.origin().clone(), zone);
    }

    /// The zone with exactly this origin.
    pub fn get(&self, origin: &Name) -> Option<&Arc<Zone>> {
        self.zones.get(origin)
    }

    /// The closest enclosing zone for `qname` (longest matching origin).
    pub fn find(&self, qname: &Name) -> Option<&Arc<Zone>> {
        let mut cur = qname.clone();
        loop {
            if let Some(z) = self.zones.get(&cur) {
                return Some(z);
            }
            match cur.parent() {
                Some(p) => cur = p,
                None => return None,
            }
        }
    }

    /// Number of zones.
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// True if no zones are loaded.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// Iterate zones in canonical origin order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Zone>> {
        self.zones.values()
    }

    /// Zone origins.
    pub fn origins(&self) -> impl Iterator<Item = &Name> {
        self.zones.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::{RData, Record, Soa};

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn zone_with_soa(origin: &str) -> Zone {
        let mut z = Zone::new(n(origin));
        z.insert(Record::new(
            n(origin),
            3600,
            RData::Soa(Soa {
                mname: n("ns1.example"),
                rname: n("admin.example"),
                serial: 1,
                refresh: 1,
                retry: 1,
                expire: 1,
                minimum: 1,
            }),
        ))
        .unwrap();
        z
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert(zone_with_soa("."));
        c.insert(zone_with_soa("com"));
        c.insert(zone_with_soa("google.com"));
        c
    }

    #[test]
    fn longest_match_wins() {
        let c = catalog();
        assert_eq!(c.find(&n("www.google.com")).unwrap().origin(), &n("google.com"));
        assert_eq!(c.find(&n("google.com")).unwrap().origin(), &n("google.com"));
        assert_eq!(c.find(&n("example.com")).unwrap().origin(), &n("com"));
        assert_eq!(c.find(&n("example.org")).unwrap().origin(), &Name::root());
        assert_eq!(c.find(&Name::root()).unwrap().origin(), &Name::root());
    }

    #[test]
    fn no_root_means_no_match() {
        let mut c = Catalog::new();
        c.insert(zone_with_soa("com"));
        assert!(c.find(&n("example.org")).is_none());
        assert!(c.find(&n("a.com")).is_some());
    }

    #[test]
    fn replace_zone() {
        let mut c = catalog();
        assert_eq!(c.len(), 3);
        c.insert(zone_with_soa("com"));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn iter_in_canonical_order() {
        let c = catalog();
        let origins: Vec<String> = c.origins().map(|o| o.to_string()).collect();
        assert_eq!(origins, vec![".", "com.", "google.com."]);
    }
}
