//! Synthetic DNSSEC signing (paper §5.1).
//!
//! The DNSSEC what-if experiments measure *traffic volume*, which depends
//! on the presence and **size** of DNSKEY/RRSIG/NSEC records, not on the
//! cryptographic validity of the signatures. This signer therefore
//! produces records that are bit-for-bit shaped like RSA/SHA-256 output —
//! key and signature lengths derived from the configured ZSK/KSK sizes,
//! real key tags, valid NSEC chains — with deterministic pseudo-random
//! payload bytes. Substitution documented in DESIGN.md §2.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dns_wire::{Name, RData, Record, RecordType, Rrsig};

use crate::zone::Zone;

/// DNSSEC signing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignConfig {
    /// Zone-signing key modulus size in bits (1024, 2048, 4096, ...).
    pub zsk_bits: u32,
    /// Key-signing key modulus size in bits (the root uses 2048).
    pub ksk_bits: u32,
    /// Dual-sign rollover: also publish and sign with an *old* ZSK of
    /// this size (the root's 1024→2048 upgrade dual-signed with both
    /// keys during the transition — the "rollover" bars in Figure 10).
    pub rollover_old_bits: Option<u32>,
    /// RRSIG validity window in seconds.
    pub validity: u32,
    /// Signature inception (UNIX seconds) — fixed for reproducibility.
    pub inception: u32,
    /// RNG seed for key/signature bytes.
    pub seed: u64,
}

impl SignConfig {
    /// Root-like defaults with the given ZSK size.
    pub fn with_zsk_bits(zsk_bits: u32) -> Self {
        SignConfig {
            zsk_bits,
            ksk_bits: 2048,
            rollover_old_bits: None,
            validity: 14 * 86400,
            inception: 1_460_000_000,
            seed: 0x1d91a7e5,
        }
    }

    /// Same, with dual-signature rollover from a 1024-bit old key (the
    /// root's actual transition configuration).
    pub fn rollover(mut self) -> Self {
        self.rollover_old_bits = Some(1024);
        self
    }
}

/// RSA public key wire size: modulus bytes + 1-byte exponent length +
/// 3-byte exponent (65537).
fn dnskey_len(bits: u32) -> usize {
    (bits as usize) / 8 + 4
}

/// RSA signature size equals the modulus size.
fn rrsig_len(bits: u32) -> usize {
    (bits as usize) / 8
}

/// Compute the RFC 4034 Appendix B key tag over DNSKEY RDATA.
pub fn key_tag(flags: u16, protocol: u8, algorithm: u8, public_key: &[u8]) -> u16 {
    let mut rdata = Vec::with_capacity(4 + public_key.len());
    rdata.extend_from_slice(&flags.to_be_bytes());
    rdata.push(protocol);
    rdata.push(algorithm);
    rdata.extend_from_slice(public_key);
    let mut acc: u32 = 0;
    for (i, &b) in rdata.iter().enumerate() {
        if i & 1 == 0 {
            acc += (b as u32) << 8;
        } else {
            acc += b as u32;
        }
    }
    acc += (acc >> 16) & 0xffff;
    (acc & 0xffff) as u16
}

/// One synthetic signing key.
#[derive(Debug, Clone)]
pub struct SigningKey {
    /// 256 = ZSK, 257 = KSK.
    pub flags: u16,
    /// Modulus bits.
    pub bits: u32,
    /// Synthetic public key bytes.
    pub public_key: Vec<u8>,
    /// RFC 4034 key tag.
    pub tag: u16,
}

impl SigningKey {
    fn generate(flags: u16, bits: u32, rng: &mut StdRng) -> Self {
        let public_key: Vec<u8> = (0..dnskey_len(bits)).map(|_| rng.gen()).collect();
        let tag = key_tag(flags, 3, 8, &public_key);
        SigningKey {
            flags,
            bits,
            public_key,
            tag,
        }
    }

    /// The DNSKEY RDATA for this key.
    pub fn to_rdata(&self) -> RData {
        RData::Dnskey {
            flags: self.flags,
            protocol: 3,
            algorithm: 8,
            public_key: self.public_key.clone(),
        }
    }
}

/// The result of signing: the signed zone plus the keys used.
#[derive(Debug, Clone)]
pub struct SignedZone {
    /// The signed zone (DNSKEY, RRSIG, NSEC added).
    pub zone: Zone,
    /// Active zone-signing keys (two during rollover).
    pub zsks: Vec<SigningKey>,
    /// The key-signing key.
    pub ksk: SigningKey,
}

/// Sign `zone` per `config`, producing DNSKEY at the apex, RRSIGs over
/// every authoritative RRset, and an NSEC chain.
///
/// Delegation NS RRsets (zone cuts) are *not* signed, matching real
/// signers: the child holds authority; the parent serves only unsigned NS
/// plus signed DS.
pub fn sign_zone(zone: &Zone, config: SignConfig) -> SignedZone {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let ksk = SigningKey::generate(257, config.ksk_bits, &mut rng);
    let mut zsks = vec![SigningKey::generate(256, config.zsk_bits, &mut rng)];
    if let Some(old_bits) = config.rollover_old_bits {
        zsks.push(SigningKey::generate(256, old_bits, &mut rng));
    }

    let mut out = zone.clone();
    out.strip_dnssec();
    let origin = out.origin().clone();
    let apex_ttl = out
        .soa_rrset()
        .map(|s| s.ttl)
        .unwrap_or(3600);

    // Publish DNSKEYs.
    for key in std::iter::once(&ksk).chain(zsks.iter()) {
        out.insert(Record::new(origin.clone(), apex_ttl, key.to_rdata()))
            .expect("DNSKEY at apex is in-zone");
    }

    // Gather the RRsets to sign and the NSEC chain *before* mutating.
    let snapshot: Vec<(Name, Vec<(RecordType, u32)>)> = out
        .iter()
        .map(|(name, node)| {
            let sets = node
                .iter()
                .map(|set| (set.rtype, set.ttl))
                .collect::<Vec<_>>();
            (name.clone(), sets)
        })
        .collect();

    let expiration = config.inception.wrapping_add(config.validity);
    let mut to_insert: Vec<Record> = Vec::new();

    // Names strictly below a zone cut are glue: not authoritative, never
    // signed, no NSEC.
    let authoritative: Vec<usize> = snapshot
        .iter()
        .enumerate()
        .filter(|(_, (name, _))| match out.find_zone_cut(name) {
            Some((cut, _)) => cut == name,
            None => true,
        })
        .map(|(i, _)| i)
        .collect();

    for (pos, &i) in authoritative.iter().enumerate() {
        let (name, sets) = &snapshot[i];
        let is_apex = name == &origin;
        let is_cut = !is_apex
            && sets.iter().any(|(t, _)| *t == RecordType::NS);
        let mut types_present: Vec<RecordType> = sets.iter().map(|(t, _)| *t).collect();

        for &(rtype, ttl) in sets {
            // At a cut, only DS (and the future NSEC) are signed.
            if is_cut && rtype != RecordType::DS {
                continue;
            }
            for zsk in signing_keys(&zsks, rtype, &ksk) {
                to_insert.push(Record::new(
                    name.clone(),
                    ttl,
                    RData::Rrsig(make_rrsig(
                        rtype, name, &origin, ttl, expiration, config.inception, zsk, &mut rng,
                    )),
                ));
            }
        }

        // NSEC: next authoritative name in canonical order, wrapping to
        // the apex.
        let next = snapshot[authoritative[(pos + 1) % authoritative.len()]].0.clone();
        types_present.push(RecordType::NSEC);
        types_present.push(RecordType::RRSIG);
        types_present.sort_by_key(|t| t.to_u16());
        types_present.dedup();
        let nsec_ttl = out.soa().map(|s| s.minimum).unwrap_or(apex_ttl);
        to_insert.push(Record::new(
            name.clone(),
            nsec_ttl,
            RData::Nsec {
                next,
                types: types_present,
            },
        ));
        for zsk in zsks.iter() {
            to_insert.push(Record::new(
                name.clone(),
                nsec_ttl,
                RData::Rrsig(make_rrsig(
                    RecordType::NSEC,
                    name,
                    &origin,
                    nsec_ttl,
                    expiration,
                    config.inception,
                    zsk,
                    &mut rng,
                )),
            ));
        }
    }

    for rec in to_insert {
        out.insert(rec).expect("signing records are in-zone");
    }

    SignedZone {
        zone: out,
        zsks,
        ksk,
    }
}

/// DNSKEY RRsets are signed by the KSK; everything else by the ZSK(s).
fn signing_keys<'a>(
    zsks: &'a [SigningKey],
    rtype: RecordType,
    ksk: &'a SigningKey,
) -> Vec<&'a SigningKey> {
    if rtype == RecordType::DNSKEY {
        let mut keys = vec![ksk];
        keys.extend(zsks.iter());
        keys
    } else {
        zsks.iter().collect()
    }
}

#[allow(clippy::too_many_arguments)]
fn make_rrsig(
    covered: RecordType,
    owner: &Name,
    origin: &Name,
    ttl: u32,
    expiration: u32,
    inception: u32,
    key: &SigningKey,
    rng: &mut StdRng,
) -> Rrsig {
    Rrsig {
        type_covered: covered,
        algorithm: 8,
        labels: owner.label_count() as u8,
        original_ttl: ttl,
        expiration,
        inception,
        key_tag: key.tag,
        signer_name: origin.clone(),
        signature: (0..rrsig_len(key.bits)).map(|_| rng.gen()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::Soa;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn rec(name: &str, rd: RData) -> Record {
        Record::new(n(name), 3600, rd)
    }

    fn base_zone() -> Zone {
        let mut z = Zone::new(n("example"));
        z.insert(rec(
            "example",
            RData::Soa(Soa {
                mname: n("ns1.example"),
                rname: n("admin.example"),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        ))
        .unwrap();
        z.insert(rec("example", RData::Ns(n("ns1.example")))).unwrap();
        z.insert(rec("ns1.example", RData::A("10.0.0.1".parse().unwrap()))).unwrap();
        z.insert(rec("www.example", RData::A("10.0.0.2".parse().unwrap()))).unwrap();
        // Delegation with DS.
        z.insert(rec("child.example", RData::Ns(n("ns.child.example")))).unwrap();
        z.insert(rec(
            "child.example",
            RData::Ds { key_tag: 1, algorithm: 8, digest_type: 2, digest: vec![0; 32] },
        ))
        .unwrap();
        z
    }

    #[test]
    fn signs_every_authoritative_rrset() {
        let signed = sign_zone(&base_zone(), SignConfig::with_zsk_bits(1024));
        let z = &signed.zone;
        // Apex has DNSKEY + RRSIGs.
        let apex = z.node(&n("example")).unwrap();
        assert!(apex.get(RecordType::DNSKEY).is_some());
        let sigs = apex.get(RecordType::RRSIG).unwrap();
        let covered: Vec<RecordType> = sigs
            .rdatas
            .iter()
            .filter_map(|rd| match rd {
                RData::Rrsig(s) => Some(s.type_covered),
                _ => None,
            })
            .collect();
        assert!(covered.contains(&RecordType::SOA));
        assert!(covered.contains(&RecordType::NS));
        assert!(covered.contains(&RecordType::DNSKEY));
        assert!(covered.contains(&RecordType::NSEC));
        // Leaf A record is signed.
        let www = z.node(&n("www.example")).unwrap();
        assert!(www.get(RecordType::RRSIG).is_some());
        assert!(www.get(RecordType::NSEC).is_some());
    }

    #[test]
    fn delegation_ns_unsigned_ds_signed() {
        let signed = sign_zone(&base_zone(), SignConfig::with_zsk_bits(2048));
        let cut = signed.zone.node(&n("child.example")).unwrap();
        let covered: Vec<RecordType> = cut
            .get(RecordType::RRSIG)
            .unwrap()
            .rdatas
            .iter()
            .filter_map(|rd| match rd {
                RData::Rrsig(s) => Some(s.type_covered),
                _ => None,
            })
            .collect();
        assert!(covered.contains(&RecordType::DS), "DS must be signed");
        assert!(covered.contains(&RecordType::NSEC));
        assert!(!covered.contains(&RecordType::NS), "cut NS must not be signed");
    }

    #[test]
    fn signature_sizes_track_key_bits() {
        for bits in [1024u32, 2048, 4096] {
            let signed = sign_zone(&base_zone(), SignConfig::with_zsk_bits(bits));
            let www = signed.zone.node(&n("www.example")).unwrap();
            let sig = www.get(RecordType::RRSIG).unwrap();
            for rd in &sig.rdatas {
                if let RData::Rrsig(s) = rd {
                    if s.type_covered == RecordType::A {
                        assert_eq!(s.signature.len(), bits as usize / 8);
                    }
                }
            }
            // ZSK DNSKEY size.
            let zsk = &signed.zsks[0];
            assert_eq!(zsk.public_key.len(), bits as usize / 8 + 4);
        }
    }

    #[test]
    fn bigger_zsk_means_bigger_zone() {
        let z1024 = sign_zone(&base_zone(), SignConfig::with_zsk_bits(1024));
        let z2048 = sign_zone(&base_zone(), SignConfig::with_zsk_bits(2048));
        let size = |z: &Zone| z.records().map(|r| r.wire_len()).sum::<usize>();
        assert!(size(&z2048.zone) > size(&z1024.zone));
    }

    #[test]
    fn rollover_publishes_two_zsks_and_double_signs() {
        let normal = sign_zone(&base_zone(), SignConfig::with_zsk_bits(2048));
        let roll = sign_zone(&base_zone(), SignConfig::with_zsk_bits(2048).rollover());
        assert_eq!(normal.zsks.len(), 1);
        assert_eq!(roll.zsks.len(), 2);
        let dnskeys = |s: &SignedZone| {
            s.zone
                .node(s.zone.origin())
                .unwrap()
                .get(RecordType::DNSKEY)
                .unwrap()
                .len()
        };
        assert_eq!(dnskeys(&normal), 2); // KSK + ZSK
        assert_eq!(dnskeys(&roll), 3); // KSK + 2 ZSK
        // Double signatures on the leaf.
        let count_sigs = |s: &SignedZone| {
            s.zone
                .node(&n("www.example"))
                .unwrap()
                .get(RecordType::RRSIG)
                .unwrap()
                .rdatas
                .iter()
                .filter(|rd| matches!(rd, RData::Rrsig(sig) if sig.type_covered == RecordType::A))
                .count()
        };
        assert_eq!(count_sigs(&normal), 1);
        assert_eq!(count_sigs(&roll), 2);
    }

    #[test]
    fn nsec_chain_closes() {
        let signed = sign_zone(&base_zone(), SignConfig::with_zsk_bits(1024));
        let z = &signed.zone;
        // Follow the chain from the apex; it must visit every name once
        // and return to the apex.
        let mut seen = std::collections::HashSet::new();
        let mut cur = z.origin().clone();
        loop {
            assert!(seen.insert(cur.clone()), "NSEC chain revisited {cur}");
            let node = z.node(&cur).expect("chain name exists");
            let nsec = node.get(RecordType::NSEC).expect("every name has NSEC");
            let next = match nsec.rdatas.first() {
                Some(RData::Nsec { next, .. }) => next.clone(),
                _ => panic!("NSEC rdata"),
            };
            if next == *z.origin() {
                break;
            }
            cur = next;
        }
        assert_eq!(seen.len(), z.name_count());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = sign_zone(&base_zone(), SignConfig::with_zsk_bits(1024));
        let b = sign_zone(&base_zone(), SignConfig::with_zsk_bits(1024));
        assert_eq!(a.zone, b.zone);
        let mut cfg = SignConfig::with_zsk_bits(1024);
        cfg.seed = 999;
        let c = sign_zone(&base_zone(), cfg);
        assert_ne!(a.zone, c.zone);
    }

    #[test]
    fn re_signing_strips_old_signatures() {
        let first = sign_zone(&base_zone(), SignConfig::with_zsk_bits(1024));
        let second = sign_zone(&first.zone, SignConfig::with_zsk_bits(1024));
        assert_eq!(first.zone, second.zone);
    }

    #[test]
    fn key_tag_is_stable() {
        let t1 = key_tag(256, 3, 8, &[1, 2, 3, 4]);
        let t2 = key_tag(256, 3, 8, &[1, 2, 3, 4]);
        assert_eq!(t1, t2);
        assert_ne!(t1, key_tag(257, 3, 8, &[1, 2, 3, 4]));
    }
}
