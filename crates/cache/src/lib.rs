//! # ldp-cache
//!
//! Production-grade resolver caching for the LDplayer reproduction.
//! The paper's what-if methodology (recursive trace replay against an
//! emulated hierarchy, §2.3/§5) stands or falls on resolver cache
//! fidelity; this crate replaces the first-generation unbounded TTL map
//! with the three mechanisms real resolvers under heavy-tailed load
//! live or die on:
//!
//! * **[`ResolverCache`]** — a capacity-bounded TTL store with
//!   pluggable deterministic eviction policies behind one trait
//!   ([`EvictionPolicy`]): [`policy::Lru`], [`policy::LfuLite`] and the
//!   aggregate-delay-aware [`policy::DelayAware`] that ranks entries by
//!   (expected miss latency × arrival rate) rather than recency. TTLs
//!   are clamped per RFC 2181 §8 and expired sets are never inserted.
//! * **[`OutstandingTable`]** — the in-flight query aggregation table:
//!   concurrent misses for one (qname, qtype) coalesce onto a single
//!   upstream resolution, and the answer fans out to every waiter — the
//!   *delayed hit* path, with per-waiter arrival times recorded so the
//!   extra latency each coalesced request paid is accountable.
//! * **[`negative_ttl`]** — RFC 2308 negative caching: the negative TTL
//!   is derived from the authority-section SOA (min of the SOA record
//!   TTL and its MINIMUM field) instead of a hardcoded constant, with a
//!   named config fallback ([`CacheConfig::neg_ttl_default`]) and a cap.
//! * **Prefetch-before-expiry** — hot names are refreshed when their
//!   remaining TTL drops under a configurable fraction
//!   ([`PrefetchConfig::trigger_fraction`]), rate-budgeted by a
//!   deterministic virtual-time token bucket so a popular-name storm
//!   cannot turn the refresh path into its own query flood.
//!
//! Everything is virtual-time-friendly: time is an explicit `f64`
//! seconds parameter (any epoch), there is no ambient clock and no
//! ambient randomness, and all internal iteration is over ordered
//! containers — two same-seed simulator runs using this cache produce
//! byte-identical transcripts (ldp-lint rules D1–D4 and P1 apply to
//! this crate; see DESIGN.md §7 and §11).

#![warn(missing_docs)]

pub mod negative;
pub mod outstanding;
pub mod policy;
pub mod store;

pub use negative::negative_ttl;
pub use outstanding::{Completed, OutstandingStats, OutstandingTable, WaiterSlot};
pub use policy::{EvictionPolicy, PolicyKind};
pub use store::{CacheStats, CachedAnswer, EntryMeta, FillInfo, PutOutcome, ResolverCache};

/// Prefetch-before-expiry knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchConfig {
    /// Refresh when the remaining TTL drops to this fraction of the
    /// original TTL (0.1 = refresh inside the last 10% of lifetime).
    pub trigger_fraction: f64,
    /// Sustained refresh budget, in refreshes per (virtual) second.
    pub rate_per_sec: f64,
    /// Token-bucket burst: refreshes that may fire back-to-back.
    pub burst: f64,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            trigger_fraction: 0.1,
            rate_per_sec: 10.0,
            burst: 4.0,
        }
    }
}

/// Configuration of a [`ResolverCache`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Maximum resident entries; `usize::MAX` means unbounded (the
    /// legacy first-generation behavior). `0` disables caching.
    pub capacity: usize,
    /// Eviction policy applied when the store is full.
    pub policy: PolicyKind,
    /// Positive-TTL clamp floor (seconds). Left at 0, TTLs are taken
    /// as-is; raising it protects the store from 1-second TTL churn.
    pub min_ttl: u32,
    /// Positive-TTL clamp cap (seconds): RFC 2181 §8 bounds TTL to 31
    /// bits, and operationally a week is the common upper clamp.
    pub max_ttl: u32,
    /// Negative TTL used when the response carried no SOA to derive one
    /// from (RFC 2308 §5) — the named fallback replacing the old
    /// hardcoded constant.
    pub neg_ttl_default: u32,
    /// Cap on SOA-derived negative TTLs (RFC 2308 suggests resolvers
    /// bound negative caching; 3 hours is BIND's default cap).
    pub neg_ttl_cap: u32,
    /// Prefetch-before-expiry; `None` disables the refresh path.
    pub prefetch: Option<PrefetchConfig>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: usize::MAX,
            policy: PolicyKind::Lru,
            min_ttl: 0,
            max_ttl: 604_800,
            neg_ttl_default: 30,
            neg_ttl_cap: 10_800,
            prefetch: None,
        }
    }
}

impl CacheConfig {
    /// A bounded cache with `capacity` entries under `policy`, other
    /// knobs at their defaults.
    pub fn bounded(capacity: usize, policy: PolicyKind) -> Self {
        CacheConfig {
            capacity,
            policy,
            ..CacheConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_unbounded_lru() {
        let cfg = CacheConfig::default();
        assert_eq!(cfg.capacity, usize::MAX);
        assert_eq!(cfg.policy, PolicyKind::Lru);
        assert!(cfg.prefetch.is_none());
        assert_eq!(cfg.neg_ttl_default, 30);
    }

    #[test]
    fn bounded_sets_capacity_and_policy() {
        let cfg = CacheConfig::bounded(128, PolicyKind::DelayAware);
        assert_eq!(cfg.capacity, 128);
        assert_eq!(cfg.policy, PolicyKind::DelayAware);
        assert_eq!(cfg.max_ttl, 604_800);
    }
}
