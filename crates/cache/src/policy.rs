//! Deterministic eviction policies behind one trait.
//!
//! A policy maps an entry's bookkeeping ([`EntryMeta`]) to a `u128`
//! *rank*; the store keeps a `(rank, slot)` ordered index and always
//! evicts the minimum. Ranks are recomputed whenever an entry is
//! touched, so a policy sees the entry's state as of its last access —
//! the standard frozen-rank approximation every O(log n) cache uses.
//! Ties break on the insertion slot (packed into the low bits or via
//! the index tuple), never on memory addresses or hash order, so a
//! given access sequence evicts the same victims in every run.

use crate::store::EntryMeta;

/// An eviction policy: smaller rank ⇒ evicted sooner.
pub trait EvictionPolicy: Send + std::fmt::Debug {
    /// Short label for transcripts and figure legends.
    fn label(&self) -> &'static str;

    /// Eviction rank of an entry with bookkeeping `meta` at time `now`
    /// (seconds, same epoch as the store's `now` parameters). The
    /// minimum-ranked entry is evicted first.
    fn rank(&self, meta: &EntryMeta, now: f64) -> u128;
}

/// Least-recently-used: rank is the global access sequence number of
/// the entry's last touch.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lru;

impl EvictionPolicy for Lru {
    fn label(&self) -> &'static str {
        "lru"
    }

    fn rank(&self, meta: &EntryMeta, _now: f64) -> u128 {
        meta.last_access_seq as u128
    }
}

/// Frequency-first ("LFU-lite"): rank orders by lifetime request count,
/// breaking ties by recency. "Lite" because counts are per-generation
/// accumulations, not a decayed sketch — deterministic and cheap.
#[derive(Debug, Clone, Copy, Default)]
pub struct LfuLite;

impl EvictionPolicy for LfuLite {
    fn label(&self) -> &'static str {
        "lfu-lite"
    }

    fn rank(&self, meta: &EntryMeta, _now: f64) -> u128 {
        ((meta.requests as u128) << 64) | meta.last_access_seq as u128
    }
}

/// Aggregate-delay-aware (MAD-style): rank by the delay an eviction
/// would reintroduce — (expected miss latency) × (arrival rate) — so
/// the store prefers to keep entries whose misses are expensive *and*
/// frequent, not merely recent. Under in-flight aggregation a miss for
/// a popular name delays every coalesced waiter, which is exactly the
/// product this score estimates.
#[derive(Debug, Clone, Copy, Default)]
pub struct DelayAware;

impl EvictionPolicy for DelayAware {
    fn label(&self) -> &'static str {
        "delay-aware"
    }

    fn rank(&self, meta: &EntryMeta, now: f64) -> u128 {
        // Arrival rate over the entry's observed lifetime, floored at a
        // 1 s window so a brand-new entry's rate is just its aggregated
        // request count (the waiters that piled up during its fill).
        let age = (now - meta.first_seen).max(1.0);
        let rate = meta.requests as f64 / age;
        let score = (meta.fill_latency.max(0.0) * rate).max(0.0);
        // Non-negative f64 bit patterns sort like the floats they
        // encode, so the score is order-preserved; recency breaks ties.
        ((score.to_bits() as u128) << 64) | meta.last_access_seq as u128
    }
}

/// The built-in policies, as a config-friendly enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`Lru`].
    Lru,
    /// [`LfuLite`].
    LfuLite,
    /// [`DelayAware`].
    DelayAware,
}

impl PolicyKind {
    /// All built-in policies, in display order.
    pub const ALL: [PolicyKind; 3] = [PolicyKind::Lru, PolicyKind::LfuLite, PolicyKind::DelayAware];

    /// The policy's transcript/legend label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Lru => Lru.label(),
            PolicyKind::LfuLite => LfuLite.label(),
            PolicyKind::DelayAware => DelayAware.label(),
        }
    }

    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn EvictionPolicy> {
        match self {
            PolicyKind::Lru => Box::new(Lru),
            PolicyKind::LfuLite => Box::new(LfuLite),
            PolicyKind::DelayAware => Box::new(DelayAware),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(seq: u64, requests: u64, first_seen: f64, fill_latency: f64) -> EntryMeta {
        EntryMeta {
            first_seen,
            requests,
            last_access_seq: seq,
            fill_latency,
            prefetch_armed: false,
        }
    }

    #[test]
    fn lru_orders_by_recency() {
        let p = Lru;
        assert!(p.rank(&meta(1, 100, 0.0, 9.0), 10.0) < p.rank(&meta(2, 1, 0.0, 0.0), 10.0));
    }

    #[test]
    fn lfu_orders_by_frequency_then_recency() {
        let p = LfuLite;
        assert!(p.rank(&meta(9, 1, 0.0, 0.0), 10.0) < p.rank(&meta(1, 2, 0.0, 0.0), 10.0));
        // Same frequency: older access evicts first.
        assert!(p.rank(&meta(1, 2, 0.0, 0.0), 10.0) < p.rank(&meta(5, 2, 0.0, 0.0), 10.0));
    }

    #[test]
    fn delay_aware_keeps_expensive_frequent_entries() {
        let p = DelayAware;
        // Cheap-and-rare evicts before expensive-and-frequent.
        let cheap = meta(1, 2, 0.0, 0.010);
        let costly = meta(2, 200, 0.0, 0.200);
        assert!(p.rank(&cheap, 100.0) < p.rank(&costly, 100.0));
        // An expensive fill beats a cheap one at equal rates.
        let slow = meta(3, 10, 0.0, 0.500);
        let fast = meta(4, 10, 0.0, 0.005);
        assert!(p.rank(&fast, 100.0) < p.rank(&slow, 100.0));
    }

    #[test]
    fn delay_aware_rank_is_deterministic() {
        let p = DelayAware;
        let m = meta(7, 42, 1.5, 0.123);
        assert_eq!(p.rank(&m, 50.0), p.rank(&m, 50.0));
    }

    #[test]
    fn kind_builds_matching_policy() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.build().label(), kind.label());
        }
    }
}
