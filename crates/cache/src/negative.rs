//! RFC 2308 negative-TTL derivation.

use dns_wire::{RData, Record};

/// Derive the negative-caching TTL from a response's authority section
/// per RFC 2308 §3/§5: the TTL of the negative answer is the minimum of
/// the SOA record's own TTL and its MINIMUM field. Returns `None` when
/// no SOA is present (the caller falls back to its named config
/// default, [`crate::CacheConfig::neg_ttl_default`]).
pub fn negative_ttl(authorities: &[Record]) -> Option<u32> {
    authorities.iter().find_map(|r| match &r.rdata {
        RData::Soa(soa) => Some(r.ttl.min(soa.minimum)),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::{Name, Soa};

    fn soa_record(ttl: u32, minimum: u32) -> Record {
        let zone: Name = "example.".parse().unwrap();
        Record::new(
            zone.clone(),
            ttl,
            RData::Soa(Soa {
                mname: "ns.example.".parse().unwrap(),
                rname: "host.example.".parse().unwrap(),
                serial: 1,
                refresh: 7200,
                retry: 900,
                expire: 1_209_600,
                minimum,
            }),
        )
    }

    #[test]
    fn soa_minimum_governs_when_smaller() {
        assert_eq!(negative_ttl(&[soa_record(3600, 300)]), Some(300));
    }

    #[test]
    fn soa_record_ttl_governs_when_smaller() {
        // RFC 2308 §5: authorities decrement the SOA TTL as the
        // negative answer ages, so the record TTL can be the binding one.
        assert_eq!(negative_ttl(&[soa_record(60, 86_400)]), Some(60));
    }

    #[test]
    fn no_soa_yields_none() {
        assert_eq!(negative_ttl(&[]), None);
        let ns = Record::new(
            "example.".parse().unwrap(),
            3600,
            RData::Ns("ns.example.".parse().unwrap()),
        );
        assert_eq!(negative_ttl(&[ns]), None);
    }

    #[test]
    fn first_soa_wins_among_mixed_authorities() {
        let ns = Record::new(
            "example.".parse().unwrap(),
            3600,
            RData::Ns("ns.example.".parse().unwrap()),
        );
        let recs = vec![ns, soa_record(1800, 600), soa_record(10, 10)];
        assert_eq!(negative_ttl(&recs), Some(600));
    }
}
