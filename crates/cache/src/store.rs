//! The capacity-bounded TTL store.
//!
//! Time is an explicit parameter (seconds, any epoch) so the same store
//! runs under the simulator's virtual clock or the wall clock. All
//! containers are ordered (`BTreeMap`/`BTreeSet`) and every eviction
//! decision ties-break on insertion slots, so a given access sequence
//! produces the same residency set — and therefore the same simulator
//! transcript — in every run (ldp-lint rule D2 applies to this crate).
//!
//! Layout: entries live in a `name → qtype → Entry` two-level ordered
//! map (lookups borrow the caller's [`Name`], no per-get clone), and a
//! `(rank, slot)` ordered index realizes the eviction order; `slot` is
//! a monotone insertion counter that makes ranks unique and resolves
//! back to the owning key through a side map. Hits, inserts and
//! evictions are all O(log n); there is no O(capacity) scan anywhere.

use std::collections::{BTreeMap, BTreeSet};

use dns_wire::{Name, Rcode, Record, RecordType};

use crate::policy::EvictionPolicy;
use crate::{CacheConfig, PrefetchConfig};

/// A cached outcome for a (name, type) question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedAnswer {
    /// Positive answer records (answer-section records, CNAMEs included).
    Positive(Vec<Record>),
    /// Negative result with the rcode to reproduce (NXDOMAIN or NODATA
    /// as NoError-with-no-answers).
    Negative(Rcode),
}

/// Per-entry bookkeeping the eviction policies rank on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryMeta {
    /// When this key was first inserted (survives refreshes, so the
    /// arrival-rate estimate spans the key's whole observed lifetime).
    pub first_seen: f64,
    /// Lifetime requests for this key: cache hits plus, at each fill,
    /// every request the fill aggregated (lead + coalesced waiters).
    pub requests: u64,
    /// Global access sequence number of the last touch (recency).
    pub last_access_seq: u64,
    /// Observed upstream latency of the most recent fill, seconds —
    /// what a miss for this key is expected to cost again.
    pub fill_latency: f64,
    /// A prefetch was already triggered for this generation of the
    /// entry (reset on refresh, so each TTL window refreshes at most
    /// once).
    pub prefetch_armed: bool,
}

/// What a fill observed, fed back into the store at insert time so the
/// delay-aware policy can rank on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FillInfo {
    /// Upstream latency of the resolution that produced this answer
    /// (seconds).
    pub latency: f64,
    /// Requests this fill served: the lead miss plus every waiter that
    /// coalesced onto it while it was outstanding.
    pub requests: u64,
}

impl Default for FillInfo {
    fn default() -> Self {
        FillInfo {
            latency: 0.0,
            requests: 1,
        }
    }
}

/// Result of a `put_*` call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PutOutcome {
    /// Whether the answer was stored (expired/empty sets are rejected).
    pub inserted: bool,
    /// Entries evicted to make room.
    pub evicted: usize,
}

/// Cumulative store counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found nothing usable (absent or expired).
    pub misses: u64,
    /// Of the misses, lookups that found only an expired entry.
    pub expired: u64,
    /// Successful inserts (positive + negative).
    pub inserts: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Inserts rejected (empty record set, zero/overflowed TTL, or
    /// capacity 0).
    pub rejected: u64,
    /// Prefetch triggers granted by [`ResolverCache::prefetch_due`].
    pub prefetch_grants: u64,
}

#[derive(Debug)]
struct Entry {
    answer: CachedAnswer,
    expires: f64,
    /// Effective (clamped) TTL this generation was stored with.
    ttl: u32,
    slot: u64,
    rank: u128,
    meta: EntryMeta,
}

/// Deterministic virtual-time token bucket for the prefetch budget.
#[derive(Debug, Clone, Copy)]
struct PrefetchBudget {
    tokens: f64,
    last: f64,
}

impl PrefetchBudget {
    fn new(cfg: &PrefetchConfig) -> Self {
        PrefetchBudget {
            tokens: cfg.burst,
            last: 0.0,
        }
    }

    fn try_take(&mut self, now: f64, cfg: &PrefetchConfig) -> bool {
        let elapsed = (now - self.last).max(0.0);
        self.tokens = (self.tokens + elapsed * cfg.rate_per_sec).min(cfg.burst);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// The capacity-bounded, TTL-aware resolver cache.
#[derive(Debug)]
pub struct ResolverCache {
    config: CacheConfig,
    policy: Box<dyn EvictionPolicy>,
    /// name → qtype → entry; two levels so lookups borrow the qname.
    entries: BTreeMap<Name, BTreeMap<u16, Entry>>,
    /// Eviction order: minimum `(rank, slot)` is evicted first.
    by_rank: BTreeSet<(u128, u64)>,
    /// slot → key, to resolve an eviction victim back to its entry.
    slot_key: BTreeMap<u64, (Name, u16)>,
    count: usize,
    seq: u64,
    next_slot: u64,
    budget: PrefetchBudget,
    stats: CacheStats,
}

impl ResolverCache {
    /// A cache with the given configuration.
    pub fn new(config: CacheConfig) -> Self {
        let budget = PrefetchBudget::new(&config.prefetch.unwrap_or_default());
        ResolverCache {
            policy: config.policy.build(),
            config,
            entries: BTreeMap::new(),
            by_rank: BTreeSet::new(),
            slot_key: BTreeMap::new(),
            count: 0,
            seq: 0,
            next_slot: 0,
            budget,
            stats: CacheStats::default(),
        }
    }

    /// The legacy shape: unbounded, LRU-ranked, no prefetch.
    pub fn unbounded() -> Self {
        ResolverCache::new(CacheConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The active policy's label.
    pub fn policy_label(&self) -> &'static str {
        self.policy.label()
    }

    /// Look up a question at time `now`. Expired entries miss and are
    /// evicted lazily; hits refresh the entry's recency/frequency
    /// bookkeeping (and thus its eviction rank).
    pub fn get(&mut self, name: &Name, qtype: RecordType, now: f64) -> Option<CachedAnswer> {
        let t = qtype.to_u16();
        let mut hit = None;
        let mut found_expired = false;
        if let Some(e) = self.entries.get_mut(name).and_then(|m| m.get_mut(&t)) {
            if e.expires > now {
                self.seq += 1;
                e.meta.last_access_seq = self.seq;
                e.meta.requests = e.meta.requests.saturating_add(1);
                let new_rank = self.policy.rank(&e.meta, now);
                self.by_rank.remove(&(e.rank, e.slot));
                self.by_rank.insert((new_rank, e.slot));
                e.rank = new_rank;
                hit = Some(e.answer.clone());
            } else {
                found_expired = true;
            }
        }
        if found_expired {
            self.remove_key(name, t);
            self.stats.expired += 1;
        }
        match hit {
            Some(answer) => {
                self.stats.hits += 1;
                Some(answer)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a positive answer; the effective TTL is the minimum
    /// record TTL, clamped per RFC 2181 §8 (31-bit bound → 0, then the
    /// configured `[min_ttl, max_ttl]` window). Empty or already-expired
    /// sets (effective TTL 0) are rejected, never inserted.
    pub fn put_positive(
        &mut self,
        name: &Name,
        qtype: RecordType,
        records: Vec<Record>,
        now: f64,
        fill: FillInfo,
    ) -> PutOutcome {
        let Some(raw) = records.iter().map(|r| r.ttl).min() else {
            self.stats.rejected += 1;
            return PutOutcome::default();
        };
        let ttl = self.clamp_positive_ttl(raw);
        if ttl == 0 {
            self.stats.rejected += 1;
            return PutOutcome::default();
        }
        self.insert(name, qtype, CachedAnswer::Positive(records), ttl, now, fill)
    }

    /// Insert a negative answer (RFC 2308). `soa_ttl` is the TTL
    /// derived from the authority-section SOA ([`crate::negative_ttl`]);
    /// `None` falls back to the named [`CacheConfig::neg_ttl_default`].
    /// Either way the value is capped at [`CacheConfig::neg_ttl_cap`].
    pub fn put_negative(
        &mut self,
        name: &Name,
        qtype: RecordType,
        rcode: Rcode,
        soa_ttl: Option<u32>,
        now: f64,
        fill: FillInfo,
    ) -> PutOutcome {
        let raw = soa_ttl.unwrap_or(self.config.neg_ttl_default);
        let ttl = clamp_rfc2181(raw).min(self.config.neg_ttl_cap);
        if ttl == 0 {
            self.stats.rejected += 1;
            return PutOutcome::default();
        }
        self.insert(name, qtype, CachedAnswer::Negative(rcode), ttl, now, fill)
    }

    /// True if a fresh entry for the key should be refreshed now:
    /// prefetch is configured, the entry's remaining TTL is inside the
    /// trigger window, this generation hasn't already been refreshed,
    /// and the rate budget grants a token. Granting arms the entry so
    /// the caller is the only one who sees `true` for this generation.
    pub fn prefetch_due(&mut self, name: &Name, qtype: RecordType, now: f64) -> bool {
        let Some(pf) = self.config.prefetch else {
            return false;
        };
        let t = qtype.to_u16();
        let Some(e) = self.entries.get_mut(name).and_then(|m| m.get_mut(&t)) else {
            return false;
        };
        if e.meta.prefetch_armed || e.expires <= now {
            return false;
        }
        let remaining = e.expires - now;
        if remaining > pf.trigger_fraction * e.ttl as f64 {
            return false;
        }
        if !self.budget.try_take(now, &pf) {
            return false;
        }
        e.meta.prefetch_armed = true;
        self.stats.prefetch_grants += 1;
        true
    }

    /// Entries currently resident (including not-yet-evicted expired
    /// ones).
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop everything (a "cold cache" reset — zone construction
    /// requires cold-cache walks, paper §2.3). Counters survive.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.by_rank.clear();
        self.slot_key.clear();
        self.count = 0;
    }

    /// RFC 2181 §8 bound, then the configured clamp window. A TTL of 0
    /// stays 0 ("do not cache") — the window only applies to cacheable
    /// answers.
    fn clamp_positive_ttl(&self, raw: u32) -> u32 {
        let bounded = clamp_rfc2181(raw);
        if bounded == 0 {
            return 0;
        }
        bounded.clamp(self.config.min_ttl.max(1), self.config.max_ttl)
    }

    fn insert(
        &mut self,
        name: &Name,
        qtype: RecordType,
        answer: CachedAnswer,
        ttl: u32,
        now: f64,
        fill: FillInfo,
    ) -> PutOutcome {
        if self.config.capacity == 0 {
            self.stats.rejected += 1;
            return PutOutcome::default();
        }
        let t = qtype.to_u16();
        // Refresh: drop the old generation but keep its lifetime stats.
        let carried = self.remove_key(name, t);
        let mut evicted = 0;
        while self.count >= self.config.capacity {
            if !self.evict_one() {
                break;
            }
            evicted += 1;
        }
        self.seq += 1;
        let meta = EntryMeta {
            first_seen: carried.map(|m| m.first_seen).unwrap_or(now),
            requests: carried
                .map(|m| m.requests)
                .unwrap_or(0)
                .saturating_add(fill.requests.max(1)),
            last_access_seq: self.seq,
            fill_latency: fill.latency.max(0.0),
            prefetch_armed: false,
        };
        let rank = self.policy.rank(&meta, now);
        let slot = self.next_slot;
        self.next_slot += 1;
        self.entries.entry(name.clone()).or_default().insert(
            t,
            Entry {
                answer,
                expires: now + ttl as f64,
                ttl,
                slot,
                rank,
                meta,
            },
        );
        self.by_rank.insert((rank, slot));
        self.slot_key.insert(slot, (name.clone(), t));
        self.count += 1;
        self.stats.inserts += 1;
        self.stats.evictions += evicted as u64;
        PutOutcome {
            inserted: true,
            evicted,
        }
    }

    /// Remove the entry for (name, t) if present, returning its meta
    /// (for refresh carry-over).
    fn remove_key(&mut self, name: &Name, t: u16) -> Option<EntryMeta> {
        let types = self.entries.get_mut(name)?;
        let e = types.remove(&t)?;
        if types.is_empty() {
            self.entries.remove(name);
        }
        self.by_rank.remove(&(e.rank, e.slot));
        self.slot_key.remove(&e.slot);
        self.count = self.count.saturating_sub(1);
        Some(e.meta)
    }

    /// Evict the minimum-ranked entry; false if the store is empty.
    fn evict_one(&mut self) -> bool {
        let Some(&(rank, slot)) = self.by_rank.iter().next() else {
            return false;
        };
        self.by_rank.remove(&(rank, slot));
        let Some((name, t)) = self.slot_key.remove(&slot) else {
            return false;
        };
        if let Some(types) = self.entries.get_mut(&name) {
            types.remove(&t);
            if types.is_empty() {
                self.entries.remove(&name);
            }
        }
        self.count = self.count.saturating_sub(1);
        true
    }
}

/// RFC 2181 §8: TTL is a 31-bit unsigned value; a received TTL with the
/// high bit set must be treated as zero.
fn clamp_rfc2181(ttl: u32) -> u32 {
    if ttl > i32::MAX as u32 {
        0
    } else {
        ttl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolicyKind;
    use dns_wire::RData;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn a_rec(name: &str, ttl: u32) -> Record {
        Record::new(n(name), ttl, RData::A("1.2.3.4".parse().unwrap()))
    }

    fn put(c: &mut ResolverCache, name: &str, ttl: u32, now: f64) -> PutOutcome {
        c.put_positive(
            &n(name),
            RecordType::A,
            vec![a_rec(name, ttl)],
            now,
            FillInfo::default(),
        )
    }

    #[test]
    fn positive_hit_until_ttl() {
        let mut c = ResolverCache::unbounded();
        put(&mut c, "www.example", 60, 100.0);
        assert!(c.get(&n("www.example"), RecordType::A, 120.0).is_some());
        assert!(c.get(&n("www.example"), RecordType::A, 159.9).is_some());
        assert!(c.get(&n("www.example"), RecordType::A, 160.1).is_none());
        assert!(c.is_empty(), "expired entry evicted lazily");
        assert_eq!(c.stats().expired, 1);
    }

    #[test]
    fn empty_record_set_is_rejected_not_inserted() {
        // The first-generation cache inserted an already-expired entry
        // here (expires = now + 0); the store must skip it entirely.
        let mut c = ResolverCache::unbounded();
        let out = c.put_positive(&n("x."), RecordType::A, vec![], 5.0, FillInfo::default());
        assert!(!out.inserted);
        assert!(c.is_empty());
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn zero_ttl_set_is_rejected_not_inserted() {
        let mut c = ResolverCache::unbounded();
        let out = put(&mut c, "x.", 0, 5.0);
        assert!(!out.inserted);
        assert!(c.is_empty());
    }

    #[test]
    fn rfc2181_high_bit_ttl_treated_as_zero() {
        let mut c = ResolverCache::unbounded();
        let out = put(&mut c, "x.", 0x8000_0001, 5.0);
        assert!(!out.inserted, "31-bit overflow means do-not-cache");
    }

    #[test]
    fn absurd_ttl_clamped_to_max() {
        let mut c = ResolverCache::new(CacheConfig {
            max_ttl: 3600,
            ..CacheConfig::default()
        });
        put(&mut c, "x.", 2_000_000, 0.0);
        assert!(c.get(&n("x."), RecordType::A, 3599.0).is_some());
        assert!(c.get(&n("x."), RecordType::A, 3601.0).is_none());
    }

    #[test]
    fn min_ttl_clamp_raises_short_ttls() {
        let mut c = ResolverCache::new(CacheConfig {
            min_ttl: 10,
            ..CacheConfig::default()
        });
        put(&mut c, "x.", 1, 0.0);
        assert!(c.get(&n("x."), RecordType::A, 9.0).is_some(), "raised to 10s");
    }

    #[test]
    fn min_ttl_of_set_governs() {
        let mut c = ResolverCache::unbounded();
        c.put_positive(
            &n("x.example"),
            RecordType::A,
            vec![a_rec("x.example", 300), a_rec("x.example", 10)],
            0.0,
            FillInfo::default(),
        );
        assert!(c.get(&n("x.example"), RecordType::A, 9.0).is_some());
        assert!(c.get(&n("x.example"), RecordType::A, 11.0).is_none());
    }

    #[test]
    fn negative_soa_ttl_and_fallback() {
        let mut c = ResolverCache::unbounded();
        c.put_negative(
            &n("no."),
            RecordType::A,
            Rcode::NxDomain,
            Some(7),
            0.0,
            FillInfo::default(),
        );
        assert!(matches!(
            c.get(&n("no."), RecordType::A, 6.0),
            Some(CachedAnswer::Negative(Rcode::NxDomain))
        ));
        assert!(c.get(&n("no."), RecordType::A, 8.0).is_none(), "SOA TTL governs");
        // No SOA: the named default (30 s) applies.
        c.put_negative(&n("no2."), RecordType::A, Rcode::NxDomain, None, 0.0, FillInfo::default());
        assert!(c.get(&n("no2."), RecordType::A, 29.0).is_some());
        assert!(c.get(&n("no2."), RecordType::A, 31.0).is_none());
    }

    #[test]
    fn negative_ttl_capped() {
        let mut c = ResolverCache::unbounded();
        c.put_negative(
            &n("no."),
            RecordType::A,
            Rcode::NxDomain,
            Some(86_400),
            0.0,
            FillInfo::default(),
        );
        assert!(c.get(&n("no."), RecordType::A, 10_799.0).is_some());
        assert!(c.get(&n("no."), RecordType::A, 10_801.0).is_none(), "capped at 3h");
    }

    #[test]
    fn type_distinguishes_entries() {
        let mut c = ResolverCache::unbounded();
        put(&mut c, "x.example", 60, 0.0);
        assert!(c.get(&n("x.example"), RecordType::AAAA, 1.0).is_none());
        assert!(c.get(&n("x.example"), RecordType::A, 1.0).is_some());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResolverCache::new(CacheConfig::bounded(2, PolicyKind::Lru));
        put(&mut c, "a.", 600, 0.0);
        put(&mut c, "b.", 600, 1.0);
        // Touch a so b is the LRU victim.
        assert!(c.get(&n("a."), RecordType::A, 2.0).is_some());
        let out = put(&mut c, "c.", 600, 3.0);
        assert_eq!(out.evicted, 1);
        assert!(c.get(&n("b."), RecordType::A, 4.0).is_none(), "b evicted");
        assert!(c.get(&n("a."), RecordType::A, 4.0).is_some());
        assert!(c.get(&n("c."), RecordType::A, 4.0).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut c = ResolverCache::new(CacheConfig::bounded(2, PolicyKind::LfuLite));
        put(&mut c, "hot.", 600, 0.0);
        put(&mut c, "cold.", 600, 1.0);
        for i in 0..5 {
            assert!(c.get(&n("hot."), RecordType::A, 2.0 + i as f64).is_some());
        }
        // cold. is more recent than hot. but far less frequent.
        assert!(c.get(&n("cold."), RecordType::A, 8.0).is_some());
        put(&mut c, "new.", 600, 9.0);
        assert!(c.get(&n("cold."), RecordType::A, 10.0).is_none(), "cold evicted");
        assert!(c.get(&n("hot."), RecordType::A, 10.0).is_some());
    }

    #[test]
    fn delay_aware_keeps_expensive_entry() {
        let mut c = ResolverCache::new(CacheConfig::bounded(2, PolicyKind::DelayAware));
        // slow.: expensive fill that aggregated many waiters.
        c.put_positive(
            &n("slow."),
            RecordType::A,
            vec![a_rec("slow.", 600)],
            0.0,
            FillInfo {
                latency: 2.0,
                requests: 50,
            },
        );
        // fast.: cheap fill, single requester, but more recent.
        c.put_positive(
            &n("fast."),
            RecordType::A,
            vec![a_rec("fast.", 600)],
            1.0,
            FillInfo {
                latency: 0.001,
                requests: 1,
            },
        );
        put(&mut c, "new.", 600, 2.0);
        assert!(c.get(&n("slow."), RecordType::A, 3.0).is_some(), "expensive kept");
        assert!(c.get(&n("fast."), RecordType::A, 3.0).is_none(), "cheap evicted");
    }

    #[test]
    fn eviction_order_is_deterministic_across_runs() {
        let run = |kind: PolicyKind| -> Vec<bool> {
            let mut c = ResolverCache::new(CacheConfig::bounded(3, kind));
            for i in 0..8 {
                put(&mut c, &format!("k{i}."), 600, i as f64);
                if i % 2 == 0 {
                    c.get(&n(&format!("k{}.", i / 2)), RecordType::A, i as f64 + 0.5);
                }
            }
            (0..8)
                .map(|i| c.get(&n(&format!("k{i}.")), RecordType::A, 20.0).is_some())
                .collect()
        };
        for kind in PolicyKind::ALL {
            assert_eq!(run(kind), run(kind), "{kind:?} residency must be reproducible");
        }
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let mut c = ResolverCache::new(CacheConfig::bounded(0, PolicyKind::Lru));
        let out = put(&mut c, "a.", 600, 0.0);
        assert!(!out.inserted);
        assert!(c.is_empty());
    }

    #[test]
    fn refresh_carries_lifetime_stats() {
        let mut c = ResolverCache::unbounded();
        put(&mut c, "a.", 10, 0.0);
        for t in 1..5 {
            assert!(c.get(&n("a."), RecordType::A, t as f64).is_some());
        }
        // Refresh after expiry; requests must accumulate, first_seen hold.
        c.put_positive(
            &n("a."),
            RecordType::A,
            vec![a_rec("a.", 10)],
            11.0,
            FillInfo {
                latency: 0.04,
                requests: 3,
            },
        );
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().inserts, 2);
    }

    #[test]
    fn prefetch_due_fires_once_in_window_and_respects_budget() {
        let cfg = CacheConfig {
            prefetch: Some(PrefetchConfig {
                trigger_fraction: 0.2,
                rate_per_sec: 0.0, // no refill: only the burst is spendable
                burst: 1.0,
            }),
            ..CacheConfig::default()
        };
        let mut c = ResolverCache::new(cfg);
        put(&mut c, "hot.", 100, 0.0);
        put(&mut c, "hot2.", 100, 0.0);
        assert!(!c.prefetch_due(&n("hot."), RecordType::A, 50.0), "outside window");
        assert!(c.prefetch_due(&n("hot."), RecordType::A, 85.0), "inside last 20%");
        assert!(
            !c.prefetch_due(&n("hot."), RecordType::A, 86.0),
            "armed: one refresh per generation"
        );
        assert!(
            !c.prefetch_due(&n("hot2."), RecordType::A, 85.0),
            "budget of 1 token spent"
        );
        // A refresh re-arms the entry.
        put(&mut c, "hot.", 100, 90.0);
        assert!(!c.prefetch_due(&n("hot."), RecordType::A, 100.0));
        assert_eq!(c.stats().prefetch_grants, 1);
    }

    #[test]
    fn prefetch_budget_refills_over_time() {
        let cfg = CacheConfig {
            prefetch: Some(PrefetchConfig {
                trigger_fraction: 1.0, // whole lifetime is the window
                rate_per_sec: 1.0,
                burst: 1.0,
            }),
            ..CacheConfig::default()
        };
        let mut c = ResolverCache::new(cfg);
        put(&mut c, "a.", 1000, 0.0);
        put(&mut c, "b.", 1000, 0.0);
        assert!(c.prefetch_due(&n("a."), RecordType::A, 1.0));
        assert!(!c.prefetch_due(&n("b."), RecordType::A, 1.1), "bucket empty");
        assert!(c.prefetch_due(&n("b."), RecordType::A, 3.0), "refilled at 1/s");
    }

    #[test]
    fn clear_resets_residency() {
        let mut c = ResolverCache::unbounded();
        put(&mut c, "x.example", 60, 0.0);
        c.clear();
        assert!(c.get(&n("x.example"), RecordType::A, 0.0).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn hit_miss_counters() {
        let mut c = ResolverCache::unbounded();
        put(&mut c, "x.example", 60, 0.0);
        c.get(&n("x.example"), RecordType::A, 1.0);
        c.get(&n("y.example"), RecordType::A, 1.0);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }
}
