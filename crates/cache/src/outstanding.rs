//! The outstanding-request table: in-flight query aggregation.
//!
//! When a lookup misses the cache but an upstream resolution for the
//! same (qname, qtype) is already in flight, the new request *joins*
//! the in-flight entry instead of launching a duplicate resolution.
//! When the single upstream answer lands, it fans out to every waiter.
//! Requests served this way are *delayed hits*: cheaper than a full
//! miss but slower than a cache hit, and per-waiter arrival times are
//! recorded so each one's extra latency is accountable.
//!
//! The table is generic over the waiter payload `W` (whatever the
//! resolver needs to answer a client: source address, original query,
//! …). Keys are kept in an ordered map so iteration order — and thus
//! any transcript derived from it — is deterministic (ldp-lint D2).

use std::collections::BTreeMap;

use dns_wire::{Name, RecordType};

/// One waiter parked on an in-flight resolution.
#[derive(Debug, Clone)]
pub struct WaiterSlot<W> {
    /// When this waiter arrived (seconds, same epoch as the caller's
    /// clock) — the fan-out subtracts this from the completion time to
    /// charge each waiter exactly the delay it actually experienced.
    pub arrived: f64,
    /// Caller payload needed to deliver the answer.
    pub waiter: W,
}

#[derive(Debug)]
struct Inflight<W> {
    /// Opaque caller token identifying the in-flight resolution (the
    /// resolver's task id), so completions can be routed back.
    token: u64,
    /// When the lead miss launched the resolution.
    started: f64,
    /// Lead waiter first, coalesced joiners after, in arrival order.
    waiters: Vec<WaiterSlot<W>>,
}

/// A completed resolution, returned by [`OutstandingTable::complete`].
#[derive(Debug)]
pub struct Completed<W> {
    /// The token the resolution was begun with.
    pub token: u64,
    /// When the lead miss launched it.
    pub started: f64,
    /// Everyone owed an answer, lead first, in arrival order. Empty for
    /// prefetch refreshes (no client is waiting).
    pub waiters: Vec<WaiterSlot<W>>,
}

/// Cumulative aggregation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutstandingStats {
    /// Resolutions launched (lead misses + prefetch refreshes).
    pub leads: u64,
    /// Requests that coalesced onto an already-in-flight resolution
    /// instead of launching their own (the delayed-hit count).
    pub coalesced: u64,
}

/// The in-flight aggregation table. See the module docs.
#[derive(Debug)]
pub struct OutstandingTable<W> {
    inflight: BTreeMap<(Name, u16), Inflight<W>>,
    stats: OutstandingStats,
}

impl<W> Default for OutstandingTable<W> {
    fn default() -> Self {
        OutstandingTable::new()
    }
}

impl<W> OutstandingTable<W> {
    /// An empty table.
    pub fn new() -> Self {
        OutstandingTable {
            inflight: BTreeMap::new(),
            stats: OutstandingStats::default(),
        }
    }

    fn key(name: &Name, qtype: RecordType) -> (Name, u16) {
        (name.clone(), qtype.to_u16())
    }

    /// True if a resolution for (name, qtype) is already in flight.
    pub fn contains(&self, name: &Name, qtype: RecordType) -> bool {
        self.inflight
            .contains_key(&(name.clone(), qtype.to_u16()))
    }

    /// Try to coalesce onto an in-flight resolution. Returns the
    /// waiter's position (1-based among joiners is position ≥ 1; the
    /// lead holds 0) if one was in flight, or `None` — in which case
    /// the caller is the lead miss and must launch the resolution and
    /// [`begin`](Self::begin) it. The waiter payload is returned back
    /// untouched on `None` so the caller keeps ownership.
    pub fn join(&mut self, name: &Name, qtype: RecordType, waiter: W, now: f64) -> Result<usize, W> {
        match self.inflight.get_mut(&Self::key(name, qtype)) {
            Some(f) => {
                f.waiters.push(WaiterSlot {
                    arrived: now,
                    waiter,
                });
                self.stats.coalesced += 1;
                Ok(f.waiters.len() - 1)
            }
            None => Err(waiter),
        }
    }

    /// Register a new in-flight resolution with its lead waiter. The
    /// caller must have gotten `Err` from [`join`](Self::join) first
    /// (beginning a key that is already in flight replaces it; callers
    /// uphold the one-resolution-per-key invariant).
    pub fn begin(&mut self, name: &Name, qtype: RecordType, token: u64, waiter: W, now: f64) {
        self.inflight.insert(
            Self::key(name, qtype),
            Inflight {
                token,
                started: now,
                waiters: vec![WaiterSlot {
                    arrived: now,
                    waiter,
                }],
            },
        );
        self.stats.leads += 1;
    }

    /// Register an in-flight *prefetch* resolution: no client waits on
    /// it, but its presence still dedups — a real miss arriving while
    /// the refresh is in flight joins it as a delayed hit.
    pub fn begin_prefetch(&mut self, name: &Name, qtype: RecordType, token: u64, now: f64) {
        self.inflight.insert(
            Self::key(name, qtype),
            Inflight {
                token,
                started: now,
                waiters: Vec::new(),
            },
        );
        self.stats.leads += 1;
    }

    /// Complete (or abandon) the in-flight resolution for a key,
    /// handing back everyone owed an answer.
    pub fn complete(&mut self, name: &Name, qtype: RecordType) -> Option<Completed<W>> {
        let f = self.inflight.remove(&Self::key(name, qtype))?;
        Some(Completed {
            token: f.token,
            started: f.started,
            waiters: f.waiters,
        })
    }

    /// The token an in-flight key was begun with.
    pub fn token_of(&self, name: &Name, qtype: RecordType) -> Option<u64> {
        self.inflight
            .get(&(name.clone(), qtype.to_u16()))
            .map(|f| f.token)
    }

    /// Keys currently in flight.
    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    /// True if nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> OutstandingStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn lead_then_joiners_fan_out_in_arrival_order() {
        let mut t: OutstandingTable<&'static str> = OutstandingTable::new();
        // First request: nothing in flight, caller becomes the lead.
        let lead = t.join(&n("x."), RecordType::A, "lead", 1.0);
        assert!(lead.is_err());
        t.begin(&n("x."), RecordType::A, 42, "lead", 1.0);
        // Two more arrive while the resolution is outstanding.
        assert_eq!(t.join(&n("x."), RecordType::A, "second", 1.5), Ok(1));
        assert_eq!(t.join(&n("x."), RecordType::A, "third", 2.0), Ok(2));
        assert_eq!(t.len(), 1, "one key in flight despite three requests");

        let done = t.complete(&n("x."), RecordType::A).unwrap();
        assert_eq!(done.token, 42);
        assert_eq!(done.started, 1.0);
        let who: Vec<_> = done.waiters.iter().map(|w| w.waiter).collect();
        assert_eq!(who, ["lead", "second", "third"]);
        let arrived: Vec<_> = done.waiters.iter().map(|w| w.arrived).collect();
        assert_eq!(arrived, [1.0, 1.5, 2.0]);
        assert!(t.is_empty());
        assert_eq!(t.stats(), OutstandingStats { leads: 1, coalesced: 2 });
    }

    #[test]
    fn distinct_qtypes_do_not_coalesce() {
        let mut t: OutstandingTable<u32> = OutstandingTable::new();
        t.begin(&n("x."), RecordType::A, 1, 10, 0.0);
        assert!(t.join(&n("x."), RecordType::AAAA, 11, 0.5).is_err());
        t.begin(&n("x."), RecordType::AAAA, 2, 11, 0.5);
        assert_eq!(t.len(), 2);
        assert_eq!(t.token_of(&n("x."), RecordType::A), Some(1));
        assert_eq!(t.token_of(&n("x."), RecordType::AAAA), Some(2));
    }

    #[test]
    fn prefetch_has_no_waiters_but_dedups() {
        let mut t: OutstandingTable<&'static str> = OutstandingTable::new();
        t.begin_prefetch(&n("hot."), RecordType::A, 7, 5.0);
        assert!(t.contains(&n("hot."), RecordType::A));
        // A real miss arriving during the refresh becomes a delayed hit.
        assert_eq!(t.join(&n("hot."), RecordType::A, "late", 5.5), Ok(0));
        let done = t.complete(&n("hot."), RecordType::A).unwrap();
        assert_eq!(done.waiters.len(), 1);
        assert_eq!(done.waiters[0].waiter, "late");
    }

    #[test]
    fn complete_unknown_key_is_none() {
        let mut t: OutstandingTable<()> = OutstandingTable::new();
        assert!(t.complete(&n("missing."), RecordType::A).is_none());
    }
}
