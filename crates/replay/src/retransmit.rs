//! Per-query UDP retransmission state for the sim replay client.
//!
//! UDP loss is silent — there is no `Closed` event to hang recovery
//! on, so lost queries need timer-driven retransmits. Each query gets
//! its own [`RetryBudget`] seeded from `(run seed, seq)`, which buys
//! two properties at once:
//!
//! - **determinism**: the retransmit schedule of query `seq` is a pure
//!   function of the run seed, independent of every other query, so a
//!   resumed run that re-executes the query from its original send
//!   deadline re-draws the identical chain;
//! - **checkpointability**: a fuzzy cut can carry each live query's
//!   budget position ([`BudgetSnapshot`]) on its `inflight` line.
//!
//! This module also owns the per-seq send/retry bookkeeping a v2
//! checkpoint needs to split counters into *committed* (completed
//! queries only) and *carried* (still in flight) parts: entries live
//! from first dispatch to completion and are dropped the moment the
//! query completes, so the sums over live entries are exactly the
//! in-flight contributions to the run counters.

use std::collections::BTreeMap;

use ldp_guard::{BudgetSnapshot, RetransmitConfig, RetryBudget};

/// Derive the retransmit-budget seed for one query: a SplitMix64-style
/// mix of the run-level seed and the seq, so per-query jitter streams
/// are decorrelated but reproducible.
fn derive_seed(seed: u64, seq: u64) -> u64 {
    seed ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Live per-query retransmission state: budgets plus send/retry
/// counts, keyed by seq, maintained from first dispatch to completion.
#[derive(Debug, Default)]
pub struct RetransmitState {
    budgets: BTreeMap<u64, RetryBudget>,
    sends: BTreeMap<u64, u32>,
    retx: BTreeMap<u64, u32>,
}

impl RetransmitState {
    /// Empty state (no query dispatched yet).
    pub fn new() -> Self {
        RetransmitState::default()
    }

    /// Record one send (initial dispatch, retransmit, or restart
    /// re-dispatch) of `seq`.
    pub fn note_send(&mut self, seq: u64) {
        *self.sends.entry(seq).or_insert(0) += 1;
    }

    /// Record one retry/retransmit of `seq` (a subset of its sends).
    pub fn note_retx(&mut self, seq: u64) {
        *self.retx.entry(seq).or_insert(0) += 1;
    }

    /// Draw the next retransmit delay (µs) for `seq` from its budget,
    /// creating the budget (seeded from `(seed, seq)`) on first use.
    /// `None` once the budget is exhausted — retransmission for this
    /// query is over, terminally.
    pub fn next_delay_us(&mut self, seq: u64, cfg: &RetransmitConfig, seed: u64) -> Option<u64> {
        self.budgets
            .entry(seq)
            .or_insert_with(|| {
                RetryBudget::new(cfg.max_retx, cfg.base_us, cfg.cap_us, derive_seed(seed, seq))
            })
            .next_delay_us()
    }

    /// Snapshot of `seq`'s budget for a checkpoint `inflight` line
    /// (`None` if the query never armed one).
    pub fn budget_snapshot(&self, seq: u64) -> Option<BudgetSnapshot> {
        self.budgets.get(&seq).map(RetryBudget::snapshot)
    }

    /// Sends of `seq` so far (0 if never dispatched or completed).
    pub fn sends_of(&self, seq: u64) -> u32 {
        self.sends.get(&seq).copied().unwrap_or(0)
    }

    /// Retries/retransmits of `seq` so far.
    pub fn retx_of(&self, seq: u64) -> u32 {
        self.retx.get(&seq).copied().unwrap_or(0)
    }

    /// The query completed: drop all its state. After this the query
    /// contributes to *committed* counters only.
    pub fn complete(&mut self, seq: u64) {
        self.budgets.remove(&seq);
        self.sends.remove(&seq);
        self.retx.remove(&seq);
    }

    /// A querier crash kills the retransmit chains (their timers died
    /// with the process) but keeps the send/retry accounting — those
    /// packets really left the host. Restart re-dispatch re-arms
    /// fresh chains.
    pub fn drop_budgets(&mut self) {
        self.budgets.clear();
    }

    /// Seqs that have been sent at least once and not completed, in
    /// ascending order.
    pub fn live_seqs(&self) -> impl Iterator<Item = u64> + '_ {
        self.sends.keys().copied()
    }

    /// Total `(sends, retries)` carried by live (uncompleted) queries —
    /// the amounts a fuzzy cut subtracts from the run counters to get
    /// their committed values.
    pub fn live_totals(&self) -> (u64, u64) {
        let sends = self.sends.values().map(|&v| u64::from(v)).sum();
        let retx = self.retx.values().map(|&v| u64::from(v)).sum();
        (sends, retx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RetransmitConfig {
        RetransmitConfig { max_retx: 3, base_us: 1_000, cap_us: 8_000 }
    }

    #[test]
    fn per_seq_chains_are_independent_and_reproducible() {
        let mut a = RetransmitState::new();
        let mut b = RetransmitState::new();
        // Interleave draws differently across seqs: per-seq streams
        // must not care.
        let a7: Vec<_> = (0..3).map(|_| a.next_delay_us(7, &cfg(), 99)).collect();
        let _ = a.next_delay_us(8, &cfg(), 99);
        let _ = b.next_delay_us(8, &cfg(), 99);
        let b7: Vec<_> = (0..3).map(|_| b.next_delay_us(7, &cfg(), 99)).collect();
        assert_eq!(a7, b7);
        assert!(a7.iter().all(Option::is_some));
        assert_eq!(a.next_delay_us(7, &cfg(), 99), None, "budget exhausted");
    }

    #[test]
    fn live_totals_track_uncompleted_queries_only() {
        let mut s = RetransmitState::new();
        s.note_send(1);
        s.note_send(2);
        s.note_send(2);
        s.note_retx(2);
        assert_eq!(s.live_totals(), (3, 1));
        assert_eq!(s.live_seqs().collect::<Vec<_>>(), vec![1, 2]);
        s.complete(2);
        assert_eq!(s.live_totals(), (1, 0));
        assert_eq!(s.sends_of(2), 0);
    }

    #[test]
    fn crash_drops_budgets_but_keeps_accounting() {
        let mut s = RetransmitState::new();
        s.note_send(5);
        let first = s.next_delay_us(5, &cfg(), 42);
        assert!(first.is_some());
        assert!(s.budget_snapshot(5).is_some());
        s.drop_budgets();
        assert!(s.budget_snapshot(5).is_none());
        assert_eq!(s.sends_of(5), 1, "sends survive the crash");
        // A fresh chain after restart re-draws from the seed.
        assert_eq!(s.next_delay_us(5, &cfg(), 42), first);
    }
}
