//! # ldp-replay
//!
//! LDplayer's distributed query engine (paper §2.6, §3, Figure 4): a
//! Controller (Reader + Postman) distributes pre-encoded queries through
//! Distributors to Queriers over bounded channels; same-source queries
//! stick to the same querier and the same emulated socket/connection;
//! each query is sent at ΔTᵢ = Δt̄ᵢ − Δtᵢ, re-anchored continuously so
//! pipeline delay never accumulates — or immediately in fast mode.
//!
//! Two drivers share the timing and routing logic:
//! - [`engine`] — real sockets and threads (replay fidelity and
//!   throughput experiments, paper §4);
//! - [`sim_replay`] — a simulator host with per-source connection reuse
//!   and latency logging (the §5.2 what-if experiments).

#![warn(missing_docs)]

pub mod capture;
pub mod clock;
pub mod engine;
pub mod retransmit;
pub mod sim_replay;
pub mod sticky;
pub mod timing;

pub use capture::{parse_tag_seq, Arrival, CaptureServer};
pub use clock::{ReplayClock, VirtualClock, WallClock};
pub use engine::{replay, replay_with_clock, ReplayConfig, ReplayReport, SentRecord};
pub use retransmit::RetransmitState;
pub use sim_replay::{CheckpointStamp, LatencyLog, LatencyRecord, SimReplayClient};
pub use sticky::StickyRouter;
pub use timing::{virtual_deadline, TimingTracker};
