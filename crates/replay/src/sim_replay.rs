//! Replay inside the network simulator: a querier host that emulates
//! every original source, reuses per-source TCP/TLS connections, and
//! logs per-query latency — the client side of the §5.2 experiments
//! (memory, CPU, and the latency-vs-RTT Figures 15a/15b).

use std::collections::BTreeMap;
use std::net::{IpAddr, SocketAddr};
use std::sync::{Arc, Mutex};

use dns_wire::framing::{frame, FrameBuffer};
use dns_wire::{Message, Transport};
use ldp_telemetry as tel;
use ldp_trace::TraceEntry;
use netsim::{ConnId, Ctx, Host, HostId, PacketBytes, SimTime, Simulator, TcpEvent};

/// Interned per-query lifecycle marks (enqueue → send → retx →
/// response → match), keyed by the trace sequence number so sampling
/// keeps or drops a whole lifecycle together. All marks are stamped
/// with the simulator's `ctx.now()` — exact virtual time.
struct QKinds {
    enqueue: tel::KindId,
    send: tel::KindId,
    retx: tel::KindId,
    response: tel::KindId,
    matched: tel::KindId,
}

fn q_kinds() -> &'static QKinds {
    static K: std::sync::OnceLock<QKinds> = std::sync::OnceLock::new();
    K.get_or_init(|| QKinds {
        enqueue: tel::register_kind("q.enqueue"),
        send: tel::register_kind("q.send"),
        retx: tel::register_kind("q.retx"),
        response: tel::register_kind("q.response"),
        matched: tel::register_kind("q.match"),
    })
}

/// One completed query/response pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyRecord {
    /// Index of the query in the replayed trace.
    pub seq: u64,
    /// Send time (seconds, sim clock).
    pub sent_s: f64,
    /// Response arrival time (seconds, sim clock).
    pub replied_s: f64,
    /// Transport the query used.
    pub transport: Transport,
    /// The original source address.
    pub source: IpAddr,
    /// Response size in bytes.
    pub response_bytes: usize,
}

impl LatencyRecord {
    /// Query latency in seconds.
    pub fn latency(&self) -> f64 {
        self.replied_s - self.sent_s
    }
}

/// Shared output log.
pub type LatencyLog = Arc<Mutex<Vec<LatencyRecord>>>;

/// Timer-token namespace for reconnect retries. Trace replay uses the
/// low token space `[0, trace.len())`; retry tokens set the top bit so
/// the two can never collide.
const RETRY_TOKEN_BIT: u64 = 1 << 63;

#[derive(Debug, Clone, Copy)]
struct Pending {
    seq: u64,
    sent_s: f64,
    transport: Transport,
    source: IpAddr,
}

/// The simulated replay client: owns all original source addresses and
/// replays the trace with same-source socket/connection reuse.
pub struct SimReplayClient {
    trace: Vec<TraceEntry>,
    server: SocketAddr,
    /// Force every query onto this transport (otherwise per-entry).
    pub transport_override: Option<Transport>,
    /// Reuse per-source connections (the paper's same-source emulation).
    /// When false, every query opens a fresh connection and closes it
    /// after the response — the ablation baseline that models predict
    /// costs a full extra RTT per query.
    pub reuse_connections: bool,
    /// Per-source open TCP/TLS connection (reused until closed).
    conns: BTreeMap<IpAddr, ConnId>,
    conn_sources: BTreeMap<ConnId, IpAddr>,
    frame_bufs: BTreeMap<ConnId, FrameBuffer>,
    /// In-flight queries by (source, DNS id).
    pending_udp: BTreeMap<(IpAddr, u16), Pending>,
    pending_tcp: BTreeMap<(ConnId, u16), Pending>,
    /// Reconnect-with-backoff for queries orphaned when their
    /// connection dies (server crash, fault-injected kill, refusal):
    /// base delay before the first resend, doubling per attempt.
    /// `None` disables recovery — orphans are simply lost, the
    /// pre-fault behavior.
    pub reconnect_backoff: Option<netsim::SimDuration>,
    /// Resend budget per query across connection deaths.
    pub max_reconnects: u32,
    /// Live retry chains: seq → (original send time, attempts so far).
    retrying: BTreeMap<u64, (f64, u32)>,
    /// Queries queued on a connection still handshaking.
    log: LatencyLog,
    /// Queries sent.
    pub sent: u64,
    /// Fresh connections opened (reuse misses).
    pub connects: u64,
    /// Queries resent after their connection died.
    pub retries: u64,
}

impl SimReplayClient {
    /// New client replaying `trace` against `server`, logging latencies
    /// into `log`.
    pub fn new(trace: Vec<TraceEntry>, server: SocketAddr, log: LatencyLog) -> Self {
        SimReplayClient {
            trace,
            server,
            transport_override: None,
            reuse_connections: true,
            conns: BTreeMap::new(),
            conn_sources: BTreeMap::new(),
            frame_bufs: BTreeMap::new(),
            pending_udp: BTreeMap::new(),
            pending_tcp: BTreeMap::new(),
            reconnect_backoff: Some(netsim::SimDuration::from_millis(100)),
            max_reconnects: 3,
            retrying: BTreeMap::new(),
            log,
            sent: 0,
            connects: 0,
            retries: 0,
        }
    }

    /// The distinct source addresses in the trace (register these with
    /// the simulator for this host).
    pub fn source_addrs(&self) -> Vec<IpAddr> {
        let set: std::collections::BTreeSet<IpAddr> =
            self.trace.iter().map(|e| e.src.ip()).collect();
        set.into_iter().collect()
    }

    /// Schedule one timer per trace entry, offset so the first query
    /// fires at `start`.
    pub fn schedule(sim: &mut Simulator, host: HostId, trace: &[TraceEntry], start: SimTime) {
        let Some(first) = trace.first() else {
            return;
        };
        let t0 = first.time_us;
        for (i, e) in trace.iter().enumerate() {
            let at = start + netsim::SimDuration::from_micros(e.time_us - t0);
            sim.schedule_timer(host, at, i as u64);
        }
    }

    fn send_entry(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        self.dispatch(ctx, idx, None);
    }

    /// Send trace entry `idx`. `first_sent_s` is set on resends so the
    /// logged latency spans from the *original* send — a recovered
    /// query pays for the outage it lived through.
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, idx: usize, first_sent_s: Option<f64>) {
        let entry = &self.trace[idx];
        let transport = self.transport_override.unwrap_or(entry.transport);
        let src = entry.src;
        let payload = entry.message.encode();
        let id = entry.message.id;
        let now_s = ctx.now().as_secs_f64();
        let pending = Pending {
            seq: idx as u64,
            sent_s: first_sent_s.unwrap_or(now_s),
            transport,
            source: src.ip(),
        };
        self.sent += 1;
        if tel::enabled() {
            let k = q_kinds();
            let kind = if first_sent_s.is_some() { k.retx } else { k.send };
            tel::mark_at(ctx.now().as_nanos(), kind, idx as u64, payload.len() as u64);
        }
        match transport {
            Transport::Udp => {
                self.pending_udp.insert((src.ip(), id), pending);
                ctx.send_udp(src, self.server, payload);
            }
            Transport::Tcp | Transport::Tls => {
                let reusable = if self.reuse_connections {
                    self.conns.get(&src.ip()).copied()
                } else {
                    None
                };
                let conn = match reusable {
                    Some(c) => c,
                    None => {
                        // Fresh connection: pays the handshake RTTs.
                        let c = ctx.tcp_connect(src, self.server, transport == Transport::Tls);
                        self.connects += 1;
                        if self.reuse_connections {
                            self.conns.insert(src.ip(), c);
                            self.conn_sources.insert(c, src.ip());
                        }
                        self.frame_bufs.insert(c, FrameBuffer::new());
                        c
                    }
                };
                self.pending_tcp.insert((conn, id), pending);
                ctx.tcp_send(conn, frame(&payload));
            }
        }
    }

    fn complete(&mut self, pending: Pending, now_s: f64, bytes: usize) {
        // An answer — possibly to an earlier attempt — cancels any
        // retry chain and stray duplicate pendings for this query.
        let seq = pending.seq;
        self.retrying.remove(&seq);
        self.pending_tcp.retain(|_, p| p.seq != seq);
        self.pending_udp.retain(|_, p| p.seq != seq);
        if tel::enabled() {
            tel::mark_at((now_s * 1e9) as u64, q_kinds().matched, seq, bytes as u64);
        }
        self.log.lock().unwrap().push(LatencyRecord {
            seq: pending.seq,
            sent_s: pending.sent_s,
            replied_s: now_s,
            transport: pending.transport,
            source: pending.source,
            response_bytes: bytes,
        });
    }
}

impl Host for SimReplayClient {
    fn on_udp(&mut self, ctx: &mut Ctx<'_>, _from: SocketAddr, to: SocketAddr, data: PacketBytes) {
        let Ok(msg) = Message::decode(&data) else {
            return;
        };
        if let Some(p) = self.pending_udp.remove(&(to.ip(), msg.id)) {
            if tel::enabled() {
                tel::mark_at(ctx.now().as_nanos(), q_kinds().response, p.seq, data.len() as u64);
            }
            self.complete(p, ctx.now().as_secs_f64(), data.len());
        }
    }

    fn on_tcp_event(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
        match event {
            TcpEvent::Data { conn, data } => {
                let Some(fb) = self.frame_bufs.get_mut(&conn) else {
                    return;
                };
                fb.extend(&data);
                let mut done = Vec::new();
                while let Some(body) = fb.next_message() {
                    if let Ok(msg) = Message::decode(&body) {
                        if let Some(p) = self.pending_tcp.remove(&(conn, msg.id)) {
                            done.push((p, body.len()));
                        }
                    }
                }
                let now = ctx.now().as_secs_f64();
                let any_done = !done.is_empty();
                for (p, bytes) in done {
                    if tel::enabled() {
                        let t = ctx.now().as_nanos();
                        tel::mark_at(t, q_kinds().response, p.seq, bytes as u64);
                    }
                    self.complete(p, now, bytes);
                }
                // No-reuse ablation: close as soon as the (single)
                // outstanding query on this throwaway connection is
                // answered.
                if !self.reuse_connections
                    && any_done
                    && !self.pending_tcp.keys().any(|(c, _)| *c == conn)
                {
                    ctx.tcp_close(conn);
                    self.frame_bufs.remove(&conn);
                }
            }
            TcpEvent::Closed { conn } => {
                // Idle close, server crash, or refused dial: the next
                // query from this source opens a fresh connection (and
                // pays the handshake).
                if let Some(src) = self.conn_sources.remove(&conn) {
                    self.conns.remove(&src);
                }
                self.frame_bufs.remove(&conn);
                // Queries that died with the connection are resent with
                // exponential backoff rather than silently lost.
                let orphans: Vec<(ConnId, u16)> = self
                    .pending_tcp
                    .keys()
                    .filter(|(c, _)| *c == conn)
                    .copied()
                    .collect();
                for key in orphans {
                    let Some(p) = self.pending_tcp.remove(&key) else {
                        continue;
                    };
                    let Some(base) = self.reconnect_backoff else {
                        continue; // recovery disabled: the query is lost
                    };
                    let chain = self.retrying.entry(p.seq).or_insert((p.sent_s, 0));
                    if chain.1 >= self.max_reconnects {
                        // Budget exhausted: give up on this query.
                        self.retrying.remove(&p.seq);
                        continue;
                    }
                    chain.1 += 1;
                    let delay = base.times(1u64 << (chain.1 - 1).min(16));
                    ctx.set_timer(delay, RETRY_TOKEN_BIT | p.seq);
                }
            }
            TcpEvent::Connected { .. } | TcpEvent::Incoming { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token & RETRY_TOKEN_BIT != 0 {
            let seq = token & !RETRY_TOKEN_BIT;
            // The chain may have been cancelled by a late answer on an
            // earlier attempt — only resend while it is still live.
            let Some(&(sent_s, _)) = self.retrying.get(&seq) else {
                return;
            };
            let idx = seq as usize;
            if idx < self.trace.len() {
                self.retries += 1;
                self.dispatch(ctx, idx, Some(sent_s));
            }
            return;
        }
        let idx = token as usize;
        if idx < self.trace.len() {
            if tel::enabled() {
                tel::mark_at(ctx.now().as_nanos(), q_kinds().enqueue, idx as u64, 0);
            }
            self.send_entry(ctx, idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_server::{ServerEngine, SimDnsServer};
    use dns_wire::{Name, RData, Record, RecordType, Soa};
    use dns_zone::{Catalog, Zone};
    use ldp_trace::{Mutation, Mutator};
    use netsim::{PathConfig, SimConfig, SimDuration, Topology};

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn engine() -> Arc<ServerEngine> {
        let mut z = Zone::new(n("example"));
        z.insert(Record::new(
            n("example"),
            60,
            RData::Soa(Soa {
                mname: n("ns1.example"),
                rname: n("a.example"),
                serial: 1,
                refresh: 1,
                retry: 1,
                expire: 1,
                minimum: 60,
            }),
        ))
        .unwrap();
        z.insert(Record::new(n("*.example"), 60, RData::A("9.9.9.9".parse().unwrap())))
            .unwrap();
        let mut cat = Catalog::new();
        cat.insert(z);
        Arc::new(ServerEngine::with_catalog(cat))
    }

    fn mk_trace(num: u64, gap_us: u64, sources: u64) -> Vec<TraceEntry> {
        (0..num)
            .map(|i| {
                TraceEntry::query(
                    i * gap_us,
                    format!("10.1.0.{}:5000", 1 + i % sources).parse().unwrap(),
                    "10.9.0.1:53".parse().unwrap(),
                    (i % 65536) as u16,
                    format!("u{i}.example").parse().unwrap(),
                    RecordType::A,
                )
            })
            .collect()
    }

    fn run(
        trace: Vec<TraceEntry>,
        transport: Option<Transport>,
        rtt_ms: u64,
        idle_secs: u64,
        horizon_s: f64,
    ) -> (Vec<LatencyRecord>, netsim::HostStats, u64) {
        let mut sim = Simulator::new(
            Topology::uniform(PathConfig {
                rtt: SimDuration::from_millis(rtt_ms),
                bandwidth_bps: None,
                loss: 0.0,
            }),
            SimConfig::default(),
        );
        let server_addr: SocketAddr = "10.9.0.1:53".parse().unwrap();
        let server_id = sim.add_host(
            &[server_addr.ip()],
            Box::new(SimDnsServer::new(
                engine(),
                server_addr,
                Some(SimDuration::from_secs(idle_secs)),
            )),
        );
        let log: LatencyLog = Arc::new(Mutex::new(vec![]));
        let mut client = SimReplayClient::new(trace.clone(), server_addr, log.clone());
        client.transport_override = transport;
        let srcs = client.source_addrs();
        let connects_probe = Arc::new(Mutex::new(0u64));
        let _ = connects_probe;
        let client_id = sim.add_host(&srcs, Box::new(client));
        SimReplayClient::schedule(&mut sim, client_id, &trace, SimTime::ZERO);
        sim.run_until(SimTime::from_secs_f64(horizon_s));
        let stats = sim.stats(server_id);
        let out = log.lock().unwrap().clone();
        (out, stats, 0)
    }

    #[test]
    fn udp_latency_is_one_rtt() {
        let trace = mk_trace(20, 10_000, 5);
        let (log, stats, _) = run(trace, None, 40, 20, 10.0);
        assert_eq!(log.len(), 20);
        for r in &log {
            assert!((r.latency() - 0.040).abs() < 0.002, "latency {}", r.latency());
        }
        assert_eq!(stats.udp_rx, 20);
    }

    #[test]
    fn tcp_first_query_two_rtt_then_one() {
        let trace = mk_trace(3, 50_000, 1); // one source, 50 ms apart
        let (mut log, stats, _) = run(trace, Some(Transport::Tcp), 20, 20, 10.0);
        log.sort_by_key(|r| r.seq);
        assert_eq!(log.len(), 3);
        assert!((log[0].latency() - 0.040).abs() < 0.002, "fresh conn: 2 RTT, got {}", log[0].latency());
        assert!((log[1].latency() - 0.020).abs() < 0.002, "reused conn: 1 RTT, got {}", log[1].latency());
        assert!((log[2].latency() - 0.020).abs() < 0.002);
        assert_eq!(stats.tcp_accepts, 1, "single reused connection");
    }

    #[test]
    fn tls_first_query_four_rtt() {
        // 200 ms apart so the second query lands after the 3-RTT
        // connection setup (60 ms) has fully completed.
        let trace = mk_trace(2, 200_000, 1);
        let (mut log, stats, _) = run(trace, Some(Transport::Tls), 20, 20, 10.0);
        log.sort_by_key(|r| r.seq);
        assert!((log[0].latency() - 0.080).abs() < 0.002, "TLS fresh: 4 RTT, got {}", log[0].latency());
        assert!((log[1].latency() - 0.020).abs() < 0.002, "TLS reused: 1 RTT");
        assert_eq!(stats.tls_accepts, 1);
    }

    #[test]
    fn idle_close_forces_reconnect() {
        // Two queries 10 s apart with a 5 s server idle timeout: the
        // second query pays the handshake again.
        let trace = mk_trace(2, 10_000_000, 1);
        let (mut log, stats, _) = run(trace, Some(Transport::Tcp), 20, 5, 60.0);
        log.sort_by_key(|r| r.seq);
        assert_eq!(log.len(), 2);
        assert!((log[0].latency() - 0.040).abs() < 0.002);
        assert!(
            (log[1].latency() - 0.040).abs() < 0.002,
            "reconnect pays 2 RTT again, got {}",
            log[1].latency()
        );
        assert_eq!(stats.tcp_accepts, 2, "two connections over the run");
    }

    #[test]
    fn transport_mutation_pipeline_works_end_to_end() {
        // Mutate a UDP trace to all-TLS via the trace mutator, then
        // replay — the §5.2 what-if pipeline in miniature.
        let mut trace = mk_trace(10, 20_000, 3);
        Mutator::new(vec![Mutation::SetTransport(Transport::Tls)]).apply(&mut trace);
        let (log, stats, _) = run(trace, None, 10, 20, 10.0);
        assert_eq!(log.len(), 10);
        assert_eq!(stats.tls_rx, 10);
        assert_eq!(stats.udp_rx, 0);
        assert!(log.iter().all(|r| r.transport == Transport::Tls));
    }

    #[test]
    fn per_source_connections_are_separate() {
        let trace = mk_trace(8, 10_000, 4);
        let (log, stats, _) = run(trace, Some(Transport::Tcp), 5, 20, 10.0);
        assert_eq!(log.len(), 8);
        assert_eq!(stats.tcp_accepts, 4, "one connection per source");
    }

    /// Crash the server while a query is in flight on an established
    /// connection, restart it shortly after: with reconnect-with-backoff
    /// the orphaned query is resent on a fresh connection and answered,
    /// and its logged latency spans the whole outage it lived through.
    fn run_crash(backoff: Option<SimDuration>) -> Vec<LatencyRecord> {
        // One source, TCP: q0 at t=0 establishes the connection; q1 at
        // t=0.5 s is in flight when the server dies at t=0.52 s.
        let trace = mk_trace(2, 500_000, 1);
        let mut sim = Simulator::new(
            Topology::uniform(PathConfig {
                rtt: SimDuration::from_millis(40),
                bandwidth_bps: None,
                loss: 0.0,
            }),
            SimConfig::default(),
        );
        let server_addr: SocketAddr = "10.9.0.1:53".parse().unwrap();
        sim.add_host(
            &[server_addr.ip()],
            Box::new(SimDnsServer::new(engine(), server_addr, Some(SimDuration::from_secs(30)))),
        );
        let log: LatencyLog = Arc::new(Mutex::new(vec![]));
        let mut client = SimReplayClient::new(trace.clone(), server_addr, log.clone());
        client.transport_override = Some(Transport::Tcp);
        client.reconnect_backoff = backoff;
        let srcs = client.source_addrs();
        let client_id = sim.add_host(&srcs, Box::new(client));
        SimReplayClient::schedule(&mut sim, client_id, &trace, SimTime::ZERO);
        sim.run_until(SimTime::from_secs_f64(0.52));
        sim.crash_now(server_addr.ip());
        sim.run_until(SimTime::from_secs_f64(0.70));
        sim.restart_now(server_addr.ip());
        sim.run_until(SimTime::from_secs_f64(10.0));
        let mut out = log.lock().unwrap().clone();
        out.sort_by_key(|r| r.seq);
        out
    }

    #[test]
    fn reconnect_with_backoff_recovers_query_lost_to_a_crash() {
        let log = run_crash(Some(SimDuration::from_millis(100)));
        assert_eq!(log.len(), 2, "both queries answered despite the crash: {log:?}");
        assert!((log[0].latency() - 0.080).abs() < 0.002, "q0 unaffected");
        // q1 was sent at 0.5 s, orphaned by the crash, redialed through
        // the outage and answered after the restart — its latency
        // includes the backoff and the second handshake.
        assert!(
            log[1].latency() > 0.25,
            "recovered latency spans the outage, got {}",
            log[1].latency()
        );
        assert!(log[1].latency() < 2.0, "recovery is prompt, got {}", log[1].latency());
    }

    #[test]
    fn without_reconnect_the_orphaned_query_is_lost() {
        let log = run_crash(None);
        assert_eq!(log.len(), 1, "only the pre-crash query completes: {log:?}");
        assert_eq!(log[0].seq, 0);
    }
}
