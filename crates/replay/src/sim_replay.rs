//! Replay inside the network simulator: a querier host that emulates
//! every original source, reuses per-source TCP/TLS connections, and
//! logs per-query latency — the client side of the §5.2 experiments
//! (memory, CPU, and the latency-vs-RTT Figures 15a/15b).

use std::collections::{BTreeMap, BTreeSet};
use std::net::{IpAddr, SocketAddr};
use std::sync::{Arc, Mutex};

use dns_wire::framing::{frame, FrameBuffer};
use dns_wire::{EncodeScratch, Message, Transport};
use ldp_guard::{
    Admission, AdmissionController, Checkpoint, InflightEntry, InflightStatus, RetransmitConfig,
};
use ldp_telemetry as tel;
use ldp_trace::TraceEntry;
use netsim::{ConnId, Ctx, Host, HostId, PacketBytes, SimTime, Simulator, TcpEvent};

use crate::retransmit::RetransmitState;

/// Interned per-query lifecycle marks (enqueue → send → retx →
/// response → match), keyed by the trace sequence number so sampling
/// keeps or drops a whole lifecycle together. All marks are stamped
/// with the simulator's `ctx.now()` — exact virtual time.
struct QKinds {
    enqueue: tel::KindId,
    send: tel::KindId,
    retx: tel::KindId,
    response: tel::KindId,
    matched: tel::KindId,
}

fn q_kinds() -> &'static QKinds {
    static K: std::sync::OnceLock<QKinds> = std::sync::OnceLock::new();
    K.get_or_init(|| QKinds {
        enqueue: tel::register_kind("q.enqueue"),
        send: tel::register_kind("q.send"),
        retx: tel::register_kind("q.retx"),
        response: tel::register_kind("q.response"),
        matched: tel::register_kind("q.match"),
    })
}

/// Guard lifecycle marks. Deliberately outside the `q.*` namespace:
/// checkpoint-resume equality compares only per-query `q.*` events, so
/// shed/resume/restart accounting never breaks transcript equality.
struct GKinds {
    shed: tel::KindId,
    resumed: tel::KindId,
    restarted: tel::KindId,
}

fn g_kinds() -> &'static GKinds {
    static K: std::sync::OnceLock<GKinds> = std::sync::OnceLock::new();
    K.get_or_init(|| GKinds {
        shed: tel::register_kind("replay.shed"),
        resumed: tel::register_kind("replay.resumed"),
        restarted: tel::register_kind("replay.restarted"),
    })
}

/// One completed query/response pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyRecord {
    /// Index of the query in the replayed trace.
    pub seq: u64,
    /// Send time (seconds, sim clock).
    pub sent_s: f64,
    /// Response arrival time (seconds, sim clock).
    pub replied_s: f64,
    /// Transport the query used.
    pub transport: Transport,
    /// The original source address.
    pub source: IpAddr,
    /// Response size in bytes.
    pub response_bytes: usize,
}

impl LatencyRecord {
    /// Query latency in seconds.
    pub fn latency(&self) -> f64 {
        self.replied_s - self.sent_s
    }
}

/// Shared output log.
pub type LatencyLog = Arc<Mutex<Vec<LatencyRecord>>>;

/// Metadata of one committed checkpoint, pushed into
/// [`SimReplayClient::checkpoint_stamps`] at commit time. The document
/// itself replaces its predecessor in `checkpoint_out`; the stamps
/// keep the whole commit history, which is what the crash-storm study
/// gates on ("v1 commits nothing during the storm, v2 keeps
/// committing").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStamp {
    /// Checkpoint format version committed (1 = quiescent, 2 = fuzzy).
    pub version: u8,
    /// Checkpoint ordinal.
    pub epoch: u32,
    /// Virtual commit time (ns).
    pub taken_ns: u64,
    /// Outstanding queries carried (always 0 for v1).
    pub inflight: usize,
}

/// Timer-token namespace for reconnect retries. Trace replay uses the
/// low token space `[0, trace.len())`; retry tokens set the top bit so
/// the two can never collide.
const RETRY_TOKEN_BIT: u64 = 1 << 63;

/// Timer-token namespace for admission re-offers (a `Busy` verdict
/// parks the query and re-offers it after a short poll gap).
const ADMIT_TOKEN_BIT: u64 = 1 << 62;

/// Timer-token namespace for UDP retransmits (low bits carry the seq).
const RETX_TOKEN_BIT: u64 = 1 << 61;

/// Timer token for the fuzzy-checkpoint cadence tick (no seq payload:
/// the chain is a single self-re-arming timer).
const CP_TOKEN_BIT: u64 = 1 << 60;

/// Poll gap between admission re-offers of a parked query (µs, virtual).
const ADMIT_POLL_US: u64 = 1_000;

/// Serialize a [`LatencyRecord`] as one checkpoint `rec` line. `{:?}`
/// prints the shortest f64 representation that round-trips exactly, so
/// a resumed log is byte-identical to the uninterrupted one.
fn record_to_line(r: &LatencyRecord) -> String {
    format!(
        "{} {:?} {:?} {:?} {} {}",
        r.seq, r.sent_s, r.replied_s, r.transport, r.source, r.response_bytes
    )
}

/// Parse a checkpoint `rec` line written by [`record_to_line`].
fn record_from_line(line: &str) -> Option<LatencyRecord> {
    let mut it = line.split_ascii_whitespace();
    let seq = it.next()?.parse().ok()?;
    let sent_s = it.next()?.parse().ok()?;
    let replied_s = it.next()?.parse().ok()?;
    let transport = match it.next()? {
        "Udp" => Transport::Udp,
        "Tcp" => Transport::Tcp,
        "Tls" => Transport::Tls,
        _ => return None,
    };
    let source = it.next()?.parse().ok()?;
    let response_bytes = it.next()?.parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some(LatencyRecord { seq, sent_s, replied_s, transport, source, response_bytes })
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    seq: u64,
    sent_s: f64,
    transport: Transport,
    source: IpAddr,
}

/// The simulated replay client: owns all original source addresses and
/// replays the trace with same-source socket/connection reuse.
pub struct SimReplayClient {
    trace: Vec<TraceEntry>,
    server: SocketAddr,
    /// Force every query onto this transport (otherwise per-entry).
    pub transport_override: Option<Transport>,
    /// Reuse per-source connections (the paper's same-source emulation).
    /// When false, every query opens a fresh connection and closes it
    /// after the response — the ablation baseline that models predict
    /// costs a full extra RTT per query.
    pub reuse_connections: bool,
    /// Per-source open TCP/TLS connection (reused until closed).
    conns: BTreeMap<IpAddr, ConnId>,
    conn_sources: BTreeMap<ConnId, IpAddr>,
    frame_bufs: BTreeMap<ConnId, FrameBuffer>,
    /// In-flight queries by (source, DNS id).
    pending_udp: BTreeMap<(IpAddr, u16), Pending>,
    pending_tcp: BTreeMap<(ConnId, u16), Pending>,
    /// Reconnect-with-backoff for queries orphaned when their
    /// connection dies (server crash, fault-injected kill, refusal):
    /// base delay before the first resend, doubling per attempt.
    /// `None` disables recovery — orphans are simply lost, the
    /// pre-fault behavior.
    pub reconnect_backoff: Option<netsim::SimDuration>,
    /// Resend budget per query across connection deaths.
    pub max_reconnects: u32,
    /// Live retry chains: seq → (original send time, attempts so far).
    retrying: BTreeMap<u64, (f64, u32)>,
    /// Queries queued on a connection still handshaking.
    log: LatencyLog,
    /// Queries sent.
    pub sent: u64,
    /// Fresh connections opened (reuse misses).
    pub connects: u64,
    /// Queries resent after their connection died.
    pub retries: u64,
    /// Seqs answered — this run plus any resumed-from checkpoint.
    completed: BTreeSet<u64>,
    /// Dispatch-side admission window (`None` = unguarded dispatch).
    pub admission: Option<AdmissionController>,
    /// Seqs parked by a `Busy` admission verdict, awaiting re-offer.
    parked: BTreeSet<u64>,
    /// Mirror of the shed seqs for callers that need them after the
    /// client has been moved into the simulator.
    pub shed_out: Option<Arc<Mutex<Vec<u64>>>>,
    /// Take a checkpoint after every this many completions, at the
    /// next quiescent cut (no query in flight, retrying, or parked).
    /// `0` disables checkpointing.
    pub checkpoint_every: u64,
    /// Commit a v2 fuzzy-cut checkpoint every this much virtual time,
    /// on an absolute grid anchored at [`SimReplayClient::origin`]
    /// (ticks at `origin + k·cadence`), regardless of what is in
    /// flight — the storm-proof alternative to `checkpoint_every`'s
    /// quiescent cuts. `None` disables cadence checkpointing. Use one
    /// mechanism or the other: both write into `checkpoint_out`.
    pub checkpoint_cadence: Option<netsim::SimDuration>,
    /// UDP retransmission policy (`None` = no retransmits: a lost UDP
    /// query is lost, the historical behavior). Each query draws its
    /// own deterministic `RetryBudget` seeded from
    /// (`retx_seed`, seq).
    pub udp_retransmit: Option<RetransmitConfig>,
    /// Run-level seed for the per-query retransmit jitter streams.
    pub retx_seed: u64,
    /// Live per-query send/retry bookkeeping and retransmit budgets.
    retx_state: RetransmitState,
    /// Whether the cadence tick chain is currently armed (re-armed
    /// lazily after construction and after a querier crash).
    cadence_armed: bool,
    /// Latest committed checkpoint; each cut replaces its predecessor
    /// (a resume only ever wants the newest one).
    pub checkpoint_out: Option<Arc<Mutex<Option<Checkpoint>>>>,
    /// Commit count per checkpoint mechanism, for studies that gate on
    /// "v1 starves under a storm, v2 does not": (quiescent commits,
    /// fuzzy commits) with their virtual commit times (ns).
    pub checkpoint_stamps: Option<Arc<Mutex<Vec<CheckpointStamp>>>>,
    completed_since_cp: u64,
    epoch: u32,
    /// Virtual-time origin of the schedule — set this to the `start`
    /// passed to [`SimReplayClient::schedule`]. Admission deadlines and
    /// post-crash re-arms are computed from it.
    pub origin: SimTime,
    /// Times this host was power-cycled by the simulator.
    pub restarts: u32,
    /// Reusable encode buffer + compression interner for dispatch.
    scratch: EncodeScratch,
}

impl SimReplayClient {
    /// New client replaying `trace` against `server`, logging latencies
    /// into `log`.
    pub fn new(trace: Vec<TraceEntry>, server: SocketAddr, log: LatencyLog) -> Self {
        SimReplayClient {
            trace,
            server,
            transport_override: None,
            reuse_connections: true,
            conns: BTreeMap::new(),
            conn_sources: BTreeMap::new(),
            frame_bufs: BTreeMap::new(),
            pending_udp: BTreeMap::new(),
            pending_tcp: BTreeMap::new(),
            reconnect_backoff: Some(netsim::SimDuration::from_millis(100)),
            max_reconnects: 3,
            retrying: BTreeMap::new(),
            log,
            sent: 0,
            connects: 0,
            retries: 0,
            completed: BTreeSet::new(),
            admission: None,
            parked: BTreeSet::new(),
            shed_out: None,
            checkpoint_every: 0,
            checkpoint_cadence: None,
            udp_retransmit: None,
            retx_seed: 0,
            retx_state: RetransmitState::new(),
            cadence_armed: false,
            checkpoint_out: None,
            checkpoint_stamps: None,
            completed_since_cp: 0,
            epoch: 0,
            origin: SimTime::ZERO,
            restarts: 0,
            scratch: EncodeScratch::new(),
        }
    }

    /// Rebuild a client from `cp`, continuing a killed run: the log is
    /// seeded with the checkpointed records (in their original push
    /// order), completed seqs will not be re-sent, and the counters
    /// continue their lineage. Pair with
    /// [`SimReplayClient::schedule_resume`], which re-arms only the
    /// uncompleted remainder at the original virtual-time deadlines —
    /// the resumed transcript is byte-identical to an uninterrupted
    /// same-seed run.
    ///
    /// Works for both versions. A v2 fuzzy cut's counters are
    /// *committed* values and its outstanding queries are re-executed
    /// from their original deadlines (carried on `inflight` lines), so
    /// their sends/retries are re-counted by the resumed run itself —
    /// no special handling needed here beyond seeding the same
    /// `retx_seed`/`udp_retransmit` policy the original run used.
    pub fn resume(
        trace: Vec<TraceEntry>,
        server: SocketAddr,
        log: LatencyLog,
        cp: &Checkpoint,
    ) -> Result<Self, String> {
        let mut client = SimReplayClient::new(trace, server, log);
        let mut seeded = Vec::with_capacity(cp.records.len());
        for (i, line) in cp.records.iter().enumerate() {
            let r = record_from_line(line)
                .ok_or_else(|| format!("checkpoint record {i} unparseable: {line:?}"))?;
            client.completed.insert(r.seq);
            seeded.push(r);
        }
        client.log.lock().unwrap().extend(seeded);
        client.sent = cp.counter("sent").unwrap_or(0);
        client.connects = cp.counter("connects").unwrap_or(0);
        client.retries = cp.counter("retries").unwrap_or(0);
        client.restarts = cp.counter("restarts").unwrap_or(0) as u32;
        client.epoch = cp.epoch;
        Ok(client)
    }

    /// The distinct source addresses in the trace (register these with
    /// the simulator for this host).
    pub fn source_addrs(&self) -> Vec<IpAddr> {
        let set: std::collections::BTreeSet<IpAddr> =
            self.trace.iter().map(|e| e.src.ip()).collect();
        set.into_iter().collect()
    }

    /// Schedule one timer per trace entry, offset so the first query
    /// fires at `start`.
    pub fn schedule(sim: &mut Simulator, host: HostId, trace: &[TraceEntry], start: SimTime) {
        let Some(first) = trace.first() else {
            return;
        };
        let t0 = first.time_us;
        for (i, e) in trace.iter().enumerate() {
            let at = start + netsim::SimDuration::from_micros(e.time_us - t0);
            sim.schedule_timer(host, at, i as u64);
        }
    }

    /// Re-arm the uncompleted remainder of `trace` after
    /// [`SimReplayClient::resume`]. Timers keep their original absolute
    /// virtual-time deadlines (the fresh simulator starts at t = 0, so
    /// every one of them is in its future), which is what makes the
    /// resumed transcript byte-identical to an uninterrupted run.
    ///
    /// For a v2 fuzzy cut the checkpoint's `inflight` lines are
    /// authoritative: each carried query is re-armed at the deadline
    /// the checkpoint recorded for it (its *original* send instant —
    /// re-execution, not continuation: the fresh simulator re-runs the
    /// query's full lifecycle, and because every packet fate and
    /// jitter draw is a pure function of seed and virtual time, the
    /// re-run is bit-identical to the original). `start` must be the
    /// same origin the killed run used.
    pub fn schedule_resume(
        sim: &mut Simulator,
        host: HostId,
        trace: &[TraceEntry],
        start: SimTime,
        cp: &Checkpoint,
    ) {
        let done: BTreeSet<u64> = cp
            .records
            .iter()
            .filter_map(|l| record_from_line(l).map(|r| r.seq))
            .collect();
        let carried: BTreeMap<u64, u64> =
            cp.inflight.iter().map(|e| (e.seq, e.deadline_ns)).collect();
        let Some(first) = trace.first() else {
            return;
        };
        let t0 = first.time_us;
        let start_ns = start.as_nanos();
        let mut rearmed = 0u64;
        for (i, e) in trace.iter().enumerate() {
            if done.contains(&(i as u64)) {
                continue;
            }
            let at = match carried.get(&(i as u64)) {
                Some(&deadline_ns) => {
                    start + netsim::SimDuration::from_nanos(deadline_ns.saturating_sub(start_ns))
                }
                None => start + netsim::SimDuration::from_micros(e.time_us - t0),
            };
            sim.schedule_timer(host, at, i as u64);
            rearmed += 1;
        }
        if tel::enabled() {
            tel::mark_at(cp.taken_ns, g_kinds().resumed, rearmed, done.len() as u64);
        }
    }

    /// The trace deadline of entry `idx` in absolute virtual µs.
    fn deadline_us(&self, idx: usize) -> u64 {
        let t0 = self.trace.first().map_or(0, |e| e.time_us);
        self.origin.as_nanos() / 1_000 + (self.trace[idx].time_us - t0)
    }

    /// Offer entry `idx` to the admission window and act on the
    /// verdict: dispatch, park for a later re-offer, or shed.
    fn try_admit(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let seq = idx as u64;
        if self.completed.contains(&seq) {
            return; // answered before a crash/resume boundary
        }
        let deadline_us = self.deadline_us(idx);
        let now_us = ctx.now().as_nanos() / 1_000;
        let Some(adm) = &mut self.admission else {
            self.send_entry(ctx, idx);
            return;
        };
        match adm.offer(seq, deadline_us, now_us) {
            Admission::Admit => {
                self.parked.remove(&seq);
                self.send_entry(ctx, idx);
            }
            Admission::Busy => {
                self.parked.insert(seq);
                ctx.set_timer(
                    netsim::SimDuration::from_micros(ADMIT_POLL_US),
                    ADMIT_TOKEN_BIT | seq,
                );
            }
            Admission::Shed => {
                self.parked.remove(&seq);
                if tel::enabled() {
                    let late = now_us.saturating_sub(deadline_us);
                    tel::mark_at(ctx.now().as_nanos(), g_kinds().shed, seq, late);
                }
                if let Some(out) = &self.shed_out {
                    out.lock().unwrap().push(seq);
                }
            }
        }
    }

    fn send_entry(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        self.dispatch(ctx, idx, None);
    }

    /// Send trace entry `idx`. `first_sent_s` is set on resends so the
    /// logged latency spans from the *original* send — a recovered
    /// query pays for the outage it lived through.
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, idx: usize, first_sent_s: Option<f64>) {
        let entry = &self.trace[idx];
        let transport = self.transport_override.unwrap_or(entry.transport);
        let src = entry.src;
        let id = entry.message.id;
        // Encoded into the reusable scratch, then one copy straight
        // into the refcounted packet buffer the simulator shares.
        let payload: PacketBytes = entry.message.encode_into(&mut self.scratch).into();
        let now_s = ctx.now().as_secs_f64();
        let pending = Pending {
            seq: idx as u64,
            sent_s: first_sent_s.unwrap_or(now_s),
            transport,
            source: src.ip(),
        };
        self.sent += 1;
        self.retx_state.note_send(idx as u64);
        if tel::enabled() {
            let k = q_kinds();
            let kind = if first_sent_s.is_some() { k.retx } else { k.send };
            tel::mark_at(ctx.now().as_nanos(), kind, idx as u64, payload.len() as u64);
        }
        match transport {
            Transport::Udp => {
                self.pending_udp.insert((src.ip(), id), pending);
                ctx.send_udp(src, self.server, payload);
                // Arm the next retransmit from this query's own
                // deterministic budget; exhaustion is terminal (the
                // query stays pending, carried by any fuzzy cut).
                if let Some(cfg) = self.udp_retransmit {
                    if let Some(d) =
                        self.retx_state.next_delay_us(idx as u64, &cfg, self.retx_seed)
                    {
                        ctx.set_timer(
                            netsim::SimDuration::from_micros(d),
                            RETX_TOKEN_BIT | idx as u64,
                        );
                    }
                }
            }
            Transport::Tcp | Transport::Tls => {
                let reusable = if self.reuse_connections {
                    self.conns.get(&src.ip()).copied()
                } else {
                    None
                };
                let conn = match reusable {
                    Some(c) => c,
                    None => {
                        // Fresh connection: pays the handshake RTTs.
                        let c = ctx.tcp_connect(src, self.server, transport == Transport::Tls);
                        self.connects += 1;
                        if self.reuse_connections {
                            self.conns.insert(src.ip(), c);
                            self.conn_sources.insert(c, src.ip());
                        }
                        self.frame_bufs.insert(c, FrameBuffer::new());
                        c
                    }
                };
                self.pending_tcp.insert((conn, id), pending);
                ctx.tcp_send(conn, frame(&payload));
            }
        }
    }

    fn complete(&mut self, pending: Pending, now_s: f64, now_ns: u64, bytes: usize) {
        // An answer — possibly to an earlier attempt — cancels any
        // retry chain and stray duplicate pendings for this query.
        let seq = pending.seq;
        self.retrying.remove(&seq);
        self.retx_state.complete(seq);
        self.pending_tcp.retain(|_, p| p.seq != seq);
        self.pending_udp.retain(|_, p| p.seq != seq);
        if tel::enabled() {
            tel::mark_at((now_s * 1e9) as u64, q_kinds().matched, seq, bytes as u64);
        }
        self.log.lock().unwrap().push(LatencyRecord {
            seq: pending.seq,
            sent_s: pending.sent_s,
            replied_s: now_s,
            transport: pending.transport,
            source: pending.source,
            response_bytes: bytes,
        });
        self.completed.insert(seq);
        self.parked.remove(&seq);
        if let Some(adm) = &mut self.admission {
            adm.complete();
        }
        if self.checkpoint_every > 0 {
            self.completed_since_cp += 1;
            if self.completed_since_cp >= self.checkpoint_every && self.quiescent() {
                self.completed_since_cp = 0;
                self.take_checkpoint(now_ns);
            }
        }
    }

    /// A quiescent cut: nothing in flight, retrying, or parked, so
    /// every telemetry event at or before "now" belongs to a completed
    /// query and the checkpointed log is a clean prefix.
    fn quiescent(&self) -> bool {
        self.pending_udp.is_empty()
            && self.pending_tcp.is_empty()
            && self.retrying.is_empty()
            && self.parked.is_empty()
    }

    /// Commit a v1 checkpoint of the current progress into
    /// `checkpoint_out`, replacing the previous one. Only called at a
    /// quiescent cut, so there is no in-flight state to carry.
    fn take_checkpoint(&mut self, taken_ns: u64) {
        let Some(out) = self.checkpoint_out.clone() else {
            return;
        };
        self.epoch += 1;
        let records: Vec<String> = self.log.lock().unwrap().iter().map(record_to_line).collect();
        let cursor = {
            let mut c = 0u64;
            while self.completed.contains(&c) {
                c += 1;
            }
            c
        };
        let shed = self.admission.as_ref().map_or(0, |a| a.shed_count());
        let cp = Checkpoint {
            version: 1,
            epoch: self.epoch,
            taken_ns,
            cursor,
            counters: vec![
                ("sent".into(), self.sent),
                ("connects".into(), self.connects),
                ("retries".into(), self.retries),
                ("shed".into(), shed),
                ("restarts".into(), self.restarts as u64),
            ],
            records,
            inflight: Vec::new(),
        };
        self.stamp(1, taken_ns, 0);
        *out.lock().unwrap() = Some(cp);
    }

    /// Seqs dispatched-or-parked but not completed — the set a fuzzy
    /// cut must carry. Union of the live bookkeeping, the parked set,
    /// the TCP retry chains, and (belt and braces) anything still
    /// pending.
    fn outstanding_seqs(&self) -> BTreeSet<u64> {
        let mut out: BTreeSet<u64> = self.retx_state.live_seqs().collect();
        out.extend(self.parked.iter().copied());
        out.extend(self.retrying.keys().copied());
        out.extend(self.pending_udp.values().map(|p| p.seq));
        out.extend(self.pending_tcp.values().map(|p| p.seq));
        out
    }

    /// Commit a v2 fuzzy-cut checkpoint at virtual instant `taken_ns`,
    /// whatever is in flight. Counters are committed down to completed
    /// work (live contributions are subtracted and carried per-query
    /// on the `inflight` lines instead), so a resumed run that
    /// re-executes the outstanding queries re-counts them exactly
    /// once. `connects` is carried as-is: connection reuse makes
    /// per-query attribution ill-defined, so TCP-heavy runs should
    /// compare transcripts, not the connects counter, across a resume.
    fn take_fuzzy_checkpoint(&mut self, taken_ns: u64) {
        let Some(out) = self.checkpoint_out.clone() else {
            return;
        };
        self.epoch += 1;
        let records: Vec<String> = self.log.lock().unwrap().iter().map(record_to_line).collect();
        let outstanding = self.outstanding_seqs();
        let cursor = {
            let mut c = 0u64;
            while self.completed.contains(&c) || outstanding.contains(&c) {
                c += 1;
            }
            c
        };
        let (live_sends, live_retx) = self.retx_state.live_totals();
        let shed = self.admission.as_ref().map_or(0, |a| a.shed_count());
        let t0 = self.trace.first().map_or(0, |e| e.time_us);
        let origin_ns = self.origin.as_nanos();
        let inflight: Vec<InflightEntry> = outstanding
            .iter()
            .map(|&seq| {
                let deadline_ns = self
                    .trace
                    .get(seq as usize)
                    .map_or(0, |e| origin_ns + (e.time_us - t0).saturating_mul(1_000));
                let status = if self.parked.contains(&seq) {
                    InflightStatus::Parked
                } else if self.retrying.contains_key(&seq) {
                    InflightStatus::Retrying
                } else {
                    InflightStatus::InFlight
                };
                InflightEntry {
                    seq,
                    deadline_ns,
                    sends: self.retx_state.sends_of(seq),
                    retx: self.retx_state.retx_of(seq),
                    status,
                    budget: self.retx_state.budget_snapshot(seq),
                }
            })
            .collect();
        let cp = Checkpoint {
            version: 2,
            epoch: self.epoch,
            taken_ns,
            cursor,
            counters: vec![
                ("sent".into(), self.sent.saturating_sub(live_sends)),
                ("connects".into(), self.connects),
                ("retries".into(), self.retries.saturating_sub(live_retx)),
                ("shed".into(), shed),
                ("restarts".into(), self.restarts as u64),
            ],
            records,
            inflight,
        };
        self.stamp(2, taken_ns, cp.inflight.len());
        *out.lock().unwrap() = Some(cp);
    }

    /// Record one commit into the stamp history, if a collector is
    /// attached.
    fn stamp(&self, version: u8, taken_ns: u64, inflight: usize) {
        if let Some(stamps) = &self.checkpoint_stamps {
            stamps.lock().unwrap().push(CheckpointStamp {
                version,
                epoch: self.epoch,
                taken_ns,
                inflight,
            });
        }
    }

    /// Arm the cadence tick chain (once) at the next absolute grid
    /// instant `origin + k·cadence` strictly after now. Grid
    /// anchoring — rather than "cadence from when we happened to
    /// arm" — makes an original run and its resumed continuation
    /// commit at the same virtual instants.
    fn maybe_arm_cadence(&mut self, ctx: &mut Ctx<'_>) {
        let Some(cadence) = self.checkpoint_cadence else {
            return;
        };
        if self.cadence_armed {
            return;
        }
        self.cadence_armed = true;
        let cad_ns = cadence.as_nanos().max(1);
        let now_ns = ctx.now().as_nanos();
        let elapsed = now_ns.saturating_sub(self.origin.as_nanos());
        let k = elapsed / cad_ns + 1;
        let at_ns = self.origin.as_nanos() + k.saturating_mul(cad_ns);
        ctx.set_timer(
            netsim::SimDuration::from_nanos(at_ns.saturating_sub(now_ns)),
            CP_TOKEN_BIT,
        );
    }
}

impl Host for SimReplayClient {
    fn on_udp(&mut self, ctx: &mut Ctx<'_>, _from: SocketAddr, to: SocketAddr, data: PacketBytes) {
        let Ok(msg) = Message::decode(&data) else {
            return;
        };
        if let Some(p) = self.pending_udp.remove(&(to.ip(), msg.id)) {
            if tel::enabled() {
                tel::mark_at(ctx.now().as_nanos(), q_kinds().response, p.seq, data.len() as u64);
            }
            self.complete(p, ctx.now().as_secs_f64(), ctx.now().as_nanos(), data.len());
        }
    }

    fn on_tcp_event(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
        match event {
            TcpEvent::Data { conn, data } => {
                let Some(fb) = self.frame_bufs.get_mut(&conn) else {
                    return;
                };
                fb.extend(&data);
                let mut done = Vec::new();
                while let Some(body) = fb.next_message() {
                    if let Ok(msg) = Message::decode(&body) {
                        if let Some(p) = self.pending_tcp.remove(&(conn, msg.id)) {
                            done.push((p, body.len()));
                        }
                    }
                }
                let now = ctx.now().as_secs_f64();
                let now_ns = ctx.now().as_nanos();
                let any_done = !done.is_empty();
                for (p, bytes) in done {
                    if tel::enabled() {
                        tel::mark_at(now_ns, q_kinds().response, p.seq, bytes as u64);
                    }
                    self.complete(p, now, now_ns, bytes);
                }
                // No-reuse ablation: close as soon as the (single)
                // outstanding query on this throwaway connection is
                // answered.
                if !self.reuse_connections
                    && any_done
                    && !self.pending_tcp.keys().any(|(c, _)| *c == conn)
                {
                    ctx.tcp_close(conn);
                    self.frame_bufs.remove(&conn);
                }
            }
            TcpEvent::Closed { conn } => {
                // Idle close, server crash, or refused dial: the next
                // query from this source opens a fresh connection (and
                // pays the handshake).
                if let Some(src) = self.conn_sources.remove(&conn) {
                    self.conns.remove(&src);
                }
                self.frame_bufs.remove(&conn);
                // Queries that died with the connection are resent with
                // exponential backoff rather than silently lost.
                let orphans: Vec<(ConnId, u16)> = self
                    .pending_tcp
                    .keys()
                    .filter(|(c, _)| *c == conn)
                    .copied()
                    .collect();
                for key in orphans {
                    let Some(p) = self.pending_tcp.remove(&key) else {
                        continue;
                    };
                    let Some(base) = self.reconnect_backoff else {
                        continue; // recovery disabled: the query is lost
                    };
                    let chain = self.retrying.entry(p.seq).or_insert((p.sent_s, 0));
                    if chain.1 >= self.max_reconnects {
                        // Budget exhausted: give up on this query.
                        self.retrying.remove(&p.seq);
                        continue;
                    }
                    chain.1 += 1;
                    let delay = base.times(1u64 << (chain.1 - 1).min(16));
                    ctx.set_timer(delay, RETRY_TOKEN_BIT | p.seq);
                }
            }
            TcpEvent::Connected { .. } | TcpEvent::Incoming { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        // The cadence chain is armed off the first timer to fire after
        // construction (or after a crash): every run starts with a
        // trace timer, so the chain is in place before any query
        // completes.
        self.maybe_arm_cadence(ctx);
        if token & RETRY_TOKEN_BIT != 0 {
            let seq = token & !RETRY_TOKEN_BIT;
            // The chain may have been cancelled by a late answer on an
            // earlier attempt — only resend while it is still live.
            let Some(&(sent_s, _)) = self.retrying.get(&seq) else {
                return;
            };
            let idx = seq as usize;
            if idx < self.trace.len() {
                self.retries += 1;
                self.retx_state.note_retx(seq);
                self.dispatch(ctx, idx, Some(sent_s));
            }
            return;
        }
        if token & RETX_TOKEN_BIT != 0 {
            // A UDP retransmit came due. Only resend while the query
            // is still unanswered and actually on the wire (the
            // pending entry holds the original send time the logged
            // latency must span from).
            let seq = token & !RETX_TOKEN_BIT;
            if self.completed.contains(&seq) {
                return;
            }
            let Some(p) = self.pending_udp.values().find(|p| p.seq == seq).copied() else {
                return;
            };
            let idx = seq as usize;
            if idx < self.trace.len() {
                self.retries += 1;
                self.retx_state.note_retx(seq);
                self.dispatch(ctx, idx, Some(p.sent_s));
            }
            return;
        }
        if token == CP_TOKEN_BIT {
            // Fuzzy-cut cadence tick: commit whatever is in flight and
            // re-arm the next grid instant.
            if let Some(cadence) = self.checkpoint_cadence {
                self.take_fuzzy_checkpoint(ctx.now().as_nanos());
                ctx.set_timer(cadence, CP_TOKEN_BIT);
            }
            return;
        }
        if token & ADMIT_TOKEN_BIT != 0 {
            // Re-offer a parked query. The park may have been lifted by
            // a crash (cleared state) or an answer in the meantime.
            let seq = token & !ADMIT_TOKEN_BIT;
            let idx = seq as usize;
            if self.parked.remove(&seq) && idx < self.trace.len() {
                self.try_admit(ctx, idx);
            }
            return;
        }
        let idx = token as usize;
        if idx < self.trace.len() {
            if tel::enabled() {
                tel::mark_at(ctx.now().as_nanos(), q_kinds().enqueue, idx as u64, 0);
            }
            self.try_admit(ctx, idx);
        }
    }

    fn on_crash(&mut self) {
        // Power-off: sockets, connections, frame buffers, in-flight
        // queries, retry chains and parked offers all die with the
        // process. The trace, the completed set and the shared log are
        // the durable state a restart rebuilds from.
        self.conns.clear();
        self.conn_sources.clear();
        self.frame_bufs.clear();
        self.pending_udp.clear();
        self.pending_tcp.clear();
        self.retrying.clear();
        self.parked.clear();
        // Retransmit chains and the cadence tick died with the timer
        // epoch; the send/retry accounting survives (those packets
        // really left before the crash).
        self.retx_state.drop_budgets();
        self.cadence_armed = false;
        if let Some(adm) = &mut self.admission {
            adm.reset_in_flight();
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        // The crash dropped every pending timer (netsim bumps the
        // timer epoch), so the unanswered remainder of the trace must
        // be re-armed: future deadlines get fresh timers at their
        // original absolute times, already-due ones are re-dispatched
        // now — the dead querier's unacknowledged span.
        self.restarts += 1;
        self.maybe_arm_cadence(ctx);
        let now_ns = ctx.now().as_nanos();
        let t0 = self.trace.first().map_or(0, |e| e.time_us);
        let origin_ns = self.origin.as_nanos();
        let mut due = Vec::new();
        let mut future = Vec::new();
        for (i, e) in self.trace.iter().enumerate() {
            if self.completed.contains(&(i as u64)) {
                continue;
            }
            let at_ns = origin_ns + (e.time_us - t0).saturating_mul(1_000);
            if at_ns <= now_ns {
                due.push(i);
            } else {
                future.push((i, at_ns));
            }
        }
        if tel::enabled() {
            tel::mark_at(now_ns, g_kinds().restarted, due.len() as u64, future.len() as u64);
        }
        for i in due {
            self.try_admit(ctx, i);
        }
        for (i, at_ns) in future {
            ctx.set_timer(netsim::SimDuration::from_nanos(at_ns - now_ns), i as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_server::{ServerEngine, SimDnsServer};
    use dns_wire::{Name, RData, Record, RecordType, Soa};
    use dns_zone::{Catalog, Zone};
    use ldp_trace::{Mutation, Mutator};
    use netsim::{PathConfig, SimConfig, SimDuration, Topology};

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn engine() -> Arc<ServerEngine> {
        let mut z = Zone::new(n("example"));
        z.insert(Record::new(
            n("example"),
            60,
            RData::Soa(Soa {
                mname: n("ns1.example"),
                rname: n("a.example"),
                serial: 1,
                refresh: 1,
                retry: 1,
                expire: 1,
                minimum: 60,
            }),
        ))
        .unwrap();
        z.insert(Record::new(n("*.example"), 60, RData::A("9.9.9.9".parse().unwrap())))
            .unwrap();
        let mut cat = Catalog::new();
        cat.insert(z);
        Arc::new(ServerEngine::with_catalog(cat))
    }

    fn mk_trace(num: u64, gap_us: u64, sources: u64) -> Vec<TraceEntry> {
        (0..num)
            .map(|i| {
                TraceEntry::query(
                    i * gap_us,
                    format!("10.1.0.{}:5000", 1 + i % sources).parse().unwrap(),
                    "10.9.0.1:53".parse().unwrap(),
                    (i % 65536) as u16,
                    format!("u{i}.example").parse().unwrap(),
                    RecordType::A,
                )
            })
            .collect()
    }

    fn run(
        trace: Vec<TraceEntry>,
        transport: Option<Transport>,
        rtt_ms: u64,
        idle_secs: u64,
        horizon_s: f64,
    ) -> (Vec<LatencyRecord>, netsim::HostStats, u64) {
        let mut sim = Simulator::new(
            Topology::uniform(PathConfig {
                rtt: SimDuration::from_millis(rtt_ms),
                bandwidth_bps: None,
                loss: 0.0,
            }),
            SimConfig::default(),
        );
        let server_addr: SocketAddr = "10.9.0.1:53".parse().unwrap();
        let server_id = sim.add_host(
            &[server_addr.ip()],
            Box::new(SimDnsServer::new(
                engine(),
                server_addr,
                Some(SimDuration::from_secs(idle_secs)),
            )),
        );
        let log: LatencyLog = Arc::new(Mutex::new(vec![]));
        let mut client = SimReplayClient::new(trace.clone(), server_addr, log.clone());
        client.transport_override = transport;
        let srcs = client.source_addrs();
        let connects_probe = Arc::new(Mutex::new(0u64));
        let _ = connects_probe;
        let client_id = sim.add_host(&srcs, Box::new(client));
        SimReplayClient::schedule(&mut sim, client_id, &trace, SimTime::ZERO);
        sim.run_until(SimTime::from_secs_f64(horizon_s));
        let stats = sim.stats(server_id);
        let out = log.lock().unwrap().clone();
        (out, stats, 0)
    }

    #[test]
    fn udp_latency_is_one_rtt() {
        let trace = mk_trace(20, 10_000, 5);
        let (log, stats, _) = run(trace, None, 40, 20, 10.0);
        assert_eq!(log.len(), 20);
        for r in &log {
            assert!((r.latency() - 0.040).abs() < 0.002, "latency {}", r.latency());
        }
        assert_eq!(stats.udp_rx, 20);
    }

    #[test]
    fn tcp_first_query_two_rtt_then_one() {
        let trace = mk_trace(3, 50_000, 1); // one source, 50 ms apart
        let (mut log, stats, _) = run(trace, Some(Transport::Tcp), 20, 20, 10.0);
        log.sort_by_key(|r| r.seq);
        assert_eq!(log.len(), 3);
        assert!((log[0].latency() - 0.040).abs() < 0.002, "fresh conn: 2 RTT, got {}", log[0].latency());
        assert!((log[1].latency() - 0.020).abs() < 0.002, "reused conn: 1 RTT, got {}", log[1].latency());
        assert!((log[2].latency() - 0.020).abs() < 0.002);
        assert_eq!(stats.tcp_accepts, 1, "single reused connection");
    }

    #[test]
    fn tls_first_query_four_rtt() {
        // 200 ms apart so the second query lands after the 3-RTT
        // connection setup (60 ms) has fully completed.
        let trace = mk_trace(2, 200_000, 1);
        let (mut log, stats, _) = run(trace, Some(Transport::Tls), 20, 20, 10.0);
        log.sort_by_key(|r| r.seq);
        assert!((log[0].latency() - 0.080).abs() < 0.002, "TLS fresh: 4 RTT, got {}", log[0].latency());
        assert!((log[1].latency() - 0.020).abs() < 0.002, "TLS reused: 1 RTT");
        assert_eq!(stats.tls_accepts, 1);
    }

    #[test]
    fn idle_close_forces_reconnect() {
        // Two queries 10 s apart with a 5 s server idle timeout: the
        // second query pays the handshake again.
        let trace = mk_trace(2, 10_000_000, 1);
        let (mut log, stats, _) = run(trace, Some(Transport::Tcp), 20, 5, 60.0);
        log.sort_by_key(|r| r.seq);
        assert_eq!(log.len(), 2);
        assert!((log[0].latency() - 0.040).abs() < 0.002);
        assert!(
            (log[1].latency() - 0.040).abs() < 0.002,
            "reconnect pays 2 RTT again, got {}",
            log[1].latency()
        );
        assert_eq!(stats.tcp_accepts, 2, "two connections over the run");
    }

    #[test]
    fn transport_mutation_pipeline_works_end_to_end() {
        // Mutate a UDP trace to all-TLS via the trace mutator, then
        // replay — the §5.2 what-if pipeline in miniature.
        let mut trace = mk_trace(10, 20_000, 3);
        Mutator::new(vec![Mutation::SetTransport(Transport::Tls)]).apply(&mut trace);
        let (log, stats, _) = run(trace, None, 10, 20, 10.0);
        assert_eq!(log.len(), 10);
        assert_eq!(stats.tls_rx, 10);
        assert_eq!(stats.udp_rx, 0);
        assert!(log.iter().all(|r| r.transport == Transport::Tls));
    }

    #[test]
    fn per_source_connections_are_separate() {
        let trace = mk_trace(8, 10_000, 4);
        let (log, stats, _) = run(trace, Some(Transport::Tcp), 5, 20, 10.0);
        assert_eq!(log.len(), 8);
        assert_eq!(stats.tcp_accepts, 4, "one connection per source");
    }

    /// Crash the server while a query is in flight on an established
    /// connection, restart it shortly after: with reconnect-with-backoff
    /// the orphaned query is resent on a fresh connection and answered,
    /// and its logged latency spans the whole outage it lived through.
    fn run_crash(backoff: Option<SimDuration>) -> Vec<LatencyRecord> {
        // One source, TCP: q0 at t=0 establishes the connection; q1 at
        // t=0.5 s is in flight when the server dies at t=0.52 s.
        let trace = mk_trace(2, 500_000, 1);
        let mut sim = Simulator::new(
            Topology::uniform(PathConfig {
                rtt: SimDuration::from_millis(40),
                bandwidth_bps: None,
                loss: 0.0,
            }),
            SimConfig::default(),
        );
        let server_addr: SocketAddr = "10.9.0.1:53".parse().unwrap();
        sim.add_host(
            &[server_addr.ip()],
            Box::new(SimDnsServer::new(engine(), server_addr, Some(SimDuration::from_secs(30)))),
        );
        let log: LatencyLog = Arc::new(Mutex::new(vec![]));
        let mut client = SimReplayClient::new(trace.clone(), server_addr, log.clone());
        client.transport_override = Some(Transport::Tcp);
        client.reconnect_backoff = backoff;
        let srcs = client.source_addrs();
        let client_id = sim.add_host(&srcs, Box::new(client));
        SimReplayClient::schedule(&mut sim, client_id, &trace, SimTime::ZERO);
        sim.run_until(SimTime::from_secs_f64(0.52));
        sim.crash_now(server_addr.ip());
        sim.run_until(SimTime::from_secs_f64(0.70));
        sim.restart_now(server_addr.ip());
        sim.run_until(SimTime::from_secs_f64(10.0));
        let mut out = log.lock().unwrap().clone();
        out.sort_by_key(|r| r.seq);
        out
    }

    #[test]
    fn reconnect_with_backoff_recovers_query_lost_to_a_crash() {
        let log = run_crash(Some(SimDuration::from_millis(100)));
        assert_eq!(log.len(), 2, "both queries answered despite the crash: {log:?}");
        assert!((log[0].latency() - 0.080).abs() < 0.002, "q0 unaffected");
        // q1 was sent at 0.5 s, orphaned by the crash, redialed through
        // the outage and answered after the restart — its latency
        // includes the backoff and the second handshake.
        assert!(
            log[1].latency() > 0.25,
            "recovered latency spans the outage, got {}",
            log[1].latency()
        );
        assert!(log[1].latency() < 2.0, "recovery is prompt, got {}", log[1].latency());
    }

    #[test]
    fn without_reconnect_the_orphaned_query_is_lost() {
        let log = run_crash(None);
        assert_eq!(log.len(), 1, "only the pre-crash query completes: {log:?}");
        assert_eq!(log[0].seq, 0);
    }

    /// One full checkpointed run: returns (transcript lines, last
    /// committed checkpoint). When `kill_at_s` is set the simulator is
    /// abandoned at that virtual time — the moral equivalent of
    /// `kill -9` on the replay process.
    fn checkpointed_run(
        queue: netsim::QueueKind,
        kill_at_s: Option<f64>,
    ) -> (Vec<String>, Option<Checkpoint>) {
        // Gap (50 ms) > RTT (40 ms): each query completes before the
        // next is sent, so every completion is a quiescent cut and
        // checkpoints actually commit.
        let trace = mk_trace(40, 50_000, 4);
        let mut sim = Simulator::new(
            Topology::uniform(PathConfig {
                rtt: SimDuration::from_millis(40),
                bandwidth_bps: None,
                loss: 0.0,
            }),
            SimConfig { queue, ..SimConfig::default() },
        );
        let server_addr: SocketAddr = "10.9.0.1:53".parse().unwrap();
        sim.add_host(
            &[server_addr.ip()],
            Box::new(SimDnsServer::new(engine(), server_addr, Some(SimDuration::from_secs(30)))),
        );
        let log: LatencyLog = Arc::new(Mutex::new(vec![]));
        let cp_out = Arc::new(Mutex::new(None));
        let mut client = SimReplayClient::new(trace.clone(), server_addr, log.clone());
        client.checkpoint_every = 5;
        client.checkpoint_out = Some(cp_out.clone());
        let srcs = client.source_addrs();
        let client_id = sim.add_host(&srcs, Box::new(client));
        SimReplayClient::schedule(&mut sim, client_id, &trace, SimTime::ZERO);
        sim.run_until(SimTime::from_secs_f64(kill_at_s.unwrap_or(30.0)));
        let lines = log.lock().unwrap().iter().map(record_to_line).collect();
        let cp = cp_out.lock().unwrap().clone();
        (lines, cp)
    }

    /// The tentpole guarantee: kill a checkpointed run mid-replay,
    /// resume from the last committed checkpoint in a fresh simulator,
    /// and the full transcript (checkpointed prefix + resumed
    /// remainder) is byte-identical to an uninterrupted same-seed run —
    /// on both event-queue backends.
    #[test]
    fn kill_and_resume_replays_a_byte_identical_transcript() {
        for queue in [netsim::QueueKind::Heap, netsim::QueueKind::BTree] {
            let (uninterrupted, _) = checkpointed_run(queue, None);
            assert_eq!(uninterrupted.len(), 40);

            // Kill at 0.62 s: 12 queries are done, the checkpoint
            // holds the first 10, and everything after the cut is lost
            // with the process.
            let (_, cp) = checkpointed_run(queue, Some(0.62));
            let cp = cp.expect("a checkpoint committed before the kill");
            assert!(cp.cursor >= 5 && cp.cursor < 40, "mid-run cut, got {}", cp.cursor);
            // The checkpoint survives serialization.
            let cp = Checkpoint::from_text(&cp.to_text().unwrap()).unwrap();

            let trace = mk_trace(40, 50_000, 4);
            let mut sim = Simulator::new(
                Topology::uniform(PathConfig {
                    rtt: SimDuration::from_millis(40),
                    bandwidth_bps: None,
                    loss: 0.0,
                }),
                SimConfig { queue, ..SimConfig::default() },
            );
            let server_addr: SocketAddr = "10.9.0.1:53".parse().unwrap();
            sim.add_host(
                &[server_addr.ip()],
                Box::new(SimDnsServer::new(
                    engine(),
                    server_addr,
                    Some(SimDuration::from_secs(30)),
                )),
            );
            let log: LatencyLog = Arc::new(Mutex::new(vec![]));
            let client =
                SimReplayClient::resume(trace.clone(), server_addr, log.clone(), &cp).unwrap();
            let srcs = client.source_addrs();
            let client_id = sim.add_host(&srcs, Box::new(client));
            SimReplayClient::schedule_resume(&mut sim, client_id, &trace, SimTime::ZERO, &cp);
            sim.run_until(SimTime::from_secs_f64(30.0));

            let resumed: Vec<String> = log.lock().unwrap().iter().map(record_to_line).collect();
            assert_eq!(
                resumed, uninterrupted,
                "resumed transcript diverged on {queue:?} backend"
            );
        }
    }

    /// A one-slot admission window under a burst: the first query is
    /// admitted, the rest park, and once they overstay the lateness
    /// allowance they are shed — recorded, not silently dropped, and
    /// the replay clock never stalls waiting for them.
    #[test]
    fn overloaded_window_sheds_late_queries_instead_of_stalling() {
        let trace = mk_trace(10, 0, 2); // burst: all due at t = 0
        let mut sim = Simulator::new(
            Topology::uniform(PathConfig {
                rtt: SimDuration::from_millis(40),
                bandwidth_bps: None,
                loss: 0.0,
            }),
            SimConfig::default(),
        );
        let server_addr: SocketAddr = "10.9.0.1:53".parse().unwrap();
        sim.add_host(
            &[server_addr.ip()],
            Box::new(SimDnsServer::new(engine(), server_addr, Some(SimDuration::from_secs(30)))),
        );
        let log: LatencyLog = Arc::new(Mutex::new(vec![]));
        let shed_out = Arc::new(Mutex::new(Vec::new()));
        let mut client = SimReplayClient::new(trace.clone(), server_addr, log.clone());
        client.admission = Some(AdmissionController::new(ldp_guard::AdmissionConfig {
            max_in_flight: 1,
            max_lateness_us: 5_000,
        }));
        client.shed_out = Some(shed_out.clone());
        let srcs = client.source_addrs();
        let client_id = sim.add_host(&srcs, Box::new(client));
        SimReplayClient::schedule(&mut sim, client_id, &trace, SimTime::ZERO);
        sim.run_until(SimTime::from_secs_f64(5.0));

        let answered = log.lock().unwrap().len();
        let mut shed = shed_out.lock().unwrap().clone();
        shed.sort_unstable();
        assert_eq!(answered, 1, "only the admitted query is answered");
        assert_eq!(shed, (1..10).collect::<Vec<u64>>(), "the other nine are shed on record");
    }

    /// Power-cycle the *querier* mid-replay: the crash loses in-flight
    /// state and pending timers, and `on_restart` re-dispatches the
    /// overdue span and re-arms the future one — every query in the
    /// trace is still answered.
    #[test]
    fn querier_crash_and_restart_answers_the_whole_trace() {
        let trace = mk_trace(20, 50_000, 1);
        let src_ip: IpAddr = "10.1.0.1".parse().unwrap();
        let mut sim = Simulator::new(
            Topology::uniform(PathConfig {
                rtt: SimDuration::from_millis(40),
                bandwidth_bps: None,
                loss: 0.0,
            }),
            SimConfig::default(),
        );
        let server_addr: SocketAddr = "10.9.0.1:53".parse().unwrap();
        sim.add_host(
            &[server_addr.ip()],
            Box::new(SimDnsServer::new(engine(), server_addr, Some(SimDuration::from_secs(30)))),
        );
        let log: LatencyLog = Arc::new(Mutex::new(vec![]));
        let client = SimReplayClient::new(trace.clone(), server_addr, log.clone());
        let srcs = client.source_addrs();
        let client_id = sim.add_host(&srcs, Box::new(client));
        SimReplayClient::schedule(&mut sim, client_id, &trace, SimTime::ZERO);
        // q4 (sent at 0.20 s) is in flight when the querier dies at
        // 0.23 s; timers for q5..q7 are dropped by the crash.
        sim.run_until(SimTime::from_secs_f64(0.23));
        sim.crash_now(src_ip);
        sim.run_until(SimTime::from_secs_f64(0.40));
        sim.restart_now(src_ip);
        sim.run_until(SimTime::from_secs_f64(30.0));

        let mut seqs: Vec<u64> = log.lock().unwrap().iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs, (0..20).collect::<Vec<u64>>(), "every query answered despite the crash");
    }

    /// Sustained random loss with UDP retransmission enabled: every
    /// query is eventually answered (the per-query budgets outlast the
    /// loss), and the answered-late queries show retransmit latency.
    #[test]
    fn udp_retransmission_recovers_lost_queries() {
        let trace = mk_trace(30, 50_000, 4);
        let mut sim = Simulator::new(
            Topology::uniform(PathConfig {
                rtt: SimDuration::from_millis(40),
                bandwidth_bps: None,
                loss: 0.3,
            }),
            SimConfig::default(),
        );
        let server_addr: SocketAddr = "10.9.0.1:53".parse().unwrap();
        sim.add_host(
            &[server_addr.ip()],
            Box::new(SimDnsServer::new(engine(), server_addr, Some(SimDuration::from_secs(30)))),
        );
        let log: LatencyLog = Arc::new(Mutex::new(vec![]));
        let mut client = SimReplayClient::new(trace.clone(), server_addr, log.clone());
        client.udp_retransmit = Some(RetransmitConfig {
            max_retx: 10,
            base_us: 100_000,
            cap_us: 400_000,
        });
        client.retx_seed = 7;
        let srcs = client.source_addrs();
        let client_id = sim.add_host(&srcs, Box::new(client));
        SimReplayClient::schedule(&mut sim, client_id, &trace, SimTime::ZERO);
        sim.run_until(SimTime::from_secs_f64(30.0));
        let out = log.lock().unwrap().clone();
        assert_eq!(out.len(), 30, "all queries answered through 30% loss");
        assert!(
            out.iter().any(|r| r.latency() > 0.09),
            "some query needed at least one retransmit"
        );
        // Latency spans from the *original* send even for retransmitted
        // answers.
        assert!(out.iter().all(|r| r.latency() >= 0.039));
    }

    /// Fuzzy cadence cuts commit on the absolute grid with queries in
    /// flight, counters committed down to completed work, and the v2
    /// document round-trips through its text form.
    #[test]
    fn fuzzy_cadence_commits_with_inflight_state() {
        // Gap 50 ms, RTT 40 ms, cadence 25 ms: every odd grid tick
        // lands while a query is on the wire.
        let trace = mk_trace(40, 50_000, 4);
        let mut sim = Simulator::new(
            Topology::uniform(PathConfig {
                rtt: SimDuration::from_millis(40),
                bandwidth_bps: None,
                loss: 0.0,
            }),
            SimConfig::default(),
        );
        let server_addr: SocketAddr = "10.9.0.1:53".parse().unwrap();
        sim.add_host(
            &[server_addr.ip()],
            Box::new(SimDnsServer::new(engine(), server_addr, Some(SimDuration::from_secs(30)))),
        );
        let log: LatencyLog = Arc::new(Mutex::new(vec![]));
        let cp_out = Arc::new(Mutex::new(None));
        let stamps = Arc::new(Mutex::new(Vec::new()));
        let mut client = SimReplayClient::new(trace.clone(), server_addr, log.clone());
        client.checkpoint_cadence = Some(SimDuration::from_micros(25_000));
        client.checkpoint_out = Some(cp_out.clone());
        client.checkpoint_stamps = Some(stamps.clone());
        let srcs = client.source_addrs();
        let client_id = sim.add_host(&srcs, Box::new(client));
        SimReplayClient::schedule(&mut sim, client_id, &trace, SimTime::ZERO);
        // Kill right after the 0.525 s tick: seq 10 (sent at 0.500,
        // answered at 0.540) is mid-flight at that cut.
        sim.run_until(SimTime::from_secs_f64(0.53));

        let stamps = stamps.lock().unwrap().clone();
        assert!(!stamps.is_empty(), "cadence commits happened");
        assert!(stamps.iter().all(|s| s.version == 2));
        // Grid anchoring: every commit instant is a multiple of 25 ms.
        assert!(stamps.iter().all(|s| s.taken_ns % 25_000_000 == 0), "{stamps:?}");
        assert!(stamps.iter().any(|s| s.inflight > 0), "some cut caught a query mid-flight");

        let cp = cp_out.lock().unwrap().clone().expect("a committed cut");
        assert_eq!(cp.version, 2);
        assert_eq!(cp.taken_ns, 525_000_000);
        assert_eq!(cp.inflight.len(), 1, "{:?}", cp.inflight);
        let e = cp.inflight[0];
        assert_eq!(e.seq, 10);
        assert_eq!(e.deadline_ns, 500_000_000, "original send deadline, not the cut");
        assert_eq!((e.sends, e.retx), (1, 0));
        assert_eq!(e.status, InflightStatus::InFlight);
        // Committed counters cover completed work only: 10 completed
        // queries, each sent exactly once; seq 10's send is carried on
        // its inflight line instead.
        assert_eq!(cp.counter("sent"), Some(10));
        assert_eq!(cp.records.len(), 10);
        // Exact text round-trip of a document with in-flight state.
        let text = cp.to_text().expect("serializes");
        assert_eq!(Checkpoint::from_text(&text).expect("parses"), cp);
    }

    /// Satellite: after a querier crash, parked queries re-enter
    /// admission deterministically — re-offered in ascending seq order
    /// by `on_restart`, so with a one-slot window the completion order
    /// is pinned.
    #[test]
    fn crashed_querier_parked_queries_reenter_admission_in_seq_order() {
        let trace = mk_trace(4, 0, 1); // burst: all due at t = 0
        let src_ip: IpAddr = "10.1.0.1".parse().unwrap();
        let mut sim = Simulator::new(
            Topology::uniform(PathConfig {
                rtt: SimDuration::from_millis(40),
                bandwidth_bps: None,
                loss: 0.0,
            }),
            SimConfig::default(),
        );
        let server_addr: SocketAddr = "10.9.0.1:53".parse().unwrap();
        sim.add_host(
            &[server_addr.ip()],
            Box::new(SimDnsServer::new(engine(), server_addr, Some(SimDuration::from_secs(30)))),
        );
        let log: LatencyLog = Arc::new(Mutex::new(vec![]));
        let mut client = SimReplayClient::new(trace.clone(), server_addr, log.clone());
        client.admission = Some(AdmissionController::new(ldp_guard::AdmissionConfig {
            max_in_flight: 1,
            max_lateness_us: 60_000_000, // park, never shed
        }));
        let srcs = client.source_addrs();
        let client_id = sim.add_host(&srcs, Box::new(client));
        SimReplayClient::schedule(&mut sim, client_id, &trace, SimTime::ZERO);
        // q0 in flight, q1..q3 parked when the querier dies.
        sim.run_until(SimTime::from_secs_f64(0.01));
        sim.crash_now(src_ip);
        sim.run_until(SimTime::from_secs_f64(0.02));
        sim.restart_now(src_ip);
        sim.run_until(SimTime::from_secs_f64(30.0));

        let order: Vec<u64> = log.lock().unwrap().iter().map(|r| r.seq).collect();
        assert_eq!(order, vec![0, 1, 2, 3], "deterministic seq-order re-entry");
    }
}
