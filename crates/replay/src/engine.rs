//! The distributed query engine over real sockets (paper §2.6 and §3,
//! Figure 4): a Controller (Reader + Postman) feeds Distributors over
//! bounded channels (the pre-load window), which feed Queriers; each
//! querier owns the emulated sockets of the original sources assigned
//! to it and sends queries at their trace deadlines.
//!
//! In-process threads play the roles the paper implements as processes;
//! the channel topology, sticky source routing, timing algebra and
//! per-source socket ownership are the same.

use std::collections::{HashMap, VecDeque};
use std::net::{IpAddr, SocketAddr, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};
use dns_wire::framing::frame_into;
use dns_wire::{EncodeScratch, Transport};
use ldp_guard::{Checkpoint, GuardConfig, RetryBudget, Supervisor};
use ldp_telemetry as tel;
use ldp_trace::TraceEntry;

use crate::clock::{ReplayClock, WallClock};
use crate::sticky::StickyRouter;
use crate::timing::TimingTracker;

/// Interned telemetry kinds for the real-socket engine. `replay.sent`
/// carries the signed send-time error (µs, two's complement in `b`) —
/// the paper's Figure 6 quantity, accounted at the source instead of
/// reconstructed from the report afterwards. `replay.shed` marks a
/// query dropped by deadline-aware load shedding; `replay.restarted`
/// marks a querier slot declared dead and its span re-dispatched.
struct ReplayKinds {
    sent: tel::KindId,
    error: tel::KindId,
    shed: tel::KindId,
    restarted: tel::KindId,
}

fn replay_kinds() -> &'static ReplayKinds {
    static K: std::sync::OnceLock<ReplayKinds> = std::sync::OnceLock::new();
    K.get_or_init(|| ReplayKinds {
        sent: tel::register_kind("replay.sent"),
        error: tel::register_kind("replay.send_error"),
        shed: tel::register_kind("replay.shed"),
        restarted: tel::register_kind("replay.restarted"),
    })
}

/// Adapts a [`ReplayClock`] into the telemetry [`tel::ClockSource`],
/// so clocked records elsewhere in the process share the replay
/// timebase (wall or virtual) during a run.
struct ReplayClockSource(Arc<dyn ReplayClock>);

impl tel::ClockSource for ReplayClockSource {
    fn now_ns(&self) -> u64 {
        self.0.now_us().saturating_mul(1_000)
    }
}

/// Replay configuration.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Number of distributor threads ("client instances").
    pub distributors: usize,
    /// Queriers per distributor.
    pub queriers_per_distributor: usize,
    /// Where to send every query (UDP and TCP reach the same host).
    pub target_udp: SocketAddr,
    /// TCP target (may differ in port).
    pub target_tcp: SocketAddr,
    /// Replay speed factor (1.0 = real time).
    pub speed: f64,
    /// Fast mode: no timers, send as fast as possible (paper §4.3).
    pub fast_mode: bool,
    /// Bounded channel capacity — the Reader's pre-load window.
    pub channel_capacity: usize,
    /// Warm-up offset before the first query is due.
    pub warmup: Duration,
    /// Overload-and-recovery knobs (shedding, reconnect budgets,
    /// supervision, checkpoint cadence).
    pub guard: GuardConfig,
    /// Where the collector publishes checkpoints when
    /// `guard.checkpoint_every > 0`: the latest one replaces its
    /// predecessor under the mutex (a resume only ever wants the
    /// newest cut).
    pub checkpoint_out: Option<Arc<Mutex<Option<Checkpoint>>>>,
    /// Resume a killed run: skip every trace seq below the
    /// checkpoint's cursor and continue its epoch/counter lineage.
    pub resume_from: Option<Checkpoint>,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            distributors: 2,
            queriers_per_distributor: 3,
            target_udp: "127.0.0.1:53".parse().unwrap(),
            target_tcp: "127.0.0.1:53".parse().unwrap(),
            speed: 1.0,
            fast_mode: false,
            channel_capacity: 4096,
            warmup: Duration::from_millis(50),
            guard: GuardConfig::default(),
            checkpoint_out: None,
            resume_from: None,
        }
    }
}

/// One query handed down the distribution tree: pre-encoded, so the
/// querier's work at the deadline is just a socket write. The payload
/// is a shared slice — cloning the job down the tree copies a pointer,
/// never the bytes.
#[derive(Debug, Clone)]
struct QueryJob {
    seq: u64,
    trace_us: u64,
    source: IpAddr,
    transport: Transport,
    payload: Arc<[u8]>,
}

/// The few fields of [`ReplayConfig`] a querier thread actually reads.
/// Copying this per thread replaces cloning the whole config (which
/// the queriers used to do, once per thread, for three fields).
#[derive(Debug, Clone, Copy)]
struct QuerierConfig {
    target_udp: SocketAddr,
    target_tcp: SocketAddr,
    fast_mode: bool,
    /// Timed mode sheds (skips) a query whose deadline is already this
    /// many µs in the past, recording the seq instead of stalling
    /// behind it. `0` disables shedding. Fast mode has no deadlines
    /// and never sheds.
    shed_lateness_us: u64,
    /// TCP reconnect budget (attempts, base/cap backoff µs).
    reconnect: ldp_guard::ReconnectConfig,
    /// Seed for this querier's reconnect jitter stream.
    seed: u64,
}

impl From<&ReplayConfig> for QuerierConfig {
    fn from(c: &ReplayConfig) -> Self {
        QuerierConfig {
            target_udp: c.target_udp,
            target_tcp: c.target_tcp,
            fast_mode: c.fast_mode,
            shed_lateness_us: c.guard.admission.max_lateness_us,
            reconnect: c.guard.reconnect,
            seed: c.guard.supervisor.seed,
        }
    }
}

/// What a querier recorded about one sent query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SentRecord {
    /// Sequence number in the input trace.
    pub seq: u64,
    /// The query's trace timestamp (µs).
    pub trace_us: u64,
    /// When it was actually sent, µs since the replay origin.
    pub sent_us: u64,
    /// Which querier sent it.
    pub querier: usize,
    /// Transport used.
    pub transport: Transport,
}

/// The outcome of a replay run.
#[derive(Debug)]
pub struct ReplayReport {
    /// Per-query send records, in send order per querier (globally
    /// unsorted; sort by `seq` or `sent_us` as needed).
    pub sent: Vec<SentRecord>,
    /// Total queries sent successfully.
    pub total_sent: u64,
    /// Send errors (socket failures).
    pub errors: u64,
    /// Distinct original sources seen by the controller.
    pub distinct_sources: usize,
    /// Wall-clock duration of the replay.
    pub elapsed: Duration,
    /// Trace seqs dropped by deadline-aware shedding, ascending.
    pub shed: Vec<u64>,
    /// Jobs re-dispatched to surviving queriers after a slot died.
    pub redispatched: u64,
    /// Querier slots declared dead (restart budget exhausted).
    pub dead_queriers: Vec<usize>,
    /// First trace seq of this run (> 0 when resumed from a
    /// checkpoint; everything below it was sent by the killed run).
    pub resumed_from: u64,
}

impl ReplayReport {
    /// Send-time error (sent − intended) in microseconds for every
    /// query, the quantity behind the paper's Figure 6.
    pub fn timing_errors_us(&self, trace_start_us: u64, speed: f64) -> Vec<f64> {
        self.sent
            .iter()
            .map(|r| {
                let intended = (r.trace_us.saturating_sub(trace_start_us)) as f64 / speed;
                r.sent_us as f64 - intended
            })
            .collect()
    }
}

/// Run a replay of `trace` per `config` against the wall clock. Blocks
/// until every query has been sent and all threads joined.
pub fn replay(trace: &[TraceEntry], config: &ReplayConfig) -> ReplayReport {
    replay_with_clock(trace, config, Arc::new(WallClock::start()))
}

/// Run a replay against an explicit [`ReplayClock`] — the wall clock
/// for live runs, a virtual clock for simulator-mode replay, which must
/// never read real time (rule D1). The clock's origin is the start of
/// the run; the first query is due at `config.warmup` past it.
pub fn replay_with_clock(
    trace: &[TraceEntry],
    config: &ReplayConfig,
    clock: Arc<dyn ReplayClock>,
) -> ReplayReport {
    assert!(!trace.is_empty(), "cannot replay an empty trace");
    let origin_us = config.warmup.as_micros() as u64;
    let tracker = TimingTracker::start(trace[0].time_us, origin_us).with_speed(config.speed);
    if tel::enabled() {
        // Route clocked records through the replay timebase for the
        // duration of the run (restored to zero-clock by whoever set
        // the process clock; installing is idempotent per run).
        tel::clock::install_clock(Arc::new(ReplayClockSource(clock.clone())));
    }

    let errors = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(Mutex::new(Vec::<u64>::new()));
    let redispatched = Arc::new(AtomicU64::new(0));
    let (record_tx, record_rx) = bounded::<SentRecord>(65536);

    // Build querier threads.
    let n_d = config.distributors.max(1);
    let n_q = config.queriers_per_distributor.max(1);
    // One supervised slot per querier; distributors report observed
    // deaths (a closed channel) into it, skipping the heartbeat wait.
    let supervisor = Arc::new(Mutex::new(Supervisor::new(
        config.guard.supervisor,
        n_d * n_q,
        clock.now_us(),
    )));
    let mut querier_txs: Vec<Vec<Sender<QueryJob>>> = Vec::with_capacity(n_d);
    let mut handles = Vec::new();
    for d in 0..n_d {
        let mut txs = Vec::with_capacity(n_q);
        for q in 0..n_q {
            let (tx, rx) = bounded::<QueryJob>(config.channel_capacity);
            let cfg = QuerierConfig::from(config);
            let errors = errors.clone();
            let shed = shed.clone();
            let record_tx = record_tx.clone();
            let clock = clock.clone();
            let idx = d * n_q + q;
            handles.push(std::thread::spawn(move || {
                querier_loop(idx, rx, cfg, tracker, clock, origin_us, errors, shed, record_tx)
            }));
            txs.push(tx);
        }
        querier_txs.push(txs);
    }
    drop(record_tx);

    // Distributor threads: receive from the controller, sticky-route to
    // their queriers, failing over to surviving siblings when one dies.
    // The retained-window redispatch only runs when a restart budget
    // exists — without one there is nobody to hand the span to twice.
    let window = if config.guard.supervisor.max_restarts > 0 {
        config.channel_capacity
    } else {
        0
    };
    let mut dist_txs: Vec<Sender<QueryJob>> = Vec::with_capacity(n_d);
    for (d, txs) in querier_txs.iter().enumerate() {
        let (tx, rx): (Sender<QueryJob>, Receiver<QueryJob>) = bounded(config.channel_capacity);
        let txs = txs.clone();
        let supervisor = supervisor.clone();
        let clock = clock.clone();
        let redispatched = redispatched.clone();
        let errors = errors.clone();
        let slot_base = d * n_q;
        handles.push(std::thread::spawn(move || {
            distribute(rx, &txs, window, slot_base, &supervisor, &clock, &redispatched, &errors);
            // Closing txs (drop) ends the queriers.
        }));
        dist_txs.push(tx);
    }
    // The distributor threads hold the only live clones now; without
    // this drop the querier channels never close and join deadlocks.
    drop(querier_txs);

    // Collect send records while queriers run. The collector MUST be
    // draining before the controller starts pushing: with it absent, a
    // trace larger than the combined channel capacity would fill
    // record_tx and deadlock the whole tree. It doubles as the
    // checkpointer: it is the only thread that sees completions, so
    // the contiguous-prefix cursor lives here.
    let start_seq = config.resume_from.as_ref().map_or(0, |c| c.cursor);
    let cp_every = config.guard.checkpoint_every;
    let cp_out = config.checkpoint_out.clone();
    let cp_epoch = config.resume_from.as_ref().map_or(0, |c| c.epoch);
    let collector = {
        let clock = clock.clone();
        let errors = errors.clone();
        std::thread::spawn(move || {
            let mut sent = Vec::new();
            let mut next_contig = start_seq;
            let mut out_of_order = std::collections::BTreeSet::new();
            let mut since_cp = 0u64;
            let mut epoch = cp_epoch;
            for rec in record_rx.iter() {
                if cp_every > 0 {
                    if rec.seq == next_contig {
                        next_contig += 1;
                        while out_of_order.remove(&next_contig) {
                            next_contig += 1;
                        }
                    } else if rec.seq > next_contig {
                        out_of_order.insert(rec.seq);
                    }
                    since_cp += 1;
                    if since_cp >= cp_every {
                        since_cp = 0;
                        epoch += 1;
                        if let Some(out) = &cp_out {
                            let cp = Checkpoint {
                                version: 1,
                                epoch,
                                taken_ns: clock.now_us().saturating_mul(1_000),
                                cursor: next_contig,
                                counters: vec![
                                    ("sent".into(), sent.len() as u64 + 1),
                                    ("errors".into(), errors.load(Ordering::Relaxed)),
                                ],
                                records: Vec::new(),
                                inflight: Vec::new(),
                            };
                            if let Ok(mut slot) = out.lock() {
                                *slot = Some(cp);
                            }
                        }
                    }
                }
                sent.push(rec);
            }
            sent
        })
    };

    // Controller: Reader (pre-encode) + Postman (sticky distribution).
    // On resume, sources are replayed through the router from seq 0 so
    // sticky assignments match the original run, but only jobs at or
    // past the checkpoint cursor are dispatched.
    let mut controller_router = StickyRouter::new(n_d);
    // One scratch for the whole pre-encode pass: the output buffer and
    // the name-compression interner are reused across every entry, so
    // the only per-query allocation is the shared payload itself.
    let mut scratch = EncodeScratch::new();
    for (seq, entry) in trace.iter().enumerate() {
        let d = controller_router.route(entry.src.ip());
        if (seq as u64) < start_seq {
            continue;
        }
        let payload: Arc<[u8]> = entry.message.encode_into(&mut scratch).into();
        let job = QueryJob {
            seq: seq as u64,
            trace_us: entry.time_us,
            source: entry.src.ip(),
            transport: entry.transport,
            payload,
        };
        if dist_txs[d].send(job).is_err() {
            break;
        }
    }
    let distinct_sources = controller_router.sources();
    drop(dist_txs);

    for h in handles {
        let _ = h.join();
    }
    let sent = collector.join().expect("collector joins");
    let total_sent = sent.len() as u64;
    let mut shed = std::mem::take(&mut *shed.lock().expect("shed lock"));
    shed.sort_unstable();
    let dead_queriers = {
        let sup = supervisor.lock().expect("supervisor lock");
        (0..sup.len()).filter(|&i| sup.is_dead(i)).collect()
    };
    ReplayReport {
        sent,
        total_sent,
        errors: errors.load(Ordering::Relaxed),
        distinct_sources,
        elapsed: Duration::from_micros(clock.now_us()),
        shed,
        redispatched: redispatched.load(Ordering::Relaxed),
        dead_queriers,
        resumed_from: start_seq,
    }
}

/// One distributor's routing loop: sticky-route jobs from the
/// controller to the querier channels in `txs`. A send to a closed
/// channel (the querier thread died) marks that child dead, reports it
/// to the supervisor, and re-dispatches the failed job plus the
/// child's retained window — its last `window` jobs, an upper bound on
/// what it had received but not yet sent — to surviving siblings.
/// Delivery is at-least-once across a failover: a job the dead querier
/// already sent may be retained and sent again by its sibling, which
/// replay tolerates (duplicate queries happen in real traces too).
#[allow(clippy::too_many_arguments)]
fn distribute(
    rx: Receiver<QueryJob>,
    txs: &[Sender<QueryJob>],
    window: usize,
    slot_base: usize,
    supervisor: &Mutex<Supervisor>,
    clock: &Arc<dyn ReplayClock>,
    redispatched: &AtomicU64,
    errors: &AtomicU64,
) {
    let mut router = StickyRouter::new(txs.len());
    let mut alive = vec![true; txs.len()];
    // Per-child retained window, oldest first.
    let mut recent: Vec<VecDeque<QueryJob>> = (0..txs.len()).map(|_| VecDeque::new()).collect();
    // Jobs awaiting (re-)delivery ahead of anything new from the
    // controller; the bool marks a redispatch.
    let mut queue: VecDeque<(QueryJob, bool)> = VecDeque::new();
    for job in rx.iter() {
        queue.push_back((job, false));
        while let Some((job, is_redispatch)) = queue.pop_front() {
            let mut child = router.route(job.source);
            if !alive[child] {
                match alive.iter().position(|a| *a) {
                    Some(c) => child = c,
                    None => {
                        // Every querier of this distributor is gone.
                        errors.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
            }
            let retained = if window > 0 { Some(job.clone()) } else { None };
            match txs[child].send(job) {
                Ok(()) => {
                    if is_redispatch {
                        redispatched.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(r) = retained {
                        let w = &mut recent[child];
                        w.push_back(r);
                        if w.len() > window {
                            w.pop_front();
                        }
                    }
                }
                Err(dead) => {
                    alive[child] = false;
                    let slot = slot_base + child;
                    if let Ok(mut sup) = supervisor.lock() {
                        sup.note_dead(slot, clock.now_us());
                    }
                    let orphans = std::mem::take(&mut recent[child]);
                    let n_orphans = orphans.len();
                    if tel::enabled() {
                        let k = replay_kinds();
                        tel::mark_at(
                            clock.now_us().saturating_mul(1_000),
                            k.restarted,
                            slot as u64,
                            n_orphans as u64 + 1,
                        );
                    }
                    // Re-queue the retained window (oldest first) then
                    // the failed job, ahead of new controller jobs.
                    for (i, o) in orphans.into_iter().enumerate() {
                        queue.insert(i, (o, true));
                    }
                    queue.insert(n_orphans, (dead.0, true));
                }
            }
        }
    }
}

/// How a non-blocking framed send ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SendOutcome {
    /// Whole frame written.
    Sent,
    /// The socket buffer stayed full for the whole retry budget and
    /// *nothing* was written: the stream is still frame-aligned, so the
    /// connection stays usable; only this query is dropped.
    Stalled,
    /// Real I/O error, EOF, or a stall after a partial write (which
    /// desyncs the length-framed stream): the connection is unusable.
    Dead,
}

/// Write budget before a `WouldBlock` send gives up: spin-yields first,
/// then short sleeps. Counted in iterations, never wall-clock reads —
/// the engine must work under a virtual clock (rule D1).
const STALL_YIELDS: u32 = 32;
const STALL_LIMIT: u32 = 512;

/// Dial `target` under the querier's [`RetryBudget`]. A dead TCP path
/// (server restarting, listen queue overflowing under load) often heals
/// within a millisecond; giving up on the first refused connect drops
/// every queued query for that source. But the budget is shared across
/// the querier's whole run, so a target that is *permanently* down
/// costs at most `max_attempts` backoff sleeps total — after that each
/// call makes one eager probe and returns `None` immediately instead
/// of re-spinning the backoff for every queued job. A successful
/// connect refills the budget (the path healed).
fn reconnect_with_backoff(target: SocketAddr, budget: &mut RetryBudget) -> Option<TcpStream> {
    loop {
        // Loop bound: `budget` (lint R1) — `next_delay_us` returns
        // `None` after `max_attempts` draws.
        if let Ok(s) = TcpStream::connect(target) {
            s.set_nodelay(true).ok();
            budget.reset();
            return Some(s);
        }
        match budget.next_delay_us() {
            Some(delay_us) => std::thread::sleep(Duration::from_micros(delay_us)),
            None => return None,
        }
    }
}

/// Write one length-framed message to a (possibly non-blocking) stream.
///
/// `WouldBlock` is backpressure, not death: the querier used to treat
/// it like a broken pipe and reconnect, tearing down a healthy
/// connection under load. Here it retries the *remaining* bytes with a
/// bounded yield/sleep backoff and only reports [`SendOutcome::Dead`]
/// on genuine errors or a desynced partial write.
fn send_framed<W: std::io::Write>(w: &mut W, framed: &[u8]) -> SendOutcome {
    let mut written = 0usize;
    let mut stalls = 0u32;
    while written < framed.len() {
        match w.write(&framed[written..]) {
            Ok(0) => return SendOutcome::Dead,
            Ok(n) => {
                written += n;
                stalls = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                stalls += 1;
                if stalls > STALL_LIMIT {
                    return if written == 0 { SendOutcome::Stalled } else { SendOutcome::Dead };
                }
                if stalls <= STALL_YIELDS {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
            Err(_) => return SendOutcome::Dead,
        }
    }
    SendOutcome::Sent
}

#[allow(clippy::too_many_arguments)]
fn querier_loop(
    idx: usize,
    rx: Receiver<QueryJob>,
    cfg: QuerierConfig,
    tracker: TimingTracker,
    clock: Arc<dyn ReplayClock>,
    origin_us: u64,
    errors: Arc<AtomicU64>,
    shed: Arc<Mutex<Vec<u64>>>,
    record_tx: Sender<SentRecord>,
) {
    // Per-source sockets: same original source → same socket, so the
    // server sees a stable set of (addr, port) pairs per source.
    let mut udp_socks: HashMap<IpAddr, UdpSocket> = HashMap::new();
    let mut tcp_conns: HashMap<IpAddr, TcpStream> = HashMap::new();
    // One reconnect budget for the querier's whole run, jittered
    // per-slot so a thundering herd of reconnects decorrelates.
    let mut reconnect_budget = RetryBudget::new(
        cfg.reconnect.max_attempts,
        cfg.reconnect.base_us,
        cfg.reconnect.cap_us,
        cfg.seed.wrapping_add(idx as u64),
    );
    let mut scrap = vec![0u8; 65536];
    // Reused across jobs: one framing buffer per querier, not one
    // allocation per query.
    let mut frame_buf: Vec<u8> = Vec::with_capacity(4096);

    // Fast mode drains bursts: one blocking recv, then opportunistic
    // try_recv up to the batch cap, so a hot querier pays the channel's
    // wakeup synchronization once per batch instead of once per job.
    // Timed mode keeps per-job recv — between deadlines the querier
    // should be parked in recv, not holding jobs it cannot send yet.
    const RECV_BATCH: usize = 64;
    let mut batch: Vec<QueryJob> = Vec::with_capacity(RECV_BATCH);

    loop {
        match rx.recv() {
            Ok(job) => batch.push(job),
            Err(_) => break, // channel closed and drained: done
        }
        if cfg.fast_mode {
            while batch.len() < RECV_BATCH {
                match rx.try_recv() {
                    Ok(job) => batch.push(job),
                    Err(_) => break,
                }
            }
        }
        for job in batch.drain(..) {
            if !cfg.fast_mode {
                let deadline_us = tracker.deadline_us(job.trace_us);
                // Deadline-aware shedding: a query already hopelessly
                // late would only push every later query later still;
                // record the seq and move on instead of stalling the
                // schedule behind it.
                if cfg.shed_lateness_us > 0
                    && clock.now_us() > deadline_us.saturating_add(cfg.shed_lateness_us)
                {
                    if tel::enabled() {
                        let k = replay_kinds();
                        tel::mark_at(
                            clock.now_us().saturating_mul(1_000),
                            k.shed,
                            job.seq,
                            clock.now_us().saturating_sub(deadline_us),
                        );
                    }
                    if let Ok(mut s) = shed.lock() {
                        s.push(job.seq);
                    }
                    continue;
                }
                // Behind schedule (a past deadline) returns immediately —
                // the paper's "send immediately" rule falls out of the
                // clock's sleep contract.
                clock.sleep_until_us(deadline_us);
            }
            let ok = match job.transport {
                Transport::Udp => {
                    let sock = udp_socks.entry(job.source).or_insert_with(|| {
                        let s = UdpSocket::bind("127.0.0.1:0").expect("bind querier socket");
                        s.set_nonblocking(true).expect("nonblocking");
                        s
                    });
                    // Drain any buffered responses so the kernel buffer
                    // never fills (responses are measured at the server for
                    // the fidelity experiments).
                    while let Ok(_n) = sock.recv(&mut scrap) {}
                    sock.send_to(&job.payload, cfg.target_udp).is_ok()
                }
                Transport::Tcp | Transport::Tls => {
                    let stream = match tcp_conns.get_mut(&job.source) {
                        Some(s) => Some(s),
                        None => match reconnect_with_backoff(cfg.target_tcp, &mut reconnect_budget)
                        {
                            Some(s) => {
                                s.set_nonblocking(true).ok();
                                tcp_conns.insert(job.source, s);
                                tcp_conns.get_mut(&job.source)
                            }
                            None => None,
                        },
                    };
                    match stream {
                        Some(s) => {
                            use std::io::Read;
                            while let Ok(n) = s.read(&mut scrap) {
                                if n == 0 {
                                    break;
                                }
                            }
                            frame_into(&job.payload, &mut frame_buf);
                            match send_framed(s, &frame_buf) {
                                SendOutcome::Sent => true,
                                // Backpressure exhausted the budget but the
                                // connection is intact — keep it.
                                SendOutcome::Stalled => false,
                                SendOutcome::Dead => {
                                    // Connection died (idle-closed by the
                                    // server, or the server restarted):
                                    // reconnect with backoff and resend.
                                    tcp_conns.remove(&job.source);
                                    match reconnect_with_backoff(
                                        cfg.target_tcp,
                                        &mut reconnect_budget,
                                    ) {
                                        Some(mut ns) => {
                                            let ok = send_framed(&mut ns, &frame_buf)
                                                == SendOutcome::Sent;
                                            ns.set_nonblocking(true).ok();
                                            tcp_conns.insert(job.source, ns);
                                            ok
                                        }
                                        None => false,
                                    }
                                }
                            }
                        }
                        None => false,
                    }
                }
            };
            let sent_us = clock.now_us().saturating_sub(origin_us);
            if tel::enabled() {
                let k = replay_kinds();
                // Signed µs error vs the trace deadline, at the source.
                let deadline_us = tracker.deadline_us(job.trace_us).saturating_sub(origin_us);
                let err_us = sent_us as i64 - deadline_us as i64;
                let kind = if ok { k.sent } else { k.error };
                tel::mark_at(sent_us.saturating_mul(1_000), kind, job.seq, err_us as u64);
            }
            if ok {
                let _ = record_tx.send(SentRecord {
                    seq: job.seq,
                    trace_us: job.trace_us,
                    sent_us,
                    querier: idx,
                    transport: job.transport,
                });
            } else {
                errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::RecordType;

    fn mk_trace(n: u64, gap_us: u64) -> Vec<TraceEntry> {
        (0..n)
            .map(|i| {
                TraceEntry::query(
                    1_000_000 + i * gap_us,
                    format!("10.0.0.{}:999", 1 + i % 50).parse().unwrap(),
                    "127.0.0.1:53".parse().unwrap(),
                    i as u16,
                    format!("q{i}.example.com").parse().unwrap(),
                    RecordType::A,
                )
            })
            .collect()
    }

    fn sink_socket() -> (UdpSocket, SocketAddr) {
        let s = UdpSocket::bind("127.0.0.1:0").unwrap();
        let a = s.local_addr().unwrap();
        (s, a)
    }

    #[test]
    fn replays_every_query() {
        let (_sink, addr) = sink_socket();
        let trace = mk_trace(200, 1000); // 1 ms apart
        let config = ReplayConfig {
            target_udp: addr,
            target_tcp: addr,
            fast_mode: true,
            ..Default::default()
        };
        let report = replay(&trace, &config);
        assert_eq!(report.total_sent, 200);
        assert_eq!(report.errors, 0);
        assert_eq!(report.distinct_sources, 50);
        // Every seq present exactly once.
        let mut seqs: Vec<u64> = report.sent.iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn timed_replay_respects_deadlines() {
        let (_sink, addr) = sink_socket();
        // 50 queries, 5 ms apart = 250 ms replay.
        let trace = mk_trace(50, 5000);
        let config = ReplayConfig {
            target_udp: addr,
            target_tcp: addr,
            ..Default::default()
        };
        let report = replay(&trace, &config);
        assert_eq!(report.total_sent, 50);
        let errs = report.timing_errors_us(trace[0].time_us, 1.0);
        // Send-side timing error must be tiny (well under the paper's
        // ±2.5 ms quartiles; allow slack for CI noise).
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean.abs() < 2_000.0, "mean error {mean} µs");
        // Loose single-query bound: under a loaded test runner one send
        // can be descheduled for tens of ms; the mean above is the
        // fidelity assertion, this only catches gross stalls.
        let max = errs.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max < 50_000.0, "max error {max} µs");
        // Total duration ≈ 245 ms + warmup.
        assert!(report.elapsed >= Duration::from_millis(240));
    }

    #[test]
    fn fast_mode_is_fast() {
        let (_sink, addr) = sink_socket();
        // Trace nominally lasts 10 s; fast mode must finish way sooner.
        let trace = mk_trace(1000, 10_000);
        let config = ReplayConfig {
            target_udp: addr,
            target_tcp: addr,
            fast_mode: true,
            ..Default::default()
        };
        let report = replay(&trace, &config);
        assert_eq!(report.total_sent, 1000);
        assert!(report.elapsed < Duration::from_secs(2), "elapsed {:?}", report.elapsed);
    }

    #[test]
    fn speedup_halves_duration() {
        let (_sink, addr) = sink_socket();
        let trace = mk_trace(20, 10_000); // 200 ms at 1x
        let config = ReplayConfig {
            target_udp: addr,
            target_tcp: addr,
            speed: 2.0,
            warmup: Duration::from_millis(10),
            ..Default::default()
        };
        let report = replay(&trace, &config);
        assert!(report.elapsed < Duration::from_millis(190), "elapsed {:?}", report.elapsed);
        assert_eq!(report.total_sent, 20);
    }

    #[test]
    fn same_source_seen_from_same_port() {
        // Replay over UDP to a recording sink: all packets from the same
        // original source must arrive from one (addr, port) — the
        // same-socket emulation property.
        let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
        sink.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        let addr = sink.local_addr().unwrap();
        let mut trace = mk_trace(40, 100);
        // Two sources only.
        for (i, e) in trace.iter_mut().enumerate() {
            e.src = format!("10.0.0.{}:999", 1 + i % 2).parse().unwrap();
        }
        let config = ReplayConfig {
            target_udp: addr,
            target_tcp: addr,
            fast_mode: true,
            distributors: 2,
            queriers_per_distributor: 2,
            ..Default::default()
        };
        let handle = {
            let trace = trace.clone();
            std::thread::spawn(move || replay(&trace, &config))
        };
        let mut seen: HashMap<u64, std::collections::HashSet<SocketAddr>> = HashMap::new();
        let mut buf = [0u8; 2048];
        let mut got = 0;
        while got < 40 {
            let Ok((len, from)) = sink.recv_from(&mut buf) else {
                break;
            };
            let msg = dns_wire::Message::decode(&buf[..len]).unwrap();
            // q<i>. names: even i ↔ source .1, odd ↔ .2.
            let name = msg.question().unwrap().name.to_string();
            let i: u64 = name[1..name.find('.').unwrap()].parse().unwrap();
            seen.entry(i % 2).or_default().insert(from);
            got += 1;
        }
        let report = handle.join().unwrap();
        assert_eq!(report.total_sent, 40);
        assert_eq!(got, 40, "sink saw everything");
        for (src, ports) in &seen {
            assert_eq!(ports.len(), 1, "source {src} used one socket: {ports:?}");
        }
        // And the two sources used different sockets.
        assert_ne!(
            seen[&0].iter().next().unwrap(),
            seen[&1].iter().next().unwrap()
        );
    }

    #[test]
    fn tcp_replay_reuses_connections() {
        // A tiny TCP sink that counts connections and messages.
        use std::io::Read;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let counts = Arc::new(AtomicU64::new(0));
        let msgs = Arc::new(AtomicU64::new(0));
        {
            let counts = counts.clone();
            let msgs = msgs.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    let Ok(mut stream) = stream else { break };
                    counts.fetch_add(1, Ordering::Relaxed);
                    let msgs = msgs.clone();
                    std::thread::spawn(move || {
                        let mut fb = dns_wire::framing::FrameBuffer::new();
                        let mut buf = [0u8; 4096];
                        while let Ok(n) = stream.read(&mut buf) {
                            if n == 0 {
                                break;
                            }
                            fb.extend(&buf[..n]);
                            while fb.next_message().is_some() {
                                msgs.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    });
                }
            });
        }
        let mut trace = mk_trace(30, 100);
        for e in trace.iter_mut() {
            e.transport = Transport::Tcp;
            e.src = "10.0.0.7:999".parse().unwrap(); // single source
        }
        let config = ReplayConfig {
            target_udp: addr,
            target_tcp: addr,
            fast_mode: true,
            distributors: 1,
            queriers_per_distributor: 1,
            ..Default::default()
        };
        let report = replay(&trace, &config);
        assert_eq!(report.total_sent, 30);
        // Give the sink a moment to drain.
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(msgs.load(Ordering::Relaxed), 30, "all messages arrived");
        assert_eq!(counts.load(Ordering::Relaxed), 1, "one reused connection");
    }

    #[test]
    fn large_trace_exceeding_channel_capacity_completes() {
        // Regression: with the collector spawned after the controller,
        // traces bigger than record_tx + all stage channels (~100k)
        // deadlocked the distribution tree.
        let (_sink, addr) = sink_socket();
        let trace = mk_trace(120_000, 10);
        let config = ReplayConfig {
            target_udp: addr,
            target_tcp: addr,
            fast_mode: true,
            ..Default::default()
        };
        let report = replay(&trace, &config);
        assert_eq!(report.total_sent, 120_000);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        let config = ReplayConfig::default();
        replay(&[], &config);
    }

    #[test]
    fn virtual_clock_replay_never_waits_on_wall_time() {
        // A timed (non-fast) replay of a trace nominally lasting 100
        // virtual seconds must complete immediately under a virtual
        // clock: every deadline is met by jumping the clock, proving
        // the engine reads time only through the abstraction.
        use crate::clock::VirtualClock;
        let (_sink, addr) = sink_socket();
        let trace = mk_trace(100, 1_000_000); // 1 s apart
        let config = ReplayConfig {
            target_udp: addr,
            target_tcp: addr,
            fast_mode: false,
            // Deadline shedding measures *real* scheduling lateness;
            // under a shared virtual clock a querier can look seconds
            // "late" purely from thread interleaving (another sleeper
            // already dragged the clock forward), so sim-style runs
            // disable it.
            guard: ldp_guard::GuardConfig::disabled(),
            ..Default::default()
        };
        let wall = std::time::Instant::now();
        let report = replay_with_clock(&trace, &config, Arc::new(VirtualClock::new()));
        assert_eq!(report.total_sent, 100);
        assert!(
            wall.elapsed() < Duration::from_secs(5),
            "virtual replay took {:?} of wall time",
            wall.elapsed()
        );
        // The report's elapsed time is virtual: ≥ the 99 s span.
        assert!(report.elapsed >= Duration::from_secs(99), "virtual elapsed {:?}", report.elapsed);
    }

    /// Mock writer scripted with per-call results, for send_framed.
    struct MockWriter {
        script: Vec<std::io::Result<usize>>,
        calls: usize,
        written: Vec<u8>,
    }

    impl MockWriter {
        /// `script` is in call order; once exhausted, writes succeed.
        fn new(mut script: Vec<std::io::Result<usize>>) -> Self {
            script.reverse();
            MockWriter { script, calls: 0, written: Vec::new() }
        }
    }

    impl std::io::Write for MockWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.calls += 1;
            match self.script.pop() {
                Some(Ok(n)) => {
                    let n = n.min(buf.len());
                    self.written.extend_from_slice(&buf[..n]);
                    Ok(n)
                }
                Some(Err(e)) => Err(e),
                // Script exhausted: accept everything.
                None => {
                    self.written.extend_from_slice(buf);
                    Ok(buf.len())
                }
            }
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn would_block() -> std::io::Error {
        std::io::Error::from(std::io::ErrorKind::WouldBlock)
    }

    #[test]
    fn send_framed_retries_would_block_without_reconnect() {
        // Three WouldBlocks before the kernel buffer drains: the old
        // write_all-based path declared the connection dead here.
        let mut w = MockWriter::new(vec![
            Err(would_block()),
            Err(would_block()),
            Err(would_block()),
        ]);
        assert_eq!(send_framed(&mut w, b"\x00\x03abc"), SendOutcome::Sent);
        assert_eq!(w.written, b"\x00\x03abc", "whole frame eventually written");
        assert!(w.calls >= 4, "retried past the WouldBlocks");
    }

    #[test]
    fn send_framed_resumes_partial_writes() {
        // 2 bytes, stall, 1 byte, stall, rest: the remaining-bytes loop
        // must pick up exactly where it left off.
        let mut w = MockWriter::new(vec![
            Ok(2usize),
            Err(would_block()),
            Ok(1),
            Err(would_block()),
        ]);
        assert_eq!(send_framed(&mut w, b"\x00\x03abc"), SendOutcome::Sent);
        assert_eq!(w.written, b"\x00\x03abc", "no bytes duplicated or skipped");
    }

    #[test]
    fn send_framed_interrupted_is_retried() {
        let mut w = MockWriter::new(vec![Err(std::io::Error::from(
            std::io::ErrorKind::Interrupted,
        ))]);
        assert_eq!(send_framed(&mut w, b"\x00\x01x"), SendOutcome::Sent);
        assert_eq!(w.written, b"\x00\x01x");
    }

    #[test]
    fn send_framed_eof_is_dead() {
        let mut w = MockWriter::new(vec![Ok(0)]);
        assert_eq!(send_framed(&mut w, b"\x00\x01x"), SendOutcome::Dead);
    }

    #[test]
    fn send_framed_real_error_is_dead() {
        let mut w = MockWriter::new(vec![Err(std::io::Error::from(
            std::io::ErrorKind::ConnectionReset,
        ))]);
        assert_eq!(send_framed(&mut w, b"\x00\x01x"), SendOutcome::Dead);
    }

    #[test]
    fn send_framed_permanent_stall_is_bounded() {
        // Every write blocks forever: the retry budget must expire (the
        // loop terminates) and, since nothing was written, the stream
        // is still usable → Stalled, not Dead.
        struct AlwaysBlock;
        impl std::io::Write for AlwaysBlock {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(would_block())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        assert_eq!(send_framed(&mut AlwaysBlock, b"\x00\x01x"), SendOutcome::Stalled);
    }

    #[test]
    fn send_framed_partial_then_permanent_stall_is_dead() {
        // A frame half-written then wedged desyncs the length-framed
        // stream; the connection must be declared dead.
        struct HalfThenBlock(bool);
        impl std::io::Write for HalfThenBlock {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if !self.0 {
                    self.0 = true;
                    Ok(buf.len() / 2)
                } else {
                    Err(would_block())
                }
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        assert_eq!(
            send_framed(&mut HalfThenBlock(false), b"\x00\x02ab"),
            SendOutcome::Dead
        );
    }

    #[test]
    fn reconnect_budget_exhaustion_is_bounded_not_a_spin_loop() {
        // A port that refuses connections: bind, learn the port, drop
        // the listener.
        let refused = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut budget = RetryBudget::new(2, 10, 50, 7);
        let t0 = std::time::Instant::now();
        assert!(reconnect_with_backoff(refused, &mut budget).is_none());
        assert!(budget.exhausted(), "budget drained by the dead target");
        assert_eq!(budget.used(), 2, "exactly max_attempts backoff draws");
        // Subsequent calls are one eager probe each — no backoff spin.
        for _ in 0..20 {
            assert!(reconnect_with_backoff(refused, &mut budget).is_none());
        }
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "exhausted budget must not keep sleeping: {:?}",
            t0.elapsed()
        );
        // A healed path refills the budget.
        let live = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        assert!(reconnect_with_backoff(live.local_addr().unwrap(), &mut budget).is_some());
        assert!(!budget.exhausted(), "successful connect resets the budget");
    }

    #[test]
    fn hopelessly_late_queries_are_shed_not_stalled_behind() {
        use crate::clock::VirtualClock;
        let (_sink, addr) = sink_socket();
        let trace = mk_trace(100, 1_000); // deadlines end ~149 ms in
        let config = ReplayConfig {
            target_udp: addr,
            target_tcp: addr,
            fast_mode: false,
            ..Default::default()
        };
        // Start the run with the clock already 10 s past every
        // deadline + the 250 ms default lateness allowance: every
        // query must be shed, none sent, and the run must not stall.
        let clock = Arc::new(VirtualClock::new());
        clock.advance_to(10_000_000);
        let report = replay_with_clock(&trace, &config, clock);
        assert_eq!(report.total_sent, 0, "nothing sendable");
        assert_eq!(report.errors, 0, "shed is not an error");
        assert_eq!(report.shed, (0..100).collect::<Vec<_>>(), "every seq recorded");
    }

    #[test]
    fn distributor_fails_over_to_surviving_querier() {
        // Two querier channels; child 0's receiver is dropped (the
        // querier "crashed"). Every job must still arrive, via child 1,
        // and the death must reach the supervisor.
        let (tx0, rx0) = bounded::<QueryJob>(64);
        let (tx1, rx1) = bounded::<QueryJob>(64);
        drop(rx0);
        let (ctl_tx, ctl_rx) = bounded::<QueryJob>(64);
        let payload: Arc<[u8]> = vec![0u8; 4].into();
        for seq in 0..20u64 {
            ctl_tx
                .send(QueryJob {
                    seq,
                    trace_us: 0,
                    source: format!("10.9.0.{}", 1 + seq % 10).parse().unwrap(),
                    transport: Transport::Udp,
                    payload: payload.clone(),
                })
                .unwrap();
        }
        drop(ctl_tx);
        let supervisor = Mutex::new(Supervisor::new(Default::default(), 2, 0));
        let clock: Arc<dyn ReplayClock> = Arc::new(crate::clock::VirtualClock::new());
        let redispatched = AtomicU64::new(0);
        let errors = AtomicU64::new(0);
        let txs = [tx0, tx1];
        distribute(ctl_rx, &txs, 64, 0, &supervisor, &clock, &redispatched, &errors);
        drop(txs);
        let mut got: Vec<u64> = rx1.iter().map(|j| j.seq).collect();
        got.sort_unstable();
        got.dedup(); // failover is at-least-once
        assert_eq!(got, (0..20).collect::<Vec<_>>(), "child 1 saw every job");
        assert_eq!(errors.load(Ordering::Relaxed), 0, "no jobs lost");
        assert!(redispatched.load(Ordering::Relaxed) >= 1, "failed jobs re-dispatched");
        // Slot 0 was reported dead: a poll far in the future yields its
        // (budgeted) restart.
        let actions = supervisor.lock().unwrap().poll(10_000_000);
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, ldp_guard::SupervisorAction::Restart { slot: 0, .. })),
            "supervisor learned of the death: {actions:?}"
        );
    }
}
