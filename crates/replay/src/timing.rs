//! Replay timing (paper §2.6, "Correct timing for replayed queries").
//!
//! LDplayer tracks *trace time* and *real time* in parallel. For query
//! `i` with trace timestamp t̄ᵢ, the relative trace time Δt̄ᵢ = t̄ᵢ − t̄₁ is
//! the delay the replay should reproduce; the relative real time
//! Δtᵢ = tᵢ − t₁ is the delay that has already elapsed (input processing,
//! distribution). The querier therefore schedules the send ΔTᵢ = Δt̄ᵢ − Δtᵢ
//! in the future — and if the pipeline has fallen behind (ΔTᵢ ≤ 0) sends
//! immediately, continuously re-anchoring so errors do not accumulate.

use std::time::{Duration, Instant};

/// Tracks trace-time vs real-time and computes per-query send delays.
#[derive(Debug, Clone, Copy)]
pub struct TimingTracker {
    /// t̄₁: trace timestamp of the first query (microseconds).
    trace_start_us: u64,
    /// t₁: real time at the synchronization message.
    real_start: Instant,
    /// Optional speedup factor (2.0 = replay twice as fast).
    speed: f64,
}

impl TimingTracker {
    /// Start tracking: called when the time-synchronization message
    /// arrives, with the first query's trace timestamp.
    pub fn start(trace_start_us: u64, real_start: Instant) -> Self {
        TimingTracker {
            trace_start_us,
            real_start,
            speed: 1.0,
        }
    }

    /// Replay faster or slower than real time.
    pub fn with_speed(mut self, speed: f64) -> Self {
        assert!(speed > 0.0);
        self.speed = speed;
        self
    }

    /// The absolute instant at which a query stamped `trace_us` should
    /// be sent.
    pub fn deadline(&self, trace_us: u64) -> Instant {
        let delta_trace = trace_us.saturating_sub(self.trace_start_us);
        let scaled = (delta_trace as f64 / self.speed) as u64;
        self.real_start + Duration::from_micros(scaled)
    }

    /// ΔTᵢ: how long to wait from `now` before sending the query
    /// stamped `trace_us`. `None` means the replay has fallen behind —
    /// send immediately without a timer (paper: "if the input
    /// processing falls behind (ΔTᵢ ≤ 0), LDplayer sends the query
    /// immediately").
    pub fn delay_from(&self, trace_us: u64, now: Instant) -> Option<Duration> {
        let deadline = self.deadline(trace_us);
        deadline.checked_duration_since(now)
    }
}

/// The same computation over plain numbers (virtual clocks), for the
/// simulator-driven replays: returns the send time in seconds given the
/// trace time, trace origin and replay origin.
pub fn virtual_deadline(trace_us: u64, trace_start_us: u64, replay_start_s: f64, speed: f64) -> f64 {
    replay_start_s + (trace_us.saturating_sub(trace_start_us)) as f64 / 1e6 / speed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_tracks_trace_offsets() {
        let t0 = Instant::now();
        let tr = TimingTracker::start(1_000_000, t0);
        assert_eq!(tr.deadline(1_000_000), t0);
        assert_eq!(tr.deadline(1_500_000), t0 + Duration::from_millis(500));
        // Before the start clamps to the origin.
        assert_eq!(tr.deadline(900_000), t0);
    }

    #[test]
    fn delay_positive_when_ahead() {
        let t0 = Instant::now();
        let tr = TimingTracker::start(0, t0);
        let d = tr.delay_from(2_000_000, t0 + Duration::from_millis(500)).unwrap();
        assert!((d.as_millis() as i64 - 1500).abs() <= 1, "delay {d:?}");
    }

    #[test]
    fn behind_schedule_sends_immediately() {
        let t0 = Instant::now();
        let tr = TimingTracker::start(0, t0);
        // Real time is already past the query's deadline.
        assert!(tr.delay_from(100_000, t0 + Duration::from_millis(200)).is_none());
    }

    #[test]
    fn accumulated_input_delay_is_removed() {
        // The defining property: even if the previous query was sent
        // late, the next deadline is computed from the *origin*, not
        // from the previous send, so the error does not accumulate.
        let t0 = Instant::now();
        let tr = TimingTracker::start(0, t0);
        // Query at Δt̄=10 ms was processed at Δt=14 ms (4 ms late, sent
        // immediately). The next query at Δt̄=30 ms still gets its full
        // deadline at t0+30 ms.
        let now = t0 + Duration::from_millis(14);
        assert!(tr.delay_from(10_000, now).is_none());
        let d = tr.delay_from(30_000, now).unwrap();
        assert!((d.as_micros() as i64 - 16_000).abs() <= 50, "delay {d:?}");
    }

    #[test]
    fn speedup_compresses_deadlines() {
        let t0 = Instant::now();
        let tr = TimingTracker::start(0, t0).with_speed(2.0);
        assert_eq!(tr.deadline(1_000_000), t0 + Duration::from_millis(500));
    }

    #[test]
    fn virtual_deadline_matches() {
        let d = virtual_deadline(2_500_000, 500_000, 100.0, 1.0);
        assert!((d - 102.0).abs() < 1e-9);
        let d = virtual_deadline(2_500_000, 500_000, 100.0, 2.0);
        assert!((d - 101.0).abs() < 1e-9);
    }
}
