//! Replay timing (paper §2.6, "Correct timing for replayed queries").
//!
//! LDplayer tracks *trace time* and *real time* in parallel. For query
//! `i` with trace timestamp t̄ᵢ, the relative trace time Δt̄ᵢ = t̄ᵢ − t̄₁ is
//! the delay the replay should reproduce; the relative real time
//! Δtᵢ = tᵢ − t₁ is the delay that has already elapsed (input processing,
//! distribution). The querier therefore schedules the send ΔTᵢ = Δt̄ᵢ − Δtᵢ
//! in the future — and if the pipeline has fallen behind (ΔTᵢ ≤ 0) sends
//! immediately, continuously re-anchoring so errors do not accumulate.
//!
//! All arithmetic here is over microseconds on a [`crate::ReplayClock`]
//! — never `Instant` — so the identical tracker drives wall-clock and
//! virtual-time replays (rule D1).

/// Tracks trace-time vs replay-clock time and computes per-query send
/// deadlines. Times are microseconds on the replay clock, whose origin
/// is the start of the run.
#[derive(Debug, Clone, Copy)]
pub struct TimingTracker {
    /// t̄₁: trace timestamp of the first query (microseconds).
    trace_start_us: u64,
    /// t₁: replay-clock time of the synchronization point (the first
    /// query's deadline), typically the warm-up offset.
    origin_us: u64,
    /// Optional speedup factor (2.0 = replay twice as fast).
    speed: f64,
}

impl TimingTracker {
    /// Start tracking: called at the time-synchronization point, with
    /// the first query's trace timestamp and its replay-clock deadline.
    pub fn start(trace_start_us: u64, origin_us: u64) -> Self {
        TimingTracker {
            trace_start_us,
            origin_us,
            speed: 1.0,
        }
    }

    /// Replay faster or slower than real time.
    pub fn with_speed(mut self, speed: f64) -> Self {
        assert!(speed > 0.0);
        self.speed = speed;
        self
    }

    /// The replay-clock time (µs) at which a query stamped `trace_us`
    /// should be sent.
    pub fn deadline_us(&self, trace_us: u64) -> u64 {
        let delta_trace = trace_us.saturating_sub(self.trace_start_us);
        let scaled = (delta_trace as f64 / self.speed) as u64;
        self.origin_us + scaled
    }

    /// ΔTᵢ: how many µs to wait from `now_us` before sending the query
    /// stamped `trace_us`. `None` means the replay has fallen behind —
    /// send immediately without a timer (paper: "if the input
    /// processing falls behind (ΔTᵢ ≤ 0), LDplayer sends the query
    /// immediately").
    pub fn delay_from(&self, trace_us: u64, now_us: u64) -> Option<u64> {
        let deadline = self.deadline_us(trace_us);
        deadline.checked_sub(now_us)
    }
}

/// The same computation in seconds (the simulator's native unit), for
/// simulator-driven replays: returns the send time given the trace
/// time, trace origin and replay origin.
pub fn virtual_deadline(trace_us: u64, trace_start_us: u64, replay_start_s: f64, speed: f64) -> f64 {
    replay_start_s + (trace_us.saturating_sub(trace_start_us)) as f64 / 1e6 / speed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_tracks_trace_offsets() {
        let tr = TimingTracker::start(1_000_000, 50_000);
        assert_eq!(tr.deadline_us(1_000_000), 50_000);
        assert_eq!(tr.deadline_us(1_500_000), 550_000);
        // Before the start clamps to the origin.
        assert_eq!(tr.deadline_us(900_000), 50_000);
    }

    #[test]
    fn delay_positive_when_ahead() {
        let tr = TimingTracker::start(0, 0);
        let d = tr.delay_from(2_000_000, 500_000).unwrap();
        assert_eq!(d, 1_500_000);
    }

    #[test]
    fn behind_schedule_sends_immediately() {
        let tr = TimingTracker::start(0, 0);
        // Replay-clock time is already past the query's deadline.
        assert!(tr.delay_from(100_000, 200_000).is_none());
    }

    #[test]
    fn accumulated_input_delay_is_removed() {
        // The defining property: even if the previous query was sent
        // late, the next deadline is computed from the *origin*, not
        // from the previous send, so the error does not accumulate.
        let tr = TimingTracker::start(0, 0);
        // Query at Δt̄=10 ms was processed at Δt=14 ms (4 ms late, sent
        // immediately). The next query at Δt̄=30 ms still gets its full
        // deadline at 30 ms.
        let now_us = 14_000;
        assert!(tr.delay_from(10_000, now_us).is_none());
        assert_eq!(tr.delay_from(30_000, now_us), Some(16_000));
    }

    #[test]
    fn speedup_compresses_deadlines() {
        let tr = TimingTracker::start(0, 0).with_speed(2.0);
        assert_eq!(tr.deadline_us(1_000_000), 500_000);
    }

    #[test]
    fn warmup_shifts_every_deadline() {
        let tr = TimingTracker::start(7_000_000, 100_000);
        assert_eq!(tr.deadline_us(7_000_000), 100_000);
        assert_eq!(tr.deadline_us(7_250_000), 350_000);
    }

    #[test]
    fn virtual_deadline_matches() {
        let d = virtual_deadline(2_500_000, 500_000, 100.0, 1.0);
        assert!((d - 102.0).abs() < 1e-9);
        let d = virtual_deadline(2_500_000, 500_000, 100.0, 2.0);
        assert!((d - 101.0).abs() < 1e-9);
    }

    #[test]
    fn pause_resume_keeps_original_deadlines_without_a_burst() {
        // Checkpoint/resume contract: a run killed at Δt̄ = 300 ms and
        // resumed at replay-clock 500 ms rebuilds its tracker from the
        // checkpointed baseline (t̄₁, t₁) — NOT re-anchored at the
        // resume time. Queries that fell due during the outage send
        // immediately; everything later keeps its original absolute
        // deadline, so there is no post-resume burst and no drift.
        let paused = TimingTracker::start(0, 0);
        let resumed = TimingTracker::start(0, 0); // baseline from checkpoint
        let resume_now_us = 500_000;
        assert!(resumed.delay_from(350_000, resume_now_us).is_none());
        assert!(resumed.delay_from(450_000, resume_now_us).is_none());
        for trace_us in [600_000u64, 700_000, 1_000_000, 5_000_000] {
            assert_eq!(resumed.deadline_us(trace_us), paused.deadline_us(trace_us));
            assert_eq!(
                resumed.delay_from(trace_us, resume_now_us),
                Some(trace_us - resume_now_us),
                "post-resume deadline drifted for trace_us={trace_us}"
            );
        }
    }

    #[test]
    fn only_outage_window_queries_are_due_at_resume() {
        // The "burst" after a resume is bounded by the outage itself:
        // exactly the queries whose deadlines fell inside the down
        // window are overdue, never the whole remaining trace.
        let tr = TimingTracker::start(0, 0);
        let resume_now_us = 500_000;
        let due = (0..100u64)
            .map(|i| i * 10_000)
            .filter(|&t| tr.delay_from(t, resume_now_us).is_none())
            .count();
        assert_eq!(due, 50, "only deadlines strictly before the resume point are overdue");
    }

    #[test]
    fn re_anchoring_at_resume_time_would_drift_every_deadline() {
        // The wrong restore — anchoring the resumed tracker at the
        // resume clock time — shifts every remaining deadline by the
        // outage length. Pin the contrast so the restore path cannot
        // quietly regress to it.
        let correct = TimingTracker::start(0, 0);
        let wrong = TimingTracker::start(300_000, 500_000);
        assert_eq!(correct.deadline_us(600_000), 600_000);
        assert_eq!(wrong.deadline_us(600_000), 800_000, "drifted by the 200 ms outage");
    }
}
