//! Same-source sticky distribution (paper §2.6, "Emulating queries from
//! the same source").
//!
//! Queries from one original source IP must reach the same end querier,
//! because that querier owns the source's emulated socket (and, for
//! TCP, its reusable connection). Controller and distributors use the
//! same rule: route by the recorded assignment for a known source, pick
//! the least-loaded child for a new one.

use std::collections::HashMap;
use std::net::IpAddr;

/// Sticky source-to-child router used at each distribution level.
#[derive(Debug, Clone)]
pub struct StickyRouter {
    children: usize,
    assignment: HashMap<IpAddr, usize>,
    load: Vec<u64>,
}

impl StickyRouter {
    /// Router over `children` downstream entities.
    pub fn new(children: usize) -> Self {
        assert!(children > 0, "router needs at least one child");
        StickyRouter {
            children,
            assignment: HashMap::new(),
            load: vec![0; children],
        }
    }

    /// Route a query from `source`: same source → same child, forever.
    pub fn route(&mut self, source: IpAddr) -> usize {
        if let Some(&child) = self.assignment.get(&source) {
            self.load[child] += 1;
            return child;
        }
        // New source: least-loaded child (random-ish tie-break by map
        // iteration order would be nondeterministic; index order is
        // deterministic and keeps the experiment repeatable).
        let child = (0..self.children)
            .min_by_key(|&c| self.load[c])
            .expect("children > 0");
        self.assignment.insert(source, child);
        self.load[child] += 1;
        child
    }

    /// Queries routed per child so far.
    pub fn loads(&self) -> &[u64] {
        &self.load
    }

    /// Distinct sources seen.
    pub fn sources(&self) -> usize {
        self.assignment.len()
    }

    /// Number of children.
    pub fn children(&self) -> usize {
        self.children
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn same_source_same_child() {
        let mut r = StickyRouter::new(4);
        let first = r.route(ip("10.0.0.1"));
        for _ in 0..100 {
            assert_eq!(r.route(ip("10.0.0.1")), first);
        }
    }

    #[test]
    fn new_sources_balance() {
        let mut r = StickyRouter::new(4);
        for i in 0..200u32 {
            let octets = i.to_be_bytes();
            r.route(IpAddr::from([10, octets[1], octets[2], octets[3]]));
        }
        let loads = r.loads();
        assert_eq!(loads.iter().sum::<u64>(), 200);
        for &l in loads {
            assert_eq!(l, 50, "even split for uniform sources: {loads:?}");
        }
    }

    #[test]
    fn heavy_source_stays_put() {
        let mut r = StickyRouter::new(3);
        let heavy = ip("10.0.0.9");
        let child = r.route(heavy);
        for i in 0..50u8 {
            r.route(IpAddr::from([10, 0, 1, i]));
            assert_eq!(r.route(heavy), child);
        }
        assert_eq!(r.sources(), 51);
    }

    #[test]
    fn single_child_takes_all() {
        let mut r = StickyRouter::new(1);
        assert_eq!(r.route(ip("1.1.1.1")), 0);
        assert_eq!(r.route(ip("2.2.2.2")), 0);
    }

    #[test]
    #[should_panic(expected = "at least one child")]
    fn zero_children_panics() {
        StickyRouter::new(0);
    }

    #[test]
    fn deterministic_assignment() {
        let run = || {
            let mut r = StickyRouter::new(5);
            (0..100u8)
                .map(|i| r.route(IpAddr::from([10, 0, 0, i])))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
