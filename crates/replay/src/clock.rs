//! The replay clock abstraction (rule D1).
//!
//! Every read of "now" in the replay engine flows through
//! [`ReplayClock`], so the same engine runs against the wall clock
//! ([`WallClock`]) or fully virtual time ([`VirtualClock`]) — and
//! sim-mode replay can never accidentally observe real time. This file
//! is the one place in the replay crate allowed to call
//! `Instant::now()` (see `ldp-lint.allow`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic clock measured in microseconds since its origin.
///
/// The origin is the moment the replay run starts; warm-up and query
/// deadlines are offsets from it (see [`crate::TimingTracker`]).
pub trait ReplayClock: Send + Sync {
    /// Microseconds elapsed since the clock's origin.
    fn now_us(&self) -> u64;

    /// Block the calling thread until `now_us() >= deadline_us`.
    /// Returns immediately when the deadline has already passed.
    /// Virtual clocks may jump rather than wait.
    fn sleep_until_us(&self, deadline_us: u64);
}

/// The real clock: microseconds of wall time since construction.
///
/// `sleep_until_us` uses the hybrid wait the paper's timing fidelity
/// needs — sleep until ~1 ms before the deadline, then spin — because
/// plain `sleep` cannot place sends with sub-millisecond accuracy.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is the moment of the call.
    pub fn start() -> Self {
        WallClock { origin: Instant::now() }
    }
}

impl ReplayClock for WallClock {
    fn now_us(&self) -> u64 {
        Instant::now()
            .saturating_duration_since(self.origin)
            .as_micros() as u64
    }

    fn sleep_until_us(&self, deadline_us: u64) {
        let deadline = self.origin + Duration::from_micros(deadline_us);
        loop {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let remaining = deadline - now;
            if remaining > Duration::from_micros(1200) {
                std::thread::sleep(remaining - Duration::from_micros(1000));
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

/// A virtual clock: time only moves when a sleeper pushes it forward,
/// so a "replay" under it runs as fast as the machine allows while the
/// recorded timestamps still land exactly on their deadlines. This is
/// the clock sim-mode replay and deterministic tests use.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_us: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at its origin (t = 0).
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Push time forward to `at_us` (never backwards).
    pub fn advance_to(&self, at_us: u64) {
        self.now_us.fetch_max(at_us, Ordering::SeqCst);
    }
}

impl ReplayClock for VirtualClock {
    fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::SeqCst)
    }

    fn sleep_until_us(&self, deadline_us: u64) {
        // Virtual time: the sleeper itself drags the clock forward.
        self.advance_to(deadline_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_advances_and_sleeps() {
        let clock = WallClock::start();
        let t0 = clock.now_us();
        clock.sleep_until_us(t0 + 2_000);
        let t1 = clock.now_us();
        assert!(t1 >= t0 + 2_000, "slept to {t1} from {t0}");
        // Past deadlines return immediately.
        clock.sleep_until_us(0);
    }

    #[test]
    fn virtual_clock_jumps_instead_of_waiting() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_us(), 0);
        let wall = Instant::now();
        clock.sleep_until_us(60_000_000); // one virtual minute
        assert_eq!(clock.now_us(), 60_000_000);
        assert!(wall.elapsed() < Duration::from_secs(1));
        // Never backwards.
        clock.sleep_until_us(1);
        assert_eq!(clock.now_us(), 60_000_000);
        clock.advance_to(70_000_000);
        assert_eq!(clock.now_us(), 70_000_000);
    }
}
