//! Arrival capture at the server side: the fidelity experiments (paper
//! §4.2) compare *arrival* timing at the server against the original
//! trace, so this sink records a microsecond timestamp and the unique
//! query tag for every datagram, optionally answering from an engine.

use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dns_server::ServerEngine;
use dns_wire::Message;

/// One captured arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Sequence parsed from the unique query-name tag, if present.
    pub seq: Option<u64>,
    /// Arrival time, µs since the capture server started.
    pub recv_us: u64,
    /// Datagram size in bytes.
    pub bytes: usize,
}

/// Extract the sequence from a first label like `q123` / `ldp42`.
pub fn parse_tag_seq(label: &[u8]) -> Option<u64> {
    let digits: Vec<u8> = label
        .iter()
        .copied()
        .skip_while(|b| !b.is_ascii_digit())
        .take_while(|b| b.is_ascii_digit())
        .collect();
    if digits.is_empty() {
        return None;
    }
    std::str::from_utf8(&digits).ok()?.parse().ok()
}

/// A UDP capture server on real sockets.
pub struct CaptureServer {
    /// Where it listens.
    pub addr: SocketAddr,
    /// The recorded arrivals (shared with receiver threads).
    pub arrivals: Arc<Mutex<Vec<Arrival>>>,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl CaptureServer {
    /// Bind and start receiving on `workers` threads. If `engine` is
    /// given, every parsed query is answered (so replays against a real
    /// responding server can be captured too).
    pub fn start(workers: usize, engine: Option<Arc<ServerEngine>>) -> std::io::Result<CaptureServer> {
        let sock = UdpSocket::bind("127.0.0.1:0")?;
        let addr = sock.local_addr()?;
        let arrivals = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let start = Instant::now();
        sock.set_read_timeout(Some(std::time::Duration::from_millis(50)))?;

        let mut threads = Vec::new();
        for _ in 0..workers.max(1) {
            let sock = sock.try_clone()?;
            let arrivals = arrivals.clone();
            let stop = stop.clone();
            let engine = engine.clone();
            threads.push(std::thread::spawn(move || {
                let mut buf = vec![0u8; 65535];
                let mut local: Vec<Arrival> = Vec::with_capacity(4096);
                while !stop.load(Ordering::Relaxed) {
                    match sock.recv_from(&mut buf) {
                        Ok((len, peer)) => {
                            let recv_us = start.elapsed().as_micros() as u64;
                            let seq = Message::decode(&buf[..len]).ok().and_then(|m| {
                                let q = m.question()?;
                                let label = q.name.leftmost()?;
                                parse_tag_seq(label)
                            });
                            local.push(Arrival { seq, recv_us, bytes: len });
                            if let Some(engine) = &engine {
                                if let Some(reply) = engine.handle_udp_bytes(peer.ip(), &buf[..len]) {
                                    let _ = sock.send_to(&reply, peer);
                                }
                            }
                            // Batch-flush to the shared log to keep the
                            // hot path allocation-free.
                            if local.len() >= 4096 {
                                arrivals.lock().unwrap().append(&mut local);
                            }
                        }
                        Err(_) => {
                            if !local.is_empty() {
                                arrivals.lock().unwrap().append(&mut local);
                            }
                        }
                    }
                }
                if !local.is_empty() {
                    arrivals.lock().unwrap().append(&mut local);
                }
            }));
        }
        Ok(CaptureServer {
            addr,
            arrivals,
            stop,
            threads,
        })
    }

    /// Stop receiving and return all arrivals sorted by time.
    pub fn finish(self) -> Vec<Arrival> {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads {
            let _ = t.join();
        }
        let mut arrivals = Arc::try_unwrap(self.arrivals)
            .map(|m| m.into_inner().unwrap())
            .unwrap_or_else(|arc| arc.lock().unwrap().clone());
        arrivals.sort_by_key(|a| a.recv_us);
        arrivals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::{Name, RecordType};
    use std::time::Duration;

    #[test]
    fn parse_tag_variants() {
        assert_eq!(parse_tag_seq(b"q123"), Some(123));
        assert_eq!(parse_tag_seq(b"ldp42"), Some(42));
        assert_eq!(parse_tag_seq(b"u0"), Some(0));
        assert_eq!(parse_tag_seq(b"www"), None);
        assert_eq!(parse_tag_seq(b"abc12x99"), Some(12), "first run wins");
    }

    #[test]
    fn captures_arrivals_in_order() {
        let server = CaptureServer::start(2, None).unwrap();
        let addr = server.addr;
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        for i in 0..20u64 {
            let q = Message::query(
                i as u16,
                format!("q{i}.example.com").parse::<Name>().unwrap(),
                RecordType::A,
            );
            sock.send_to(&q.encode(), addr).unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(100));
        let arrivals = server.finish();
        assert_eq!(arrivals.len(), 20);
        // Sorted by time; seqs decoded.
        let seqs: Vec<u64> = arrivals.iter().filter_map(|a| a.seq).collect();
        assert_eq!(seqs.len(), 20);
        assert!(arrivals.windows(2).all(|w| w[0].recv_us <= w[1].recv_us));
    }

    #[test]
    fn non_dns_noise_recorded_without_seq() {
        let server = CaptureServer::start(1, None).unwrap();
        let addr = server.addr;
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.send_to(b"not dns at all", addr).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let arrivals = server.finish();
        assert_eq!(arrivals.len(), 1);
        assert_eq!(arrivals[0].seq, None);
        assert_eq!(arrivals[0].bytes, 14);
    }
}
