//! # dns-resolver
//!
//! Recursive DNS resolution for the LDplayer reproduction: the
//! [`ldp_cache`]-backed resolver cache (capacity-bounded, with in-flight
//! query aggregation), a synchronous iterative resolver (used by the
//! zone constructor's one-time cold-cache walks, paper §2.3), and an
//! event-driven recursive resolver host for the network simulator (the
//! "Recursive Server" of Figures 1 and 2).

#![warn(missing_docs)]

pub mod cache;
pub mod iterative;
pub mod sim_resolver;

pub use cache::{Cache, CacheConfig, CachedAnswer, PolicyKind, PrefetchConfig};
pub use iterative::{IterativeResolver, Resolution, ResolveError, Upstream};
pub use sim_resolver::{
    AnswerClass, AnswerEvent, ResolverSnapshot, ResolverStats, SimResolver,
};
