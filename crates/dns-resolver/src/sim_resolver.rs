//! The recursive resolver as a [`netsim`] host: accepts stub queries
//! over UDP, walks the (emulated) hierarchy iteratively with cache and
//! retries, and answers the stub — the "Recursive Server" box in the
//! paper's Figure 1/2.
//!
//! Referrals must carry glue (our zone constructor always emits glue for
//! in-zone nameservers); glue-less referrals answer SERVFAIL, a
//! documented simplification of this host (the synchronous
//! [`crate::IterativeResolver`] handles glue-less chains and is what
//! zone construction uses).

use std::collections::BTreeMap;
use std::net::{IpAddr, SocketAddr};

use dns_wire::{Message, Name, RData, Rcode, RecordType};
use ldp_telemetry as tel;
use netsim::{Ctx, Host, PacketBytes, SimDuration, TcpEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cache::{Cache, CachedAnswer};

/// Interned per-attempt lifecycle marks for the resolver. The `a` key
/// is the task id, so a whole resolution chain (stub → upstream
/// attempts → failovers → answer/servfail) is kept or dropped together
/// under sampling, and stamped with the simulator's `ctx.now()`.
struct RsvKinds {
    stub: tel::KindId,
    cache_hit: tel::KindId,
    upstream: tel::KindId,
    timeout: tel::KindId,
    failover: tel::KindId,
    servfail: tel::KindId,
    answer: tel::KindId,
}

fn rsv_kinds() -> &'static RsvKinds {
    static K: std::sync::OnceLock<RsvKinds> = std::sync::OnceLock::new();
    K.get_or_init(|| RsvKinds {
        stub: tel::register_kind("rsv.stub"),
        cache_hit: tel::register_kind("rsv.cache_hit"),
        upstream: tel::register_kind("rsv.upstream"),
        timeout: tel::register_kind("rsv.timeout"),
        failover: tel::register_kind("rsv.failover"),
        servfail: tel::register_kind("rsv.servfail"),
        answer: tel::register_kind("rsv.answer"),
    })
}

/// Per-resolution state machine.
#[derive(Debug)]
struct Task {
    stub: SocketAddr,
    stub_query: Message,
    /// The stub's original question name (cache key).
    orig_qname: Name,
    qname: Name,
    qtype: RecordType,
    servers: Vec<IpAddr>,
    server_idx: usize,
    answers: Vec<dns_wire::Record>,
    cname_hops: usize,
    retries: usize,
    outstanding: Option<u16>,
    /// Timeout for the current attempt (grows under backoff).
    cur_timeout: SimDuration,
}

/// Counters for the resolver host.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResolverStats {
    /// Stub queries received.
    pub stub_queries: u64,
    /// Answers returned to stubs.
    pub stub_answers: u64,
    /// Upstream (iterative) queries sent.
    pub upstream_queries: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Resolutions that failed (SERVFAIL to the stub).
    pub failures: u64,
}

/// The simulated recursive resolver host.
pub struct SimResolver {
    addr: SocketAddr,
    root_hints: Vec<IpAddr>,
    cache: Cache,
    delegations: BTreeMap<Name, Vec<IpAddr>>,
    tasks: BTreeMap<u64, Task>,
    upstream_map: BTreeMap<u16, u64>,
    next_task: u64,
    next_id: u16,
    /// Upstream query timeout (the base timeout when backoff is on).
    pub timeout: SimDuration,
    /// Max retries across servers before SERVFAIL.
    pub max_retries: usize,
    /// Exponential backoff with decorrelated jitter: when set, each
    /// retry's timeout is drawn uniformly from `[timeout, 3 × prev]`
    /// and capped here (AWS-style decorrelated jitter — desynchronizes
    /// retry storms during an outage). `None` keeps a fixed per-attempt
    /// timeout.
    pub backoff_cap: Option<SimDuration>,
    /// Spread each query's first nameserver across the server list by
    /// task id instead of always starting at index 0 — approximates
    /// real resolvers' server selection so an outage of some servers
    /// only delays the share of queries that pick them first.
    pub rotate_servers: bool,
    /// Live counters.
    pub stats: ResolverStats,
    /// Seeded RNG for backoff jitter (rule D3: no ambient randomness).
    rng: StdRng,
    /// Reusable encode buffer + compression interner for all sends.
    scratch: dns_wire::EncodeScratch,
}

impl SimResolver {
    /// New resolver at `addr` using `root_hints`.
    pub fn new(addr: SocketAddr, root_hints: Vec<IpAddr>) -> Self {
        SimResolver {
            addr,
            root_hints,
            cache: Cache::new(),
            delegations: BTreeMap::new(),
            tasks: BTreeMap::new(),
            upstream_map: BTreeMap::new(),
            next_task: 0,
            next_id: 1,
            timeout: SimDuration::from_secs(2),
            max_retries: 6,
            backoff_cap: None,
            rotate_servers: false,
            stats: ResolverStats::default(),
            rng: StdRng::seed_from_u64(0x1d9_c0de),
            scratch: dns_wire::EncodeScratch::new(),
        }
    }

    /// First-server index for a task over an `n`-long server list.
    fn start_idx(&self, task_id: u64, n: usize) -> usize {
        if self.rotate_servers && n > 0 {
            (task_id as usize) % n
        } else {
            0
        }
    }

    /// Grow a task's timeout for its next attempt (decorrelated
    /// jitter), or keep it fixed when backoff is disabled.
    fn next_timeout(&mut self, prev: SimDuration) -> SimDuration {
        let Some(cap) = self.backoff_cap else {
            return self.timeout;
        };
        let base = self.timeout.as_nanos();
        let hi = prev.as_nanos().saturating_mul(3).max(base + 1);
        let span = (hi - base) as f64;
        let drawn = base + (self.rng.gen::<f64>() * span) as u64;
        SimDuration::from_nanos(drawn.min(cap.as_nanos()))
    }

    /// The resolver's service address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn fresh_id(&mut self) -> u16 {
        self.next_id = self.next_id.wrapping_add(1);
        if self.next_id == 0 {
            self.next_id = 1;
        }
        self.next_id
    }

    fn best_servers(&self, qname: &Name) -> Vec<IpAddr> {
        let mut cur = Some(qname.clone());
        while let Some(name) = cur {
            if let Some(addrs) = self.delegations.get(&name) {
                return addrs.clone();
            }
            cur = name.parent();
        }
        self.root_hints.clone()
    }

    fn handle_stub_query(&mut self, ctx: &mut Ctx<'_>, from: SocketAddr, query: Message) {
        self.stats.stub_queries += 1;
        if tel::enabled() {
            // `next_task` is the id this query gets if it misses the
            // cache, tying the stub mark to the rest of its chain.
            tel::mark_at(ctx.now().as_nanos(), rsv_kinds().stub, self.next_task, 0);
        }
        let Some(q) = query.question().cloned() else {
            let mut resp = query.response_to();
            resp.rcode = Rcode::FormErr;
            ctx.send_udp(self.addr, from, resp.encode_into(&mut self.scratch));
            return;
        };
        // Cache hit answers immediately.
        if let Some(hit) = self.cache.get(&q.name, q.qtype, ctx.now().as_secs_f64()) {
            self.stats.cache_hits += 1;
            self.stats.stub_answers += 1;
            if tel::enabled() {
                tel::mark_at(ctx.now().as_nanos(), rsv_kinds().cache_hit, self.next_task, 0);
            }
            let mut resp = query.response_to();
            resp.flags.recursion_available = true;
            match hit {
                CachedAnswer::Positive(records) => {
                    resp.answers = records;
                }
                CachedAnswer::Negative(rcode) => {
                    resp.rcode = rcode;
                }
            }
            ctx.send_udp(self.addr, from, resp.encode_into(&mut self.scratch));
            return;
        }
        let task_id = self.next_task;
        self.next_task += 1;
        let servers = self.best_servers(&q.name);
        let server_idx = self.start_idx(task_id, servers.len());
        let task = Task {
            stub: from,
            stub_query: query,
            orig_qname: q.name.clone(),
            qname: q.name,
            qtype: q.qtype,
            servers,
            server_idx,
            answers: vec![],
            cname_hops: 0,
            retries: 0,
            outstanding: None,
            cur_timeout: self.timeout,
        };
        self.tasks.insert(task_id, task);
        self.send_upstream(ctx, task_id);
    }

    fn send_upstream(&mut self, ctx: &mut Ctx<'_>, task_id: u64) {
        let id = self.fresh_id();
        let Some(task) = self.tasks.get_mut(&task_id) else {
            return;
        };
        let Some(&server) = task.servers.get(task.server_idx % task.servers.len().max(1)) else {
            self.fail(ctx, task_id);
            return;
        };
        let mut q = Message::query(id, task.qname.clone(), task.qtype);
        q.flags.recursion_desired = false;
        if task.stub_query.dnssec_ok() {
            q.set_dnssec_ok(true);
        }
        task.outstanding = Some(id);
        let attempt_timeout = task.cur_timeout;
        let server_slot = (task.server_idx % task.servers.len().max(1)) as u64;
        self.upstream_map.insert(id, task_id);
        self.stats.upstream_queries += 1;
        if tel::enabled() {
            tel::mark_at(ctx.now().as_nanos(), rsv_kinds().upstream, task_id, server_slot);
        }
        ctx.send_udp(self.addr, SocketAddr::new(server, 53), q.encode_into(&mut self.scratch));
        // Timer token encodes (task, attempt) so a stale timer from an
        // attempt that already completed is ignored.
        ctx.set_timer(attempt_timeout, (task_id << 16) | id as u64);
    }

    /// A server attempt failed (timeout or error rcode): advance to the
    /// next listed nameserver with a (possibly backed-off) timeout, or
    /// give up with SERVFAIL once the retry budget is spent.
    fn failover(&mut self, ctx: &mut Ctx<'_>, task_id: u64) {
        let retry = match self.tasks.get_mut(&task_id) {
            Some(task) => {
                task.retries += 1;
                task.server_idx += 1;
                task.retries <= self.max_retries
            }
            None => return,
        };
        if retry {
            if tel::enabled() {
                let retries = self.tasks.get(&task_id).map(|t| t.retries as u64).unwrap_or(0);
                tel::mark_at(ctx.now().as_nanos(), rsv_kinds().failover, task_id, retries);
            }
            let prev = self.tasks[&task_id].cur_timeout;
            let next = self.next_timeout(prev);
            if let Some(task) = self.tasks.get_mut(&task_id) {
                task.cur_timeout = next;
            }
            self.send_upstream(ctx, task_id);
        } else {
            self.fail(ctx, task_id);
        }
    }

    fn fail(&mut self, ctx: &mut Ctx<'_>, task_id: u64) {
        if let Some(task) = self.tasks.remove(&task_id) {
            if let Some(id) = task.outstanding {
                self.upstream_map.remove(&id);
            }
            self.stats.failures += 1;
            self.stats.stub_answers += 1;
            if tel::enabled() {
                tel::mark_at(ctx.now().as_nanos(), rsv_kinds().servfail, task_id, task.retries as u64);
            }
            let mut resp = task.stub_query.response_to();
            resp.flags.recursion_available = true;
            resp.rcode = Rcode::ServFail;
            ctx.send_udp(self.addr, task.stub, resp.encode_into(&mut self.scratch));
        }
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>, task_id: u64, rcode: Rcode) {
        if let Some(task) = self.tasks.remove(&task_id) {
            let now = ctx.now().as_secs_f64();
            if rcode == Rcode::NoError && !task.answers.is_empty() {
                self.cache
                    .put_positive(&task.orig_qname, task.qtype, task.answers.clone(), now);
            } else if rcode == Rcode::NxDomain || task.answers.is_empty() {
                self.cache.put_negative(&task.orig_qname, task.qtype, rcode, 30, now);
            }
            self.stats.stub_answers += 1;
            if tel::enabled() {
                tel::mark_at(ctx.now().as_nanos(), rsv_kinds().answer, task_id, u64::from(rcode.to_u16()));
            }
            let mut resp = task.stub_query.response_to();
            resp.flags.recursion_available = true;
            resp.rcode = rcode;
            resp.answers = task.answers;
            ctx.send_udp(self.addr, task.stub, resp.encode_into(&mut self.scratch));
        }
    }

    fn handle_upstream_response(&mut self, ctx: &mut Ctx<'_>, resp: Message) {
        let Some(&task_id) = self.upstream_map.get(&resp.id) else {
            return; // late or unknown response
        };
        {
            let Some(task) = self.tasks.get(&task_id) else {
                return;
            };
            if task.outstanding != Some(resp.id) {
                return;
            }
        }
        self.upstream_map.remove(&resp.id);
        let now = ctx.now().as_secs_f64();

        // Classify: answer / referral / negative.
        if resp.rcode == Rcode::NxDomain {
            self.finish(ctx, task_id, Rcode::NxDomain);
            return;
        }
        if resp.rcode != Rcode::NoError {
            // SERVFAIL/REFUSED/FormErr from one server says nothing
            // about the others (lame delegation, overload, partial
            // outage): fail over to the next listed nameserver rather
            // than giving up — same path as a timeout.
            if let Some(task) = self.tasks.get_mut(&task_id) {
                task.outstanding = None;
            }
            self.failover(ctx, task_id);
            return;
        }
        if !resp.answers.is_empty() {
            let task = self.tasks.get_mut(&task_id).expect("task exists");
            task.answers.extend(resp.answers.iter().cloned());
            let has_final = resp.answers.iter().any(|r| r.rtype() == task.qtype);
            let cname_target = resp.answers.iter().rev().find_map(|r| match &r.rdata {
                RData::Cname(t) => Some(t.clone()),
                _ => None,
            });
            if !has_final && task.qtype != RecordType::CNAME {
                if let Some(target) = cname_target {
                    task.cname_hops += 1;
                    if task.cname_hops > 8 {
                        self.fail(ctx, task_id);
                        return;
                    }
                    task.qname = target;
                    let servers = self.best_servers(&self.tasks[&task_id].qname);
                    let idx = self.start_idx(task_id, servers.len());
                    let task = self.tasks.get_mut(&task_id).expect("task exists");
                    task.servers = servers;
                    task.server_idx = idx;
                    self.send_upstream(ctx, task_id);
                    return;
                }
            }
            self.finish(ctx, task_id, Rcode::NoError);
            return;
        }
        // Referral?
        let ns_owner = resp
            .authorities
            .iter()
            .find(|r| r.rtype() == RecordType::NS)
            .map(|r| r.name.clone());
        if let Some(zone) = ns_owner {
            if !resp.flags.authoritative {
                let mut addrs: Vec<IpAddr> = Vec::new();
                for rec in &resp.additionals {
                    match &rec.rdata {
                        RData::A(ip) => addrs.push(IpAddr::V4(*ip)),
                        RData::Aaaa(ip) => addrs.push(IpAddr::V6(*ip)),
                        _ => {}
                    }
                }
                if addrs.is_empty() {
                    // Glue-less: unsupported on this host (see module doc).
                    self.fail(ctx, task_id);
                    return;
                }
                self.delegations.insert(zone, addrs.clone());
                let idx = self.start_idx(task_id, addrs.len());
                let task = self.tasks.get_mut(&task_id).expect("task exists");
                task.servers = addrs;
                task.server_idx = idx;
                self.send_upstream(ctx, task_id);
                return;
            }
        }
        // NODATA.
        let _ = now;
        self.finish(ctx, task_id, Rcode::NoError);
    }
}

impl Host for SimResolver {
    fn on_udp(&mut self, ctx: &mut Ctx<'_>, from: SocketAddr, _to: SocketAddr, data: PacketBytes) {
        let Ok(msg) = Message::decode(&data) else {
            return;
        };
        if msg.flags.response {
            self.handle_upstream_response(ctx, msg);
        } else {
            self.handle_stub_query(ctx, from, msg);
        }
    }

    fn on_tcp_event(&mut self, _ctx: &mut Ctx<'_>, _event: TcpEvent) {
        // Stub-facing TCP is not modelled; the §5.2 experiments exercise
        // TCP on the authoritative side.
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let task_id = token >> 16;
        let attempt_id = (token & 0xffff) as u16;
        match self.tasks.get_mut(&task_id) {
            Some(task) if task.outstanding == Some(attempt_id) => {
                // That exact attempt timed out.
                task.outstanding = None;
                self.upstream_map.remove(&attempt_id);
                if tel::enabled() {
                    let t = ctx.now().as_nanos();
                    tel::mark_at(t, rsv_kinds().timeout, task_id, u64::from(attempt_id));
                }
            }
            _ => return, // answered, superseded or gone
        }
        self.failover(ctx, task_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    use dns_server::engine::ServerEngine;
    use dns_server::sim_server::SimDnsServer;
    use dns_wire::record::Record;
    use dns_zone::catalog::Catalog;
    use dns_zone::zone::Zone;
    use netsim::{SimConfig, Simulator, Topology};

    /// A stub that records every response it receives.
    struct CaptureStub {
        got: Arc<Mutex<Vec<Message>>>,
    }

    impl Host for CaptureStub {
        fn on_udp(
            &mut self,
            _ctx: &mut Ctx<'_>,
            _from: SocketAddr,
            _to: SocketAddr,
            data: PacketBytes,
        ) {
            if let Ok(msg) = Message::decode(&data) {
                self.got.lock().expect("capture lock").push(msg);
            }
        }
        fn on_tcp_event(&mut self, _ctx: &mut Ctx<'_>, _event: TcpEvent) {}
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
    }

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn good_engine() -> Arc<ServerEngine> {
        let mut zone = Zone::new(name("example."));
        zone.insert(Record::new(
            name("www.example."),
            3600,
            RData::A("192.0.2.1".parse().unwrap()),
        ))
        .unwrap();
        let mut catalog = Catalog::new();
        catalog.insert(zone);
        Arc::new(ServerEngine::with_catalog(catalog))
    }

    /// Empty catalog: the server answers, but never with NoError +
    /// data — the resolver must treat it as a failed attempt.
    fn lame_engine() -> Arc<ServerEngine> {
        Arc::new(ServerEngine::with_catalog(Catalog::new()))
    }

    struct Rig {
        sim: Simulator,
        got: Arc<Mutex<Vec<Message>>>,
        stub_addr: SocketAddr,
        resolver_addr: SocketAddr,
        server_ids: Vec<netsim::HostId>,
    }

    /// Build a sim with a stub, a resolver hinted at `upstreams`
    /// in order, and one server host per `Some(engine)` entry
    /// (a `None` upstream is a dead address — queries to it vanish).
    fn rig(upstreams: &[Option<Arc<ServerEngine>>], tune: impl FnOnce(&mut SimResolver)) -> Rig {
        let mut sim = Simulator::new(Topology::default(), SimConfig::default());
        let mut hints = Vec::new();
        let mut server_ids = Vec::new();
        for (i, up) in upstreams.iter().enumerate() {
            let ip: IpAddr = format!("10.0.0.{}", i + 1).parse().unwrap();
            hints.push(ip);
            if let Some(engine) = up {
                let server =
                    SimDnsServer::new(engine.clone(), SocketAddr::new(ip, 53), None);
                server_ids.push(sim.add_host(&[ip], Box::new(server)));
            }
        }
        let resolver_addr: SocketAddr = "10.1.0.1:53".parse().unwrap();
        let mut resolver = SimResolver::new(resolver_addr, hints);
        tune(&mut resolver);
        sim.add_host(&[resolver_addr.ip()], Box::new(resolver));
        let got = Arc::new(Mutex::new(Vec::new()));
        let stub_addr: SocketAddr = "10.2.0.1:5353".parse().unwrap();
        let stub = CaptureStub { got: Arc::clone(&got) };
        sim.add_host(&[stub_addr.ip()], Box::new(stub));
        Rig { sim, got, stub_addr, resolver_addr, server_ids }
    }

    fn ask(rig: &mut Rig, id: u16, qname: &str) {
        let q = Message::query(id, name(qname), RecordType::A);
        rig.sim
            .inject_udp(rig.stub_addr, rig.resolver_addr, q.encode());
    }

    #[test]
    fn timeout_fails_over_to_next_nameserver() {
        // First hint is a dead address: the attempt must time out and
        // the query succeed via the second server.
        let mut rig = rig(&[None, Some(good_engine())], |r| r.max_retries = 3);
        ask(&mut rig, 1, "www.example.");
        rig.sim.run();
        let got = rig.got.lock().expect("capture lock");
        assert_eq!(got.len(), 1, "exactly one answer to the stub");
        assert_eq!(got[0].rcode, Rcode::NoError);
        assert!(!got[0].answers.is_empty(), "positive answer after failover");
    }

    #[test]
    fn error_rcode_fails_over_to_next_nameserver() {
        // First server answers REFUSED/SERVFAIL (lame); a single bad
        // rcode must advance to the next listed server, not SERVFAIL
        // the stub.
        let mut rig = rig(&[Some(lame_engine()), Some(good_engine())], |r| {
            r.max_retries = 3;
        });
        ask(&mut rig, 2, "www.example.");
        rig.sim.run();
        let got = rig.got.lock().expect("capture lock");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rcode, Rcode::NoError, "failover past the lame server");
        assert!(!got[0].answers.is_empty());
    }

    #[test]
    fn exhausted_retry_budget_servfails() {
        let mut rig = rig(&[None, Some(good_engine())], |r| r.max_retries = 0);
        ask(&mut rig, 3, "www.example.");
        rig.sim.run();
        let got = rig.got.lock().expect("capture lock");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rcode, Rcode::ServFail, "no budget to reach server 2");
    }

    #[test]
    fn rotation_spreads_first_attempts() {
        // Two good servers, two queries: with rotation on, task 0
        // starts at server 0 and task 1 at server 1.
        let mut rig = rig(&[Some(good_engine()), Some(good_engine())], |r| {
            r.rotate_servers = true;
        });
        ask(&mut rig, 4, "www.example.");
        ask(&mut rig, 5, "w2.example.");
        rig.sim.run();
        let rx: Vec<u64> = rig
            .server_ids
            .iter()
            .map(|&id| rig.sim.stats(id).udp_rx)
            .collect();
        assert_eq!(rx, vec![1, 1], "one first attempt per server");
    }

    #[test]
    fn backoff_draws_stay_within_bounds_and_grow() {
        let mut r = SimResolver::new("10.1.0.1:53".parse().unwrap(), vec![]);
        let cap = SimDuration::from_secs(8);
        r.backoff_cap = Some(cap);
        let base = r.timeout;
        let mut prev = base;
        let mut grew = false;
        for _ in 0..64 {
            let next = r.next_timeout(prev);
            assert!(next >= base, "never below the base timeout");
            assert!(next <= cap, "never above the cap");
            if next > prev {
                grew = true;
            }
            prev = next;
        }
        assert!(grew, "decorrelated jitter must actually back off");
    }

    #[test]
    fn fixed_timeout_without_backoff() {
        let mut r = SimResolver::new("10.1.0.1:53".parse().unwrap(), vec![]);
        let base = r.timeout;
        assert_eq!(r.next_timeout(base), base);
        assert_eq!(r.next_timeout(SimDuration::from_secs(30)), base);
    }
}
