//! The recursive resolver as a [`netsim`] host: accepts stub queries
//! over UDP, walks the (emulated) hierarchy iteratively with cache and
//! retries, and answers the stub — the "Recursive Server" box in the
//! paper's Figure 1/2.
//!
//! Referrals must carry glue (our zone constructor always emits glue for
//! in-zone nameservers); glue-less referrals answer SERVFAIL, a
//! documented simplification of this host (the synchronous
//! [`crate::IterativeResolver`] handles glue-less chains and is what
//! zone construction uses).

use std::collections::BTreeMap;
use std::net::{IpAddr, SocketAddr};

use dns_wire::{Message, Name, RData, Rcode, RecordType};
use netsim::{Ctx, Host, PacketBytes, SimDuration, TcpEvent};

use crate::cache::{Cache, CachedAnswer};

/// Per-resolution state machine.
#[derive(Debug)]
struct Task {
    stub: SocketAddr,
    stub_query: Message,
    /// The stub's original question name (cache key).
    orig_qname: Name,
    qname: Name,
    qtype: RecordType,
    servers: Vec<IpAddr>,
    server_idx: usize,
    answers: Vec<dns_wire::Record>,
    cname_hops: usize,
    retries: usize,
    outstanding: Option<u16>,
}

/// Counters for the resolver host.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResolverStats {
    /// Stub queries received.
    pub stub_queries: u64,
    /// Answers returned to stubs.
    pub stub_answers: u64,
    /// Upstream (iterative) queries sent.
    pub upstream_queries: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Resolutions that failed (SERVFAIL to the stub).
    pub failures: u64,
}

/// The simulated recursive resolver host.
pub struct SimResolver {
    addr: SocketAddr,
    root_hints: Vec<IpAddr>,
    cache: Cache,
    delegations: BTreeMap<Name, Vec<IpAddr>>,
    tasks: BTreeMap<u64, Task>,
    upstream_map: BTreeMap<u16, u64>,
    next_task: u64,
    next_id: u16,
    /// Upstream query timeout.
    pub timeout: SimDuration,
    /// Max retries across servers before SERVFAIL.
    pub max_retries: usize,
    /// Live counters.
    pub stats: ResolverStats,
}

impl SimResolver {
    /// New resolver at `addr` using `root_hints`.
    pub fn new(addr: SocketAddr, root_hints: Vec<IpAddr>) -> Self {
        SimResolver {
            addr,
            root_hints,
            cache: Cache::new(),
            delegations: BTreeMap::new(),
            tasks: BTreeMap::new(),
            upstream_map: BTreeMap::new(),
            next_task: 0,
            next_id: 1,
            timeout: SimDuration::from_secs(2),
            max_retries: 6,
            stats: ResolverStats::default(),
        }
    }

    /// The resolver's service address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn fresh_id(&mut self) -> u16 {
        self.next_id = self.next_id.wrapping_add(1);
        if self.next_id == 0 {
            self.next_id = 1;
        }
        self.next_id
    }

    fn best_servers(&self, qname: &Name) -> Vec<IpAddr> {
        let mut cur = Some(qname.clone());
        while let Some(name) = cur {
            if let Some(addrs) = self.delegations.get(&name) {
                return addrs.clone();
            }
            cur = name.parent();
        }
        self.root_hints.clone()
    }

    fn handle_stub_query(&mut self, ctx: &mut Ctx<'_>, from: SocketAddr, query: Message) {
        self.stats.stub_queries += 1;
        let Some(q) = query.question().cloned() else {
            let mut resp = query.response_to();
            resp.rcode = Rcode::FormErr;
            ctx.send_udp(self.addr, from, resp.encode());
            return;
        };
        // Cache hit answers immediately.
        if let Some(hit) = self.cache.get(&q.name, q.qtype, ctx.now().as_secs_f64()) {
            self.stats.cache_hits += 1;
            self.stats.stub_answers += 1;
            let mut resp = query.response_to();
            resp.flags.recursion_available = true;
            match hit {
                CachedAnswer::Positive(records) => {
                    resp.answers = records;
                }
                CachedAnswer::Negative(rcode) => {
                    resp.rcode = rcode;
                }
            }
            ctx.send_udp(self.addr, from, resp.encode());
            return;
        }
        let task_id = self.next_task;
        self.next_task += 1;
        let servers = self.best_servers(&q.name);
        let task = Task {
            stub: from,
            stub_query: query,
            orig_qname: q.name.clone(),
            qname: q.name,
            qtype: q.qtype,
            servers,
            server_idx: 0,
            answers: vec![],
            cname_hops: 0,
            retries: 0,
            outstanding: None,
        };
        self.tasks.insert(task_id, task);
        self.send_upstream(ctx, task_id);
    }

    fn send_upstream(&mut self, ctx: &mut Ctx<'_>, task_id: u64) {
        let id = self.fresh_id();
        let Some(task) = self.tasks.get_mut(&task_id) else {
            return;
        };
        let Some(&server) = task.servers.get(task.server_idx % task.servers.len().max(1)) else {
            self.fail(ctx, task_id);
            return;
        };
        let mut q = Message::query(id, task.qname.clone(), task.qtype);
        q.flags.recursion_desired = false;
        if task.stub_query.dnssec_ok() {
            q.set_dnssec_ok(true);
        }
        task.outstanding = Some(id);
        self.upstream_map.insert(id, task_id);
        self.stats.upstream_queries += 1;
        ctx.send_udp(self.addr, SocketAddr::new(server, 53), q.encode());
        // Timer token encodes (task, attempt) so a stale timer from an
        // attempt that already completed is ignored.
        ctx.set_timer(self.timeout, (task_id << 16) | id as u64);
    }

    fn fail(&mut self, ctx: &mut Ctx<'_>, task_id: u64) {
        if let Some(task) = self.tasks.remove(&task_id) {
            if let Some(id) = task.outstanding {
                self.upstream_map.remove(&id);
            }
            self.stats.failures += 1;
            self.stats.stub_answers += 1;
            let mut resp = task.stub_query.response_to();
            resp.flags.recursion_available = true;
            resp.rcode = Rcode::ServFail;
            ctx.send_udp(self.addr, task.stub, resp.encode());
        }
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>, task_id: u64, rcode: Rcode) {
        if let Some(task) = self.tasks.remove(&task_id) {
            let now = ctx.now().as_secs_f64();
            if rcode == Rcode::NoError && !task.answers.is_empty() {
                self.cache
                    .put_positive(&task.orig_qname, task.qtype, task.answers.clone(), now);
            } else if rcode == Rcode::NxDomain || task.answers.is_empty() {
                self.cache.put_negative(&task.orig_qname, task.qtype, rcode, 30, now);
            }
            self.stats.stub_answers += 1;
            let mut resp = task.stub_query.response_to();
            resp.flags.recursion_available = true;
            resp.rcode = rcode;
            resp.answers = task.answers;
            ctx.send_udp(self.addr, task.stub, resp.encode());
        }
    }

    fn handle_upstream_response(&mut self, ctx: &mut Ctx<'_>, resp: Message) {
        let Some(&task_id) = self.upstream_map.get(&resp.id) else {
            return; // late or unknown response
        };
        {
            let Some(task) = self.tasks.get(&task_id) else {
                return;
            };
            if task.outstanding != Some(resp.id) {
                return;
            }
        }
        self.upstream_map.remove(&resp.id);
        let now = ctx.now().as_secs_f64();

        // Classify: answer / referral / negative.
        if resp.rcode == Rcode::NxDomain {
            self.finish(ctx, task_id, Rcode::NxDomain);
            return;
        }
        if resp.rcode != Rcode::NoError {
            self.fail(ctx, task_id);
            return;
        }
        if !resp.answers.is_empty() {
            let task = self.tasks.get_mut(&task_id).expect("task exists");
            task.answers.extend(resp.answers.iter().cloned());
            let has_final = resp.answers.iter().any(|r| r.rtype() == task.qtype);
            let cname_target = resp.answers.iter().rev().find_map(|r| match &r.rdata {
                RData::Cname(t) => Some(t.clone()),
                _ => None,
            });
            if !has_final && task.qtype != RecordType::CNAME {
                if let Some(target) = cname_target {
                    task.cname_hops += 1;
                    if task.cname_hops > 8 {
                        self.fail(ctx, task_id);
                        return;
                    }
                    task.qname = target;
                    task.server_idx = 0;
                    let servers = self.best_servers(&self.tasks[&task_id].qname);
                    self.tasks.get_mut(&task_id).unwrap().servers = servers;
                    self.send_upstream(ctx, task_id);
                    return;
                }
            }
            self.finish(ctx, task_id, Rcode::NoError);
            return;
        }
        // Referral?
        let ns_owner = resp
            .authorities
            .iter()
            .find(|r| r.rtype() == RecordType::NS)
            .map(|r| r.name.clone());
        if let Some(zone) = ns_owner {
            if !resp.flags.authoritative {
                let mut addrs: Vec<IpAddr> = Vec::new();
                for rec in &resp.additionals {
                    match &rec.rdata {
                        RData::A(ip) => addrs.push(IpAddr::V4(*ip)),
                        RData::Aaaa(ip) => addrs.push(IpAddr::V6(*ip)),
                        _ => {}
                    }
                }
                if addrs.is_empty() {
                    // Glue-less: unsupported on this host (see module doc).
                    self.fail(ctx, task_id);
                    return;
                }
                self.delegations.insert(zone, addrs.clone());
                let task = self.tasks.get_mut(&task_id).expect("task exists");
                task.servers = addrs;
                task.server_idx = 0;
                self.send_upstream(ctx, task_id);
                return;
            }
        }
        // NODATA.
        let _ = now;
        self.finish(ctx, task_id, Rcode::NoError);
    }
}

impl Host for SimResolver {
    fn on_udp(&mut self, ctx: &mut Ctx<'_>, from: SocketAddr, _to: SocketAddr, data: PacketBytes) {
        let Ok(msg) = Message::decode(&data) else {
            return;
        };
        if msg.flags.response {
            self.handle_upstream_response(ctx, msg);
        } else {
            self.handle_stub_query(ctx, from, msg);
        }
    }

    fn on_tcp_event(&mut self, _ctx: &mut Ctx<'_>, _event: TcpEvent) {
        // Stub-facing TCP is not modelled; the §5.2 experiments exercise
        // TCP on the authoritative side.
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let task_id = token >> 16;
        let attempt_id = (token & 0xffff) as u16;
        let retry = match self.tasks.get_mut(&task_id) {
            Some(task) if task.outstanding == Some(attempt_id) => {
                // That exact attempt timed out.
                task.outstanding = None;
                self.upstream_map.remove(&attempt_id);
                let task = self.tasks.get_mut(&task_id).expect("task exists");
                task.retries += 1;
                task.server_idx += 1;
                task.retries <= self.max_retries
            }
            _ => return, // answered, superseded or gone
        };
        if retry {
            self.send_upstream(ctx, task_id);
        } else {
            self.fail(ctx, task_id);
        }
    }
}
