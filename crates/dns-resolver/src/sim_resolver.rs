//! The recursive resolver as a [`netsim`] host: accepts stub queries
//! over UDP, walks the (emulated) hierarchy iteratively with cache and
//! retries, and answers the stub — the "Recursive Server" box in the
//! paper's Figure 1/2.
//!
//! The miss path runs through [`ldp_cache`]: concurrent misses for the
//! same (qname, qtype) coalesce onto one in-flight resolution via the
//! [`OutstandingTable`] and the single upstream answer fans out to
//! every waiter (*delayed hits*, with per-waiter latency accounting);
//! the store is capacity-bounded with pluggable deterministic eviction
//! ([`CacheConfig`]); negative TTLs derive from the authority-section
//! SOA per RFC 2308; and hot names can be refreshed before expiry
//! (rate-budgeted prefetch).
//!
//! Referrals must carry glue (our zone constructor always emits glue for
//! in-zone nameservers); glue-less referrals answer SERVFAIL, a
//! documented simplification of this host (the synchronous
//! [`crate::IterativeResolver`] handles glue-less chains and is what
//! zone construction uses).

use std::collections::BTreeMap;
use std::net::{IpAddr, SocketAddr};
use std::sync::{Arc, Mutex};

use dns_wire::{Message, Name, RData, Rcode, RecordType};
use ldp_cache::{
    negative_ttl, CacheConfig, CacheStats, CachedAnswer, FillInfo, OutstandingStats,
    OutstandingTable, ResolverCache,
};
use ldp_telemetry as tel;
use netsim::{Ctx, Host, PacketBytes, SimDuration, TcpEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Interned per-attempt lifecycle marks for the resolver. The `a` key
/// is the task id, so a whole resolution chain (stub → upstream
/// attempts → failovers → answer/servfail) is kept or dropped together
/// under sampling, and stamped with the simulator's `ctx.now()`.
struct RsvKinds {
    stub: tel::KindId,
    cache_hit: tel::KindId,
    delayed_hit: tel::KindId,
    upstream: tel::KindId,
    timeout: tel::KindId,
    failover: tel::KindId,
    servfail: tel::KindId,
    answer: tel::KindId,
    evict: tel::KindId,
    prefetch: tel::KindId,
}

fn rsv_kinds() -> &'static RsvKinds {
    static K: std::sync::OnceLock<RsvKinds> = std::sync::OnceLock::new();
    K.get_or_init(|| RsvKinds {
        stub: tel::register_kind("rsv.stub"),
        cache_hit: tel::register_kind("rsv.cache_hit"),
        delayed_hit: tel::register_kind("rsv.delayed_hit"),
        upstream: tel::register_kind("rsv.upstream"),
        timeout: tel::register_kind("rsv.timeout"),
        failover: tel::register_kind("rsv.failover"),
        servfail: tel::register_kind("rsv.servfail"),
        answer: tel::register_kind("rsv.answer"),
        evict: tel::register_kind("rsv.evict"),
        prefetch: tel::register_kind("rsv.prefetch"),
    })
}

/// A client parked on an in-flight resolution: enough to answer it when
/// the upstream walk completes (each waiter keeps its own query so the
/// fan-out responds with the right DNS id and flags per client).
#[derive(Debug, Clone)]
struct Waiter {
    stub: SocketAddr,
    query: Message,
}

/// Per-resolution state machine.
#[derive(Debug)]
struct Task {
    /// The cache/aggregation key: the clients' original question.
    key_name: Name,
    qname: Name,
    qtype: RecordType,
    /// DO bit of the lead query, propagated upstream.
    dnssec_ok: bool,
    /// A prefetch refresh: launched with no waiting client.
    prefetch: bool,
    servers: Vec<IpAddr>,
    server_idx: usize,
    answers: Vec<dns_wire::Record>,
    cname_hops: usize,
    retries: usize,
    outstanding: Option<u16>,
    /// Timeout for the current attempt (grows under backoff).
    cur_timeout: SimDuration,
}

/// Counters for the resolver host.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResolverStats {
    /// Stub queries received.
    pub stub_queries: u64,
    /// Answers returned to stubs.
    pub stub_answers: u64,
    /// Upstream (iterative) queries sent.
    pub upstream_queries: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Delayed hits: queries that coalesced onto an in-flight
    /// resolution instead of launching their own.
    pub delayed_hits: u64,
    /// Entries evicted by the cache capacity bound.
    pub evictions: u64,
    /// Prefetch refreshes launched before expiry.
    pub prefetches: u64,
    /// Resolutions that failed (SERVFAIL to the stub).
    pub failures: u64,
}

/// How a stub query was ultimately answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerClass {
    /// Served from the cache immediately.
    Hit,
    /// Lead miss: this query launched the upstream resolution.
    Miss,
    /// Coalesced onto an in-flight resolution and waited for its answer.
    DelayedHit,
    /// Resolution failed; the stub got SERVFAIL.
    ServFail,
}

impl AnswerClass {
    /// Transcript/legend label.
    pub fn label(self) -> &'static str {
        match self {
            AnswerClass::Hit => "hit",
            AnswerClass::Miss => "miss",
            AnswerClass::DelayedHit => "delayed-hit",
            AnswerClass::ServFail => "servfail",
        }
    }
}

/// One answered stub query, as recorded by the answer log.
#[derive(Debug, Clone, Copy)]
pub struct AnswerEvent {
    /// Virtual time the answer was sent (ns).
    pub at_ns: u64,
    /// DNS id of the stub query answered.
    pub qid: u16,
    /// How it was served.
    pub class: AnswerClass,
    /// Time the client waited on an in-flight resolution (ns): the full
    /// resolution for a [`AnswerClass::Miss`], the residual wait for a
    /// [`AnswerClass::DelayedHit`], 0 for a hit.
    pub waited_ns: u64,
}

/// A point-in-time copy of the resolver's counters, published through
/// [`SimResolver::set_stats_out`] so experiment drivers can read them
/// after the simulation consumed the host.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResolverSnapshot {
    /// Host counters.
    pub stats: ResolverStats,
    /// Cache store counters.
    pub cache: CacheStats,
    /// In-flight aggregation counters.
    pub outstanding: OutstandingStats,
    /// Resident cache entries.
    pub cache_len: usize,
}

/// The simulated recursive resolver host.
pub struct SimResolver {
    addr: SocketAddr,
    root_hints: Vec<IpAddr>,
    cache: ResolverCache,
    outstanding: OutstandingTable<Waiter>,
    delegations: BTreeMap<Name, Vec<IpAddr>>,
    tasks: BTreeMap<u64, Task>,
    upstream_map: BTreeMap<u16, u64>,
    next_task: u64,
    next_id: u16,
    /// Upstream query timeout (the base timeout when backoff is on).
    pub timeout: SimDuration,
    /// Max retries across servers before SERVFAIL.
    pub max_retries: usize,
    /// Exponential backoff with decorrelated jitter: when set, each
    /// retry's timeout is drawn uniformly from `[timeout, 3 × prev]`
    /// and capped here (AWS-style decorrelated jitter — desynchronizes
    /// retry storms during an outage). `None` keeps a fixed per-attempt
    /// timeout.
    pub backoff_cap: Option<SimDuration>,
    /// Spread each query's first nameserver across the server list by
    /// task id instead of always starting at index 0 — approximates
    /// real resolvers' server selection so an outage of some servers
    /// only delays the share of queries that pick them first.
    pub rotate_servers: bool,
    /// Live counters.
    pub stats: ResolverStats,
    /// Seeded RNG for backoff jitter (rule D3: no ambient randomness).
    rng: StdRng,
    /// Reusable encode buffer + compression interner for all sends.
    scratch: dns_wire::EncodeScratch,
    answer_log: Option<Arc<Mutex<Vec<AnswerEvent>>>>,
    stats_out: Option<Arc<Mutex<ResolverSnapshot>>>,
}

impl SimResolver {
    /// New resolver at `addr` using `root_hints`. The cache starts in
    /// the legacy shape (unbounded LRU, no prefetch); use
    /// [`set_cache_config`](Self::set_cache_config) before traffic to
    /// bound it.
    pub fn new(addr: SocketAddr, root_hints: Vec<IpAddr>) -> Self {
        SimResolver {
            addr,
            root_hints,
            cache: ResolverCache::unbounded(),
            outstanding: OutstandingTable::new(),
            delegations: BTreeMap::new(),
            tasks: BTreeMap::new(),
            upstream_map: BTreeMap::new(),
            next_task: 0,
            next_id: 1,
            timeout: SimDuration::from_secs(2),
            max_retries: 6,
            backoff_cap: None,
            rotate_servers: false,
            stats: ResolverStats::default(),
            rng: StdRng::seed_from_u64(0x1d9_c0de),
            scratch: dns_wire::EncodeScratch::new(),
            answer_log: None,
            stats_out: None,
        }
    }

    /// Replace the cache with a fresh one built from `config`. Call
    /// before traffic: resident entries are dropped.
    pub fn set_cache_config(&mut self, config: CacheConfig) {
        self.cache = ResolverCache::new(config);
    }

    /// Record every answered stub query into `log` (class + wait time),
    /// for experiment drivers that need per-query accounting after the
    /// simulator consumed this host.
    pub fn set_answer_log(&mut self, log: Arc<Mutex<Vec<AnswerEvent>>>) {
        self.answer_log = Some(log);
    }

    /// Publish a [`ResolverSnapshot`] into `out` every time counters
    /// change, so drivers can read final stats after the run.
    pub fn set_stats_out(&mut self, out: Arc<Mutex<ResolverSnapshot>>) {
        self.stats_out = Some(out);
    }

    fn publish_snapshot(&self) {
        if let Some(out) = &self.stats_out {
            if let Ok(mut s) = out.lock() {
                *s = ResolverSnapshot {
                    stats: self.stats,
                    cache: self.cache.stats(),
                    outstanding: self.outstanding.stats(),
                    cache_len: self.cache.len(),
                };
            }
        }
    }

    fn log_answer(&self, at_ns: u64, qid: u16, class: AnswerClass, waited_ns: u64) {
        if let Some(log) = &self.answer_log {
            if let Ok(mut v) = log.lock() {
                v.push(AnswerEvent {
                    at_ns,
                    qid,
                    class,
                    waited_ns,
                });
            }
        }
    }

    /// First-server index for a task over an `n`-long server list.
    fn start_idx(&self, task_id: u64, n: usize) -> usize {
        if self.rotate_servers && n > 0 {
            (task_id as usize) % n
        } else {
            0
        }
    }

    /// Grow a task's timeout for its next attempt (decorrelated
    /// jitter), or keep it fixed when backoff is disabled.
    fn next_timeout(&mut self, prev: SimDuration) -> SimDuration {
        let Some(cap) = self.backoff_cap else {
            return self.timeout;
        };
        let base = self.timeout.as_nanos();
        let hi = prev.as_nanos().saturating_mul(3).max(base + 1);
        let span = (hi - base) as f64;
        let drawn = base + (self.rng.gen::<f64>() * span) as u64;
        SimDuration::from_nanos(drawn.min(cap.as_nanos()))
    }

    /// The resolver's service address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn fresh_id(&mut self) -> u16 {
        self.next_id = self.next_id.wrapping_add(1);
        if self.next_id == 0 {
            self.next_id = 1;
        }
        self.next_id
    }

    fn best_servers(&self, qname: &Name) -> Vec<IpAddr> {
        let mut cur = Some(qname.clone());
        while let Some(name) = cur {
            if let Some(addrs) = self.delegations.get(&name) {
                return addrs.clone();
            }
            cur = name.parent();
        }
        self.root_hints.clone()
    }

    /// Create the per-resolution task for `key_name`/`qtype` and launch
    /// its first upstream attempt. The caller has already registered
    /// the key in the outstanding table.
    fn start_task(
        &mut self,
        ctx: &mut Ctx<'_>,
        task_id: u64,
        key_name: Name,
        qtype: RecordType,
        dnssec_ok: bool,
        prefetch: bool,
    ) {
        let servers = self.best_servers(&key_name);
        let server_idx = self.start_idx(task_id, servers.len());
        let task = Task {
            qname: key_name.clone(),
            key_name,
            qtype,
            dnssec_ok,
            prefetch,
            servers,
            server_idx,
            answers: vec![],
            cname_hops: 0,
            retries: 0,
            outstanding: None,
            cur_timeout: self.timeout,
        };
        self.tasks.insert(task_id, task);
        self.send_upstream(ctx, task_id);
    }

    fn handle_stub_query(&mut self, ctx: &mut Ctx<'_>, from: SocketAddr, query: Message) {
        self.stats.stub_queries += 1;
        if tel::enabled() {
            // `next_task` is the id this query gets if it misses the
            // cache, tying the stub mark to the rest of its chain.
            tel::mark_at(ctx.now().as_nanos(), rsv_kinds().stub, self.next_task, 0);
        }
        let Some(q) = query.question().cloned() else {
            let mut resp = query.response_to();
            resp.rcode = Rcode::FormErr;
            ctx.send_udp(self.addr, from, resp.encode_into(&mut self.scratch));
            return;
        };
        let now = ctx.now().as_secs_f64();
        // Cache hit answers immediately.
        if let Some(hit) = self.cache.get(&q.name, q.qtype, now) {
            self.stats.cache_hits += 1;
            self.stats.stub_answers += 1;
            if tel::enabled() {
                tel::mark_at(ctx.now().as_nanos(), rsv_kinds().cache_hit, self.next_task, 0);
            }
            let qid = query.id;
            let dnssec_ok = query.dnssec_ok();
            let mut resp = query.response_to();
            resp.flags.recursion_available = true;
            match hit {
                CachedAnswer::Positive(records) => {
                    resp.answers = records;
                }
                CachedAnswer::Negative(rcode) => {
                    resp.rcode = rcode;
                }
            }
            ctx.send_udp(self.addr, from, resp.encode_into(&mut self.scratch));
            self.log_answer(ctx.now().as_nanos(), qid, AnswerClass::Hit, 0);
            // Hot-name refresh: if this entry is inside its prefetch
            // window and the budget allows, resolve it again in the
            // background before it expires.
            if self.cache.prefetch_due(&q.name, q.qtype, now)
                && !self.outstanding.contains(&q.name, q.qtype)
            {
                let task_id = self.next_task;
                self.next_task += 1;
                self.stats.prefetches += 1;
                if tel::enabled() {
                    tel::mark_at(ctx.now().as_nanos(), rsv_kinds().prefetch, task_id, 0);
                }
                self.outstanding.begin_prefetch(&q.name, q.qtype, task_id, now);
                self.start_task(ctx, task_id, q.name, q.qtype, dnssec_ok, true);
            }
            self.publish_snapshot();
            return;
        }
        // Miss: coalesce onto an in-flight resolution for the same key,
        // or become the lead and launch one.
        let waiter = Waiter { stub: from, query };
        match self.outstanding.join(&q.name, q.qtype, waiter, now) {
            Ok(_pos) => {
                // Delayed hit: the answer fans out on completion.
                self.stats.delayed_hits += 1;
            }
            Err(waiter) => {
                let task_id = self.next_task;
                self.next_task += 1;
                let dnssec_ok = waiter.query.dnssec_ok();
                self.outstanding.begin(&q.name, q.qtype, task_id, waiter, now);
                self.start_task(ctx, task_id, q.name, q.qtype, dnssec_ok, false);
            }
        }
    }

    fn send_upstream(&mut self, ctx: &mut Ctx<'_>, task_id: u64) {
        let id = self.fresh_id();
        let Some(task) = self.tasks.get_mut(&task_id) else {
            return;
        };
        let Some(&server) = task.servers.get(task.server_idx % task.servers.len().max(1)) else {
            self.fail(ctx, task_id);
            return;
        };
        let mut q = Message::query(id, task.qname.clone(), task.qtype);
        q.flags.recursion_desired = false;
        if task.dnssec_ok {
            q.set_dnssec_ok(true);
        }
        task.outstanding = Some(id);
        let attempt_timeout = task.cur_timeout;
        let server_slot = (task.server_idx % task.servers.len().max(1)) as u64;
        self.upstream_map.insert(id, task_id);
        self.stats.upstream_queries += 1;
        if tel::enabled() {
            tel::mark_at(ctx.now().as_nanos(), rsv_kinds().upstream, task_id, server_slot);
        }
        ctx.send_udp(self.addr, SocketAddr::new(server, 53), q.encode_into(&mut self.scratch));
        // Timer token encodes (task, attempt) so a stale timer from an
        // attempt that already completed is ignored.
        ctx.set_timer(attempt_timeout, (task_id << 16) | id as u64);
    }

    /// A server attempt failed (timeout or error rcode): advance to the
    /// next listed nameserver with a (possibly backed-off) timeout, or
    /// give up with SERVFAIL once the retry budget is spent.
    fn failover(&mut self, ctx: &mut Ctx<'_>, task_id: u64) {
        let retry = match self.tasks.get_mut(&task_id) {
            Some(task) => {
                task.retries += 1;
                task.server_idx += 1;
                task.retries <= self.max_retries
            }
            None => return,
        };
        if retry {
            if tel::enabled() {
                let retries = self.tasks.get(&task_id).map(|t| t.retries as u64).unwrap_or(0);
                tel::mark_at(ctx.now().as_nanos(), rsv_kinds().failover, task_id, retries);
            }
            let prev = self.tasks[&task_id].cur_timeout;
            let next = self.next_timeout(prev);
            if let Some(task) = self.tasks.get_mut(&task_id) {
                task.cur_timeout = next;
            }
            self.send_upstream(ctx, task_id);
        } else {
            self.fail(ctx, task_id);
        }
    }

    /// The resolution failed: SERVFAIL everyone waiting on it.
    fn fail(&mut self, ctx: &mut Ctx<'_>, task_id: u64) {
        let Some(task) = self.tasks.remove(&task_id) else {
            return;
        };
        if let Some(id) = task.outstanding {
            self.upstream_map.remove(&id);
        }
        self.stats.failures += 1;
        if tel::enabled() {
            tel::mark_at(ctx.now().as_nanos(), rsv_kinds().servfail, task_id, task.retries as u64);
        }
        let waiters = self
            .outstanding
            .complete(&task.key_name, task.qtype)
            .map(|c| c.waiters)
            .unwrap_or_default();
        let now = ctx.now().as_secs_f64();
        let now_ns = ctx.now().as_nanos();
        for slot in waiters {
            let mut resp = slot.waiter.query.response_to();
            resp.flags.recursion_available = true;
            resp.rcode = Rcode::ServFail;
            self.stats.stub_answers += 1;
            let waited_ns = (((now - slot.arrived).max(0.0)) * 1e9) as u64;
            self.log_answer(now_ns, slot.waiter.query.id, AnswerClass::ServFail, waited_ns);
            ctx.send_udp(self.addr, slot.waiter.stub, resp.encode_into(&mut self.scratch));
        }
        self.publish_snapshot();
    }

    /// The resolution completed: fill the cache (positive, or negative
    /// with the SOA-derived TTL) and fan the answer out to every
    /// waiter. The lead miss is charged the full resolution latency;
    /// coalesced waiters are *delayed hits*, each charged exactly the
    /// residual wait from its own arrival.
    fn finish(&mut self, ctx: &mut Ctx<'_>, task_id: u64, rcode: Rcode, neg_ttl: Option<u32>) {
        let Some(task) = self.tasks.remove(&task_id) else {
            return;
        };
        if let Some(id) = task.outstanding {
            self.upstream_map.remove(&id);
        }
        let now = ctx.now().as_secs_f64();
        let done = self.outstanding.complete(&task.key_name, task.qtype);
        let (started, waiters) = match done {
            Some(c) => (c.started, c.waiters),
            None => (now, Vec::new()),
        };
        let fill = FillInfo {
            latency: (now - started).max(0.0),
            requests: (waiters.len() as u64).max(1),
        };
        let out = if rcode == Rcode::NoError && !task.answers.is_empty() {
            self.cache
                .put_positive(&task.key_name, task.qtype, task.answers.clone(), now, fill)
        } else if rcode == Rcode::NxDomain || task.answers.is_empty() {
            self.cache
                .put_negative(&task.key_name, task.qtype, rcode, neg_ttl, now, fill)
        } else {
            Default::default()
        };
        if out.evicted > 0 {
            self.stats.evictions += out.evicted as u64;
            if tel::enabled() {
                tel::mark_at(ctx.now().as_nanos(), rsv_kinds().evict, task_id, out.evicted as u64);
            }
        }
        if tel::enabled() {
            tel::mark_at(ctx.now().as_nanos(), rsv_kinds().answer, task_id, u64::from(rcode.to_u16()));
        }
        let now_ns = ctx.now().as_nanos();
        for (i, slot) in waiters.into_iter().enumerate() {
            let mut resp = slot.waiter.query.response_to();
            resp.flags.recursion_available = true;
            resp.rcode = rcode;
            resp.answers = task.answers.clone();
            self.stats.stub_answers += 1;
            let waited_ns = (((now - slot.arrived).max(0.0)) * 1e9) as u64;
            // The lead of a client-launched task is the miss; everyone
            // else (including anyone who joined a prefetch refresh)
            // coalesced mid-flight and is a delayed hit.
            let class = if i == 0 && !task.prefetch {
                AnswerClass::Miss
            } else {
                AnswerClass::DelayedHit
            };
            // (delayed_hits was already counted at join time.)
            if class == AnswerClass::DelayedHit && tel::enabled() {
                tel::mark_at(now_ns, rsv_kinds().delayed_hit, task_id, waited_ns);
            }
            self.log_answer(now_ns, slot.waiter.query.id, class, waited_ns);
            ctx.send_udp(self.addr, slot.waiter.stub, resp.encode_into(&mut self.scratch));
        }
        self.publish_snapshot();
    }

    fn handle_upstream_response(&mut self, ctx: &mut Ctx<'_>, resp: Message) {
        let Some(&task_id) = self.upstream_map.get(&resp.id) else {
            return; // late or unknown response
        };
        {
            let Some(task) = self.tasks.get(&task_id) else {
                return;
            };
            if task.outstanding != Some(resp.id) {
                return;
            }
        }
        self.upstream_map.remove(&resp.id);

        // Classify: answer / referral / negative.
        if resp.rcode == Rcode::NxDomain {
            // RFC 2308: negative TTL from the authority-section SOA.
            let neg_ttl = negative_ttl(&resp.authorities);
            self.finish(ctx, task_id, Rcode::NxDomain, neg_ttl);
            return;
        }
        if resp.rcode != Rcode::NoError {
            // SERVFAIL/REFUSED/FormErr from one server says nothing
            // about the others (lame delegation, overload, partial
            // outage): fail over to the next listed nameserver rather
            // than giving up — same path as a timeout.
            if let Some(task) = self.tasks.get_mut(&task_id) {
                task.outstanding = None;
            }
            self.failover(ctx, task_id);
            return;
        }
        if !resp.answers.is_empty() {
            let task = self.tasks.get_mut(&task_id).expect("task exists");
            task.answers.extend(resp.answers.iter().cloned());
            let has_final = resp.answers.iter().any(|r| r.rtype() == task.qtype);
            let cname_target = resp.answers.iter().rev().find_map(|r| match &r.rdata {
                RData::Cname(t) => Some(t.clone()),
                _ => None,
            });
            if !has_final && task.qtype != RecordType::CNAME {
                if let Some(target) = cname_target {
                    task.cname_hops += 1;
                    if task.cname_hops > 8 {
                        self.fail(ctx, task_id);
                        return;
                    }
                    task.qname = target;
                    let servers = self.best_servers(&self.tasks[&task_id].qname);
                    let idx = self.start_idx(task_id, servers.len());
                    let task = self.tasks.get_mut(&task_id).expect("task exists");
                    task.servers = servers;
                    task.server_idx = idx;
                    self.send_upstream(ctx, task_id);
                    return;
                }
            }
            self.finish(ctx, task_id, Rcode::NoError, None);
            return;
        }
        // Referral?
        let ns_owner = resp
            .authorities
            .iter()
            .find(|r| r.rtype() == RecordType::NS)
            .map(|r| r.name.clone());
        if let Some(zone) = ns_owner {
            if !resp.flags.authoritative {
                let mut addrs: Vec<IpAddr> = Vec::new();
                for rec in &resp.additionals {
                    match &rec.rdata {
                        RData::A(ip) => addrs.push(IpAddr::V4(*ip)),
                        RData::Aaaa(ip) => addrs.push(IpAddr::V6(*ip)),
                        _ => {}
                    }
                }
                if addrs.is_empty() {
                    // Glue-less: unsupported on this host (see module doc).
                    self.fail(ctx, task_id);
                    return;
                }
                self.delegations.insert(zone, addrs.clone());
                let idx = self.start_idx(task_id, addrs.len());
                let task = self.tasks.get_mut(&task_id).expect("task exists");
                task.servers = addrs;
                task.server_idx = idx;
                self.send_upstream(ctx, task_id);
                return;
            }
        }
        // NODATA: also negatively cacheable per RFC 2308, SOA-derived.
        let neg_ttl = negative_ttl(&resp.authorities);
        self.finish(ctx, task_id, Rcode::NoError, neg_ttl);
    }
}

impl Host for SimResolver {
    fn on_udp(&mut self, ctx: &mut Ctx<'_>, from: SocketAddr, _to: SocketAddr, data: PacketBytes) {
        let Ok(msg) = Message::decode(&data) else {
            return;
        };
        if msg.flags.response {
            self.handle_upstream_response(ctx, msg);
        } else {
            self.handle_stub_query(ctx, from, msg);
        }
    }

    fn on_tcp_event(&mut self, _ctx: &mut Ctx<'_>, _event: TcpEvent) {
        // Stub-facing TCP is not modelled; the §5.2 experiments exercise
        // TCP on the authoritative side.
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let task_id = token >> 16;
        let attempt_id = (token & 0xffff) as u16;
        match self.tasks.get_mut(&task_id) {
            Some(task) if task.outstanding == Some(attempt_id) => {
                // That exact attempt timed out.
                task.outstanding = None;
                self.upstream_map.remove(&attempt_id);
                if tel::enabled() {
                    let t = ctx.now().as_nanos();
                    tel::mark_at(t, rsv_kinds().timeout, task_id, u64::from(attempt_id));
                }
            }
            _ => return, // answered, superseded or gone
        }
        self.failover(ctx, task_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use dns_server::engine::ServerEngine;
    use dns_server::sim_server::SimDnsServer;
    use dns_wire::record::Record;
    use dns_wire::Soa;
    use dns_zone::catalog::Catalog;
    use dns_zone::zone::Zone;
    use ldp_cache::{PolicyKind, PrefetchConfig};
    use netsim::{SimConfig, SimTime, Simulator, Topology};

    /// A stub that records every response it receives and can send
    /// pre-scheduled queries when its timers fire (token = index into
    /// `sends`).
    struct CaptureStub {
        addr: SocketAddr,
        resolver: SocketAddr,
        sends: Vec<Message>,
        got: Arc<Mutex<Vec<Message>>>,
    }

    impl Host for CaptureStub {
        fn on_udp(
            &mut self,
            _ctx: &mut Ctx<'_>,
            _from: SocketAddr,
            _to: SocketAddr,
            data: PacketBytes,
        ) {
            if let Ok(msg) = Message::decode(&data) {
                self.got.lock().expect("capture lock").push(msg);
            }
        }
        fn on_tcp_event(&mut self, _ctx: &mut Ctx<'_>, _event: TcpEvent) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            if let Some(q) = self.sends.get(token as usize) {
                ctx.send_udp(self.addr, self.resolver, q.encode());
            }
        }
    }

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn soa_rec(zone: &str, minimum: u32) -> Record {
        Record::new(
            name(zone),
            3600,
            RData::Soa(Soa {
                mname: name("ns.example."),
                rname: name("host.example."),
                serial: 1,
                refresh: 7200,
                retry: 900,
                expire: 1_209_600,
                minimum,
            }),
        )
    }

    fn good_engine() -> Arc<ServerEngine> {
        let mut zone = Zone::new(name("example."));
        zone.insert(soa_rec("example.", 300)).unwrap();
        zone.insert(Record::new(
            name("www.example."),
            3600,
            RData::A("192.0.2.1".parse().unwrap()),
        ))
        .unwrap();
        zone.insert(Record::new(
            name("w2.example."),
            3600,
            RData::A("192.0.2.2".parse().unwrap()),
        ))
        .unwrap();
        let mut catalog = Catalog::new();
        catalog.insert(zone);
        Arc::new(ServerEngine::with_catalog(catalog))
    }

    /// Empty catalog: the server answers, but never with NoError +
    /// data — the resolver must treat it as a failed attempt.
    fn lame_engine() -> Arc<ServerEngine> {
        Arc::new(ServerEngine::with_catalog(Catalog::new()))
    }

    struct Rig {
        sim: Simulator,
        got: Arc<Mutex<Vec<Message>>>,
        answers: Arc<Mutex<Vec<AnswerEvent>>>,
        snapshot: Arc<Mutex<ResolverSnapshot>>,
        stub_addr: SocketAddr,
        resolver_addr: SocketAddr,
        server_ids: Vec<netsim::HostId>,
    }

    /// Build a sim with a stub (optionally pre-loaded with queries to
    /// send at scheduled virtual times), a resolver hinted at
    /// `upstreams` in order, and one server host per `Some(engine)`
    /// entry (a `None` upstream is a dead address — queries to it
    /// vanish).
    fn scheduled_rig(
        upstreams: &[Option<Arc<ServerEngine>>],
        sends: Vec<(SimTime, Message)>,
        tune: impl FnOnce(&mut SimResolver),
    ) -> Rig {
        let mut sim = Simulator::new(Topology::default(), SimConfig::default());
        let mut hints = Vec::new();
        let mut server_ids = Vec::new();
        for (i, up) in upstreams.iter().enumerate() {
            let ip: IpAddr = format!("10.0.0.{}", i + 1).parse().unwrap();
            hints.push(ip);
            if let Some(engine) = up {
                let server =
                    SimDnsServer::new(engine.clone(), SocketAddr::new(ip, 53), None);
                server_ids.push(sim.add_host(&[ip], Box::new(server)));
            }
        }
        let resolver_addr: SocketAddr = "10.1.0.1:53".parse().unwrap();
        let mut resolver = SimResolver::new(resolver_addr, hints);
        let answers = Arc::new(Mutex::new(Vec::new()));
        let snapshot = Arc::new(Mutex::new(ResolverSnapshot::default()));
        resolver.set_answer_log(Arc::clone(&answers));
        resolver.set_stats_out(Arc::clone(&snapshot));
        tune(&mut resolver);
        sim.add_host(&[resolver_addr.ip()], Box::new(resolver));
        let got = Arc::new(Mutex::new(Vec::new()));
        let stub_addr: SocketAddr = "10.2.0.1:5353".parse().unwrap();
        let stub = CaptureStub {
            addr: stub_addr,
            resolver: resolver_addr,
            sends: sends.iter().map(|(_, m)| m.clone()).collect(),
            got: Arc::clone(&got),
        };
        let stub_id = sim.add_host(&[stub_addr.ip()], Box::new(stub));
        for (i, (at, _)) in sends.iter().enumerate() {
            sim.schedule_timer(stub_id, *at, i as u64);
        }
        Rig {
            sim,
            got,
            answers,
            snapshot,
            stub_addr,
            resolver_addr,
            server_ids,
        }
    }

    fn rig(upstreams: &[Option<Arc<ServerEngine>>], tune: impl FnOnce(&mut SimResolver)) -> Rig {
        scheduled_rig(upstreams, Vec::new(), tune)
    }

    fn ask(rig: &mut Rig, id: u16, qname: &str) {
        let q = Message::query(id, name(qname), RecordType::A);
        rig.sim
            .inject_udp(rig.stub_addr, rig.resolver_addr, q.encode());
    }

    #[test]
    fn timeout_fails_over_to_next_nameserver() {
        // First hint is a dead address: the attempt must time out and
        // the query succeed via the second server.
        let mut rig = rig(&[None, Some(good_engine())], |r| r.max_retries = 3);
        ask(&mut rig, 1, "www.example.");
        rig.sim.run();
        let got = rig.got.lock().expect("capture lock");
        assert_eq!(got.len(), 1, "exactly one answer to the stub");
        assert_eq!(got[0].rcode, Rcode::NoError);
        assert!(!got[0].answers.is_empty(), "positive answer after failover");
    }

    #[test]
    fn error_rcode_fails_over_to_next_nameserver() {
        // First server answers REFUSED/SERVFAIL (lame); a single bad
        // rcode must advance to the next listed server, not SERVFAIL
        // the stub.
        let mut rig = rig(&[Some(lame_engine()), Some(good_engine())], |r| {
            r.max_retries = 3;
        });
        ask(&mut rig, 2, "www.example.");
        rig.sim.run();
        let got = rig.got.lock().expect("capture lock");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rcode, Rcode::NoError, "failover past the lame server");
        assert!(!got[0].answers.is_empty());
    }

    #[test]
    fn exhausted_retry_budget_servfails() {
        let mut rig = rig(&[None, Some(good_engine())], |r| r.max_retries = 0);
        ask(&mut rig, 3, "www.example.");
        rig.sim.run();
        let got = rig.got.lock().expect("capture lock");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rcode, Rcode::ServFail, "no budget to reach server 2");
    }

    #[test]
    fn rotation_spreads_first_attempts() {
        // Two good servers, two queries: with rotation on, task 0
        // starts at server 0 and task 1 at server 1.
        let mut rig = rig(&[Some(good_engine()), Some(good_engine())], |r| {
            r.rotate_servers = true;
        });
        ask(&mut rig, 4, "www.example.");
        ask(&mut rig, 5, "w2.example.");
        rig.sim.run();
        let rx: Vec<u64> = rig
            .server_ids
            .iter()
            .map(|&id| rig.sim.stats(id).udp_rx)
            .collect();
        assert_eq!(rx, vec![1, 1], "one first attempt per server");
    }

    #[test]
    fn backoff_draws_stay_within_bounds_and_grow() {
        let mut r = SimResolver::new("10.1.0.1:53".parse().unwrap(), vec![]);
        let cap = SimDuration::from_secs(8);
        r.backoff_cap = Some(cap);
        let base = r.timeout;
        let mut prev = base;
        let mut grew = false;
        for _ in 0..64 {
            let next = r.next_timeout(prev);
            assert!(next >= base, "never below the base timeout");
            assert!(next <= cap, "never above the cap");
            if next > prev {
                grew = true;
            }
            prev = next;
        }
        assert!(grew, "decorrelated jitter must actually back off");
    }

    #[test]
    fn fixed_timeout_without_backoff() {
        let mut r = SimResolver::new("10.1.0.1:53".parse().unwrap(), vec![]);
        let base = r.timeout;
        assert_eq!(r.next_timeout(base), base);
        assert_eq!(r.next_timeout(SimDuration::from_secs(30)), base);
    }

    #[test]
    fn concurrent_misses_coalesce_to_one_upstream_query() {
        // Three stubs queries for the same cold name arrive before the
        // upstream answer: exactly one upstream query, three answers,
        // classes Miss + DelayedHit + DelayedHit.
        let mut rig = rig(&[Some(good_engine())], |_| {});
        ask(&mut rig, 10, "www.example.");
        ask(&mut rig, 11, "www.example.");
        ask(&mut rig, 12, "www.example.");
        rig.sim.run();
        let got = rig.got.lock().expect("capture lock");
        assert_eq!(got.len(), 3, "every stub query answered");
        for m in got.iter() {
            assert_eq!(m.rcode, Rcode::NoError);
            assert!(!m.answers.is_empty());
        }
        assert_eq!(
            rig.sim.stats(rig.server_ids[0]).udp_rx,
            1,
            "dedup invariant: one upstream query for N concurrent misses"
        );
        let log = rig.answers.lock().expect("answer log");
        let classes: Vec<AnswerClass> = log.iter().map(|e| e.class).collect();
        assert_eq!(
            classes,
            vec![AnswerClass::Miss, AnswerClass::DelayedHit, AnswerClass::DelayedHit]
        );
        // The lead waited longest; joiners arrived later so waited less
        // (or equally, with zero-latency links).
        assert!(log[1].waited_ns <= log[0].waited_ns);
        assert!(log[2].waited_ns <= log[1].waited_ns);
        let snap = rig.snapshot.lock().expect("snapshot");
        assert_eq!(snap.stats.delayed_hits, 2);
        assert_eq!(snap.outstanding.leads, 1);
        assert_eq!(snap.outstanding.coalesced, 2);
    }

    #[test]
    fn negative_ttl_derived_from_soa_not_hardcoded() {
        // The zone SOA has MINIMUM=300. An NXDOMAIN must be cached for
        // 300s — a re-ask at t=60s (past the old hardcoded 30s) must be
        // served from cache, not re-resolved.
        let sends = vec![
            (SimTime::from_secs_f64(0.0), Message::query(20, name("missing.example."), RecordType::A)),
            (SimTime::from_secs_f64(60.0), Message::query(21, name("missing.example."), RecordType::A)),
            (SimTime::from_secs_f64(400.0), Message::query(22, name("missing.example."), RecordType::A)),
        ];
        let mut rig = scheduled_rig(&[Some(good_engine())], sends, |_| {});
        rig.sim.run();
        let got = rig.got.lock().expect("capture lock");
        assert_eq!(got.len(), 3);
        for m in got.iter() {
            assert_eq!(m.rcode, Rcode::NxDomain);
        }
        assert_eq!(
            rig.sim.stats(rig.server_ids[0]).udp_rx,
            2,
            "t=60 from negative cache (SOA ttl 300); t=400 re-resolved"
        );
        let log = rig.answers.lock().expect("answer log");
        let classes: Vec<AnswerClass> = log.iter().map(|e| e.class).collect();
        assert_eq!(
            classes,
            vec![AnswerClass::Miss, AnswerClass::Hit, AnswerClass::Miss]
        );
    }

    #[test]
    fn prefetch_refreshes_hot_name_before_expiry() {
        // www.example has TTL 3600; with a 0.5 trigger fraction a hit
        // at t=2000 (remaining 1600 < 1800) must launch a background
        // refresh: 2 upstream queries total, yet both client answers
        // are {Miss, Hit} — the refresh is invisible to clients.
        let sends = vec![
            (SimTime::from_secs_f64(0.0), Message::query(30, name("www.example."), RecordType::A)),
            (SimTime::from_secs_f64(2000.0), Message::query(31, name("www.example."), RecordType::A)),
        ];
        let mut rig = scheduled_rig(&[Some(good_engine())], sends, |r| {
            r.set_cache_config(CacheConfig {
                prefetch: Some(PrefetchConfig {
                    trigger_fraction: 0.5,
                    rate_per_sec: 1.0,
                    burst: 2.0,
                }),
                ..CacheConfig::default()
            });
        });
        rig.sim.run();
        let got = rig.got.lock().expect("capture lock");
        assert_eq!(got.len(), 2, "clients see only their two answers");
        assert_eq!(rig.sim.stats(rig.server_ids[0]).udp_rx, 2, "miss + prefetch");
        let snap = rig.snapshot.lock().expect("snapshot");
        assert_eq!(snap.stats.prefetches, 1);
        let log = rig.answers.lock().expect("answer log");
        let classes: Vec<AnswerClass> = log.iter().map(|e| e.class).collect();
        assert_eq!(classes, vec![AnswerClass::Miss, AnswerClass::Hit]);
    }

    #[test]
    fn bounded_cache_evicts_deterministically() {
        // Capacity 1 LRU: www evicted by w2, so the re-ask of www goes
        // upstream again.
        let sends = vec![
            (SimTime::from_secs_f64(0.0), Message::query(40, name("www.example."), RecordType::A)),
            (SimTime::from_secs_f64(1.0), Message::query(41, name("w2.example."), RecordType::A)),
            (SimTime::from_secs_f64(2.0), Message::query(42, name("www.example."), RecordType::A)),
        ];
        let mut rig = scheduled_rig(&[Some(good_engine())], sends, |r| {
            r.set_cache_config(CacheConfig::bounded(1, PolicyKind::Lru));
        });
        rig.sim.run();
        assert_eq!(rig.sim.stats(rig.server_ids[0]).udp_rx, 3, "all three miss");
        let snap = rig.snapshot.lock().expect("snapshot");
        assert_eq!(snap.stats.evictions, 2);
        assert_eq!(snap.cache_len, 1);
    }
}
