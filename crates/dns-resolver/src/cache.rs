//! The resolver cache, backed by the [`ldp_cache`] subsystem.
//!
//! This module keeps the first-generation `Cache` API (used by the
//! synchronous [`crate::IterativeResolver`] for zone construction's
//! cold-cache walks) as a thin shim over [`ldp_cache::ResolverCache`],
//! and re-exports the subsystem's types for everyone else. The shim is
//! unbounded (the legacy behavior) but inherits the subsystem's
//! correctness fixes: empty or zero-TTL record sets are rejected
//! instead of inserted already-expired, and TTLs are clamped per
//! RFC 2181 §8.

use dns_wire::{Name, Rcode, Record, RecordType};

pub use ldp_cache::{
    negative_ttl, CacheConfig, CacheStats, CachedAnswer, FillInfo, PolicyKind, PrefetchConfig,
    PutOutcome, ResolverCache,
};

/// TTL-aware resolver cache (legacy unbounded API).
#[derive(Debug)]
pub struct Cache {
    inner: ResolverCache,
}

impl Default for Cache {
    fn default() -> Self {
        Cache::new()
    }
}

impl Cache {
    /// Empty cache.
    pub fn new() -> Self {
        Cache {
            inner: ResolverCache::unbounded(),
        }
    }

    /// Look up a question at time `now` (expired entries miss and are
    /// evicted lazily).
    pub fn get(&mut self, name: &Name, qtype: RecordType, now: f64) -> Option<CachedAnswer> {
        self.inner.get(name, qtype, now)
    }

    /// Insert a positive answer; TTL is the minimum record TTL, clamped
    /// per RFC 2181 §8. Empty or zero-TTL sets are not inserted.
    pub fn put_positive(&mut self, name: &Name, qtype: RecordType, records: Vec<Record>, now: f64) {
        self.inner
            .put_positive(name, qtype, records, now, FillInfo::default());
    }

    /// Insert a negative answer with an explicit negative TTL (from the
    /// SOA minimum, RFC 2308).
    pub fn put_negative(&mut self, name: &Name, qtype: RecordType, rcode: Rcode, neg_ttl: u32, now: f64) {
        self.inner
            .put_negative(name, qtype, rcode, Some(neg_ttl), now, FillInfo::default());
    }

    /// Entries currently stored (including not-yet-evicted expired ones).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        let s = self.inner.stats();
        (s.hits, s.misses)
    }

    /// Drop everything (a "cold cache" reset — zone construction
    /// requires cold-cache walks, paper §2.3).
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::RData;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn a_rec(name: &str, ttl: u32) -> Record {
        Record::new(n(name), ttl, RData::A("1.2.3.4".parse().unwrap()))
    }

    #[test]
    fn positive_hit_until_ttl() {
        let mut c = Cache::new();
        c.put_positive(&n("www.example"), RecordType::A, vec![a_rec("www.example", 60)], 100.0);
        assert!(c.get(&n("www.example"), RecordType::A, 120.0).is_some());
        assert!(c.get(&n("www.example"), RecordType::A, 159.9).is_some());
        assert!(c.get(&n("www.example"), RecordType::A, 160.1).is_none());
        // Evicted after expiry.
        assert!(c.is_empty());
    }

    #[test]
    fn min_ttl_of_set_governs() {
        let mut c = Cache::new();
        c.put_positive(
            &n("x.example"),
            RecordType::A,
            vec![a_rec("x.example", 300), a_rec("x.example", 10)],
            0.0,
        );
        assert!(c.get(&n("x.example"), RecordType::A, 9.0).is_some());
        assert!(c.get(&n("x.example"), RecordType::A, 11.0).is_none());
    }

    #[test]
    fn negative_cached_with_rcode() {
        let mut c = Cache::new();
        c.put_negative(&n("no.example"), RecordType::A, Rcode::NxDomain, 30, 0.0);
        match c.get(&n("no.example"), RecordType::A, 10.0) {
            Some(CachedAnswer::Negative(Rcode::NxDomain)) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(c.get(&n("no.example"), RecordType::A, 31.0).is_none());
    }

    #[test]
    fn type_distinguishes_entries() {
        let mut c = Cache::new();
        c.put_positive(&n("x.example"), RecordType::A, vec![a_rec("x.example", 60)], 0.0);
        assert!(c.get(&n("x.example"), RecordType::AAAA, 1.0).is_none());
        assert!(c.get(&n("x.example"), RecordType::A, 1.0).is_some());
    }

    #[test]
    fn hit_miss_counters() {
        let mut c = Cache::new();
        c.put_positive(&n("x.example"), RecordType::A, vec![a_rec("x.example", 60)], 0.0);
        c.get(&n("x.example"), RecordType::A, 1.0);
        c.get(&n("y.example"), RecordType::A, 1.0);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn clear_resets() {
        let mut c = Cache::new();
        c.put_positive(&n("x.example"), RecordType::A, vec![a_rec("x.example", 60)], 0.0);
        c.clear();
        assert!(c.get(&n("x.example"), RecordType::A, 0.0).is_none());
    }

    #[test]
    fn empty_set_is_not_inserted_expired() {
        // Regression: the first-generation cache inserted an entry with
        // expires = now + 0 here, churning the map for nothing.
        let mut c = Cache::new();
        c.put_positive(&n("x.example"), RecordType::A, vec![], 0.0);
        assert!(c.is_empty());
    }

    #[test]
    fn rfc2181_overflowed_ttl_not_inserted() {
        let mut c = Cache::new();
        c.put_positive(&n("x.example"), RecordType::A, vec![a_rec("x.example", u32::MAX)], 0.0);
        assert!(c.is_empty(), "TTL with the high bit set means do-not-cache");
    }
}
