//! The resolver cache: TTL-bounded positive and negative entries.
//!
//! Time is an explicit parameter (seconds, any epoch) so the same cache
//! runs under the simulator's virtual clock or the wall clock.

use std::collections::HashMap;

use dns_wire::{Name, Rcode, Record, RecordType};

/// A cached outcome for a (name, type) question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedAnswer {
    /// Positive answer records (answer-section records, CNAMEs included).
    Positive(Vec<Record>),
    /// Negative result with the rcode to reproduce (NXDOMAIN or NODATA
    /// as NoError-with-no-answers).
    Negative(Rcode),
}

#[derive(Debug, Clone)]
struct Entry {
    answer: CachedAnswer,
    expires: f64,
}

/// TTL-aware resolver cache.
#[derive(Debug, Default)]
pub struct Cache {
    entries: HashMap<(Name, u16), Entry>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Empty cache.
    pub fn new() -> Self {
        Cache::default()
    }

    /// Look up a question at time `now` (expired entries miss and are
    /// evicted lazily).
    pub fn get(&mut self, name: &Name, qtype: RecordType, now: f64) -> Option<CachedAnswer> {
        let key = (name.clone(), qtype.to_u16());
        match self.entries.get(&key) {
            Some(e) if e.expires > now => {
                self.hits += 1;
                Some(e.answer.clone())
            }
            Some(_) => {
                self.entries.remove(&key);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a positive answer; TTL is the minimum record TTL.
    pub fn put_positive(&mut self, name: &Name, qtype: RecordType, records: Vec<Record>, now: f64) {
        let ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0);
        self.entries.insert(
            (name.clone(), qtype.to_u16()),
            Entry {
                answer: CachedAnswer::Positive(records),
                expires: now + ttl as f64,
            },
        );
    }

    /// Insert a negative answer with an explicit negative TTL (from the
    /// SOA minimum, RFC 2308).
    pub fn put_negative(&mut self, name: &Name, qtype: RecordType, rcode: Rcode, neg_ttl: u32, now: f64) {
        self.entries.insert(
            (name.clone(), qtype.to_u16()),
            Entry {
                answer: CachedAnswer::Negative(rcode),
                expires: now + neg_ttl as f64,
            },
        );
    }

    /// Entries currently stored (including not-yet-evicted expired ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drop everything (a "cold cache" reset — zone construction
    /// requires cold-cache walks, paper §2.3).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::RData;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn a_rec(name: &str, ttl: u32) -> Record {
        Record::new(n(name), ttl, RData::A("1.2.3.4".parse().unwrap()))
    }

    #[test]
    fn positive_hit_until_ttl() {
        let mut c = Cache::new();
        c.put_positive(&n("www.example"), RecordType::A, vec![a_rec("www.example", 60)], 100.0);
        assert!(c.get(&n("www.example"), RecordType::A, 120.0).is_some());
        assert!(c.get(&n("www.example"), RecordType::A, 159.9).is_some());
        assert!(c.get(&n("www.example"), RecordType::A, 160.1).is_none());
        // Evicted after expiry.
        assert!(c.is_empty());
    }

    #[test]
    fn min_ttl_of_set_governs() {
        let mut c = Cache::new();
        c.put_positive(
            &n("x.example"),
            RecordType::A,
            vec![a_rec("x.example", 300), a_rec("x.example", 10)],
            0.0,
        );
        assert!(c.get(&n("x.example"), RecordType::A, 9.0).is_some());
        assert!(c.get(&n("x.example"), RecordType::A, 11.0).is_none());
    }

    #[test]
    fn negative_cached_with_rcode() {
        let mut c = Cache::new();
        c.put_negative(&n("no.example"), RecordType::A, Rcode::NxDomain, 30, 0.0);
        match c.get(&n("no.example"), RecordType::A, 10.0) {
            Some(CachedAnswer::Negative(Rcode::NxDomain)) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(c.get(&n("no.example"), RecordType::A, 31.0).is_none());
    }

    #[test]
    fn type_distinguishes_entries() {
        let mut c = Cache::new();
        c.put_positive(&n("x.example"), RecordType::A, vec![a_rec("x.example", 60)], 0.0);
        assert!(c.get(&n("x.example"), RecordType::AAAA, 1.0).is_none());
        assert!(c.get(&n("x.example"), RecordType::A, 1.0).is_some());
    }

    #[test]
    fn hit_miss_counters() {
        let mut c = Cache::new();
        c.put_positive(&n("x.example"), RecordType::A, vec![a_rec("x.example", 60)], 0.0);
        c.get(&n("x.example"), RecordType::A, 1.0);
        c.get(&n("y.example"), RecordType::A, 1.0);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn clear_resets() {
        let mut c = Cache::new();
        c.put_positive(&n("x.example"), RecordType::A, vec![a_rec("x.example", 60)], 0.0);
        c.clear();
        assert!(c.get(&n("x.example"), RecordType::A, 0.0).is_none());
    }
}
