//! Synchronous iterative resolution: walk the hierarchy from the root
//! hints, following referrals, chasing CNAMEs and resolving glue-less
//! nameservers — the algorithm a cold-cache recursive performs for each
//! query (paper §2.3/§2.4).
//!
//! The transport is abstracted behind [`Upstream`], so the same logic
//! resolves against the in-process simulated Internet (zone
//! construction), a set of `ServerEngine`s, or anything else.

use std::collections::HashMap;
use std::net::IpAddr;

use dns_wire::{Message, Name, Question, RData, Rcode, Record, RecordType};

use crate::cache::{Cache, CachedAnswer};

/// Where iterative queries go: given a target server address and a
/// query, produce its response (or `None` for timeout/unreachable).
pub trait Upstream {
    /// Perform one query/response exchange.
    fn exchange(&mut self, server: IpAddr, query: &Message) -> Option<Message>;
}

/// Blanket impl so closures can serve as upstreams in tests.
impl<F> Upstream for F
where
    F: FnMut(IpAddr, &Message) -> Option<Message>,
{
    fn exchange(&mut self, server: IpAddr, query: &Message) -> Option<Message> {
        self(server, query)
    }
}

/// Outcome of one resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// Final rcode.
    pub rcode: Rcode,
    /// Answer records (CNAME chain included).
    pub answers: Vec<Record>,
    /// Number of upstream queries it took.
    pub upstream_queries: usize,
    /// Whether any part was served from cache.
    pub from_cache: bool,
}

/// Errors during resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// No upstream server answered.
    Unreachable,
    /// Referral loop / depth exceeded.
    TooDeep,
    /// A response was malformed for its context.
    Lame(&'static str),
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::Unreachable => write!(f, "no upstream server answered"),
            ResolveError::TooDeep => write!(f, "resolution exceeded depth limit"),
            ResolveError::Lame(what) => write!(f, "lame response: {what}"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// An iterative resolver with cache and root hints.
pub struct IterativeResolver {
    /// Root server addresses (the hints file).
    pub root_hints: Vec<IpAddr>,
    /// The shared answer cache.
    pub cache: Cache,
    /// Delegation cache: zone apex → nameserver addresses learned from
    /// referrals (the "infrastructure cache").
    pub delegations: HashMap<Name, Vec<IpAddr>>,
    /// Set the DO bit on upstream queries.
    pub dnssec_ok: bool,
    /// Maximum referral-chain steps per query.
    pub max_depth: usize,
    next_id: u16,
}

impl IterativeResolver {
    /// New resolver with the given root hints.
    pub fn new(root_hints: Vec<IpAddr>) -> Self {
        IterativeResolver {
            root_hints,
            cache: Cache::new(),
            delegations: HashMap::new(),
            dnssec_ok: false,
            max_depth: 32,
            next_id: 1,
        }
    }

    fn fresh_id(&mut self) -> u16 {
        self.next_id = self.next_id.wrapping_add(1);
        self.next_id
    }

    /// Resolve `qname`/`qtype` at time `now` via `upstream`.
    pub fn resolve<U: Upstream>(
        &mut self,
        upstream: &mut U,
        qname: &Name,
        qtype: RecordType,
        now: f64,
    ) -> Result<Resolution, ResolveError> {
        self.resolve_inner(upstream, qname, qtype, now, 0)
    }

    fn resolve_inner<U: Upstream>(
        &mut self,
        upstream: &mut U,
        qname: &Name,
        qtype: RecordType,
        now: f64,
        depth: usize,
    ) -> Result<Resolution, ResolveError> {
        if depth > 4 {
            return Err(ResolveError::TooDeep);
        }
        // Cache check.
        if let Some(hit) = self.cache.get(qname, qtype, now) {
            return Ok(match hit {
                CachedAnswer::Positive(answers) => Resolution {
                    rcode: Rcode::NoError,
                    answers,
                    upstream_queries: 0,
                    from_cache: true,
                },
                CachedAnswer::Negative(rcode) => Resolution {
                    rcode,
                    answers: vec![],
                    upstream_queries: 0,
                    from_cache: true,
                },
            });
        }

        // Start from the deepest cached delegation enclosing qname.
        let mut servers = self.best_servers(qname);
        let mut queries = 0usize;
        let mut answers: Vec<Record> = Vec::new();
        let mut current_name = qname.clone();
        let mut steps = 0usize;

        loop {
            steps += 1;
            if steps > self.max_depth {
                return Err(ResolveError::TooDeep);
            }
            let mut q = Message::query(self.fresh_id(), current_name.clone(), qtype);
            q.flags.recursion_desired = false;
            if self.dnssec_ok {
                q.set_dnssec_ok(true);
            }

            // Try servers in order until one answers.
            let mut response = None;
            for &server in &servers {
                queries += 1;
                if let Some(r) = upstream.exchange(server, &q) {
                    response = Some(r);
                    break;
                }
            }
            let Some(resp) = response else {
                return Err(ResolveError::Unreachable);
            };

            match classify(&resp, &current_name, qtype) {
                Classified::Answer(mut recs) => {
                    // Chase a trailing CNAME if the chain didn't reach
                    // the target type.
                    let last_cname_target = recs.iter().rev().find_map(|r| match &r.rdata {
                        RData::Cname(t) => Some(t.clone()),
                        _ => None,
                    });
                    let has_final = recs.iter().any(|r| r.rtype() == qtype);
                    answers.append(&mut recs);
                    if !has_final && qtype != RecordType::CNAME {
                        if let Some(target) = last_cname_target {
                            // Restart resolution at the CNAME target.
                            let sub = self.resolve_inner(upstream, &target, qtype, now, depth + 1)?;
                            queries += sub.upstream_queries;
                            answers.extend(sub.answers);
                            let res = Resolution {
                                rcode: sub.rcode,
                                answers,
                                upstream_queries: queries,
                                from_cache: false,
                            };
                            self.cache_result(qname, qtype, &res, now);
                            return Ok(res);
                        }
                    }
                    let res = Resolution {
                        rcode: Rcode::NoError,
                        answers,
                        upstream_queries: queries,
                        from_cache: false,
                    };
                    self.cache_result(qname, qtype, &res, now);
                    return Ok(res);
                }
                Classified::Referral { zone, ns_names, glue } => {
                    // Remember the delegation.
                    let mut addrs: Vec<IpAddr> = Vec::new();
                    for ns in &ns_names {
                        if let Some(ips) = glue.get(ns) {
                            addrs.extend(ips.iter().copied());
                        }
                    }
                    if addrs.is_empty() {
                        // Glue-less delegation: resolve a nameserver name.
                        let ns = ns_names.first().ok_or(ResolveError::Lame("referral without NS"))?;
                        let sub = self.resolve_inner(upstream, ns, RecordType::A, now, depth + 1)?;
                        queries += sub.upstream_queries;
                        for r in &sub.answers {
                            if let RData::A(ip) = r.rdata {
                                addrs.push(IpAddr::V4(ip));
                            }
                        }
                        if addrs.is_empty() {
                            return Err(ResolveError::Lame("unresolvable NS"));
                        }
                    }
                    self.delegations.insert(zone, addrs.clone());
                    servers = addrs;
                }
                Classified::Negative(rcode, neg_ttl) => {
                    self.cache.put_negative(qname, qtype, rcode, neg_ttl, now);
                    return Ok(Resolution {
                        rcode,
                        answers,
                        upstream_queries: queries,
                        from_cache: false,
                    });
                }
                Classified::Broken(what) => return Err(ResolveError::Lame(what)),
            }
            // After a referral we re-ask the same question.
            current_name = qname.clone();
        }
    }

    /// The deepest known delegation enclosing `qname`, falling back to
    /// the root hints.
    fn best_servers(&self, qname: &Name) -> Vec<IpAddr> {
        let mut cur = Some(qname.clone());
        while let Some(name) = cur {
            if let Some(addrs) = self.delegations.get(&name) {
                return addrs.clone();
            }
            cur = name.parent();
        }
        self.root_hints.clone()
    }

    fn cache_result(&mut self, qname: &Name, qtype: RecordType, res: &Resolution, now: f64) {
        if res.rcode == Rcode::NoError && !res.answers.is_empty() {
            self.cache
                .put_positive(qname, qtype, res.answers.clone(), now);
        }
    }
}

enum Classified {
    Answer(Vec<Record>),
    Referral {
        zone: Name,
        ns_names: Vec<Name>,
        glue: HashMap<Name, Vec<IpAddr>>,
    },
    Negative(Rcode, u32),
    Broken(&'static str),
}

/// Classify an authoritative response per the iterative algorithm.
fn classify(resp: &Message, qname: &Name, qtype: RecordType) -> Classified {
    let _ = Question::new(qname.clone(), qtype);
    match resp.rcode {
        Rcode::NoError => {}
        Rcode::NxDomain => {
            let neg_ttl = soa_min_ttl(resp).unwrap_or(60);
            return Classified::Negative(Rcode::NxDomain, neg_ttl);
        }
        _ => return Classified::Broken("error rcode"),
    }
    if !resp.answers.is_empty() {
        return Classified::Answer(resp.answers.clone());
    }
    // Referral: NS in authority, not authoritative.
    let ns_names: Vec<Name> = resp
        .authorities
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::Ns(n) => Some(n.clone()),
            _ => None,
        })
        .collect();
    if !ns_names.is_empty() && !resp.flags.authoritative {
        let zone = resp
            .authorities
            .iter()
            .find(|r| r.rtype() == RecordType::NS)
            .map(|r| r.name.clone())
            .expect("just found NS");
        let mut glue: HashMap<Name, Vec<IpAddr>> = HashMap::new();
        for rec in &resp.additionals {
            match &rec.rdata {
                RData::A(ip) => glue.entry(rec.name.clone()).or_default().push(IpAddr::V4(*ip)),
                RData::Aaaa(ip) => glue.entry(rec.name.clone()).or_default().push(IpAddr::V6(*ip)),
                _ => {}
            }
        }
        return Classified::Referral { zone, ns_names, glue };
    }
    // NODATA.
    let neg_ttl = soa_min_ttl(resp).unwrap_or(60);
    Classified::Negative(Rcode::NoError, neg_ttl)
}

fn soa_min_ttl(resp: &Message) -> Option<u32> {
    resp.authorities.iter().find_map(|r| match &r.rdata {
        RData::Soa(soa) => Some(soa.minimum.min(r.ttl)),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_server::ServerEngine;
    use dns_wire::Soa;
    use dns_zone::{Catalog, Zone};
    use std::collections::HashMap as Map;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn soa(origin: &str) -> Record {
        Record::new(
            n(origin),
            3600,
            RData::Soa(Soa {
                mname: n("ns1.example"),
                rname: n("admin.example"),
                serial: 1,
                refresh: 1,
                retry: 1,
                expire: 1,
                minimum: 30,
            }),
        )
    }

    /// Build a three-level "Internet": root, com, google.com, each a
    /// separate engine at its own address.
    struct FakeInternet {
        engines: Map<IpAddr, ServerEngine>,
        pub queries: Vec<(IpAddr, String)>,
        pub dead: Vec<IpAddr>,
    }

    impl FakeInternet {
        fn new() -> Self {
            let mut engines = Map::new();
            let mut root = Zone::new(Name::root());
            root.insert(soa(".")).unwrap();
            root.insert(Record::new(Name::root(), 1, RData::Ns(n("a.root-servers.net")))).unwrap();
            root.insert(Record::new(n("com"), 1, RData::Ns(n("a.gtld-servers.net")))).unwrap();
            root.insert(Record::new(n("a.gtld-servers.net"), 1, RData::A("192.5.6.30".parse().unwrap()))).unwrap();
            root.insert(Record::new(n("a.root-servers.net"), 1, RData::A("198.41.0.4".parse().unwrap()))).unwrap();

            let mut com = Zone::new(n("com"));
            com.insert(soa("com")).unwrap();
            com.insert(Record::new(n("com"), 1, RData::Ns(n("a.gtld-servers.net")))).unwrap();
            com.insert(Record::new(n("google.com"), 1, RData::Ns(n("ns1.google.com")))).unwrap();
            com.insert(Record::new(n("ns1.google.com"), 1, RData::A("216.239.32.10".parse().unwrap()))).unwrap();
            // A glue-less delegation: nameserver under another TLD-ish
            // name served by the root (keeps the test self-contained).
            com.insert(Record::new(n("glueless.com"), 1, RData::Ns(n("ns.helper.com")))).unwrap();
            com.insert(Record::new(n("helper.com"), 1, RData::Ns(n("ns-helper-host.com")))).unwrap();
            com.insert(Record::new(n("ns-helper-host.com"), 1, RData::A("203.0.113.5".parse().unwrap()))).unwrap();

            let mut google = Zone::new(n("google.com"));
            google.insert(soa("google.com")).unwrap();
            google.insert(Record::new(n("google.com"), 1, RData::Ns(n("ns1.google.com")))).unwrap();
            google.insert(Record::new(n("www.google.com"), 300, RData::A("142.250.80.36".parse().unwrap()))).unwrap();
            google.insert(Record::new(n("alias.google.com"), 300, RData::Cname(n("www.google.com")))).unwrap();

            let mut helper = Zone::new(n("helper.com"));
            helper.insert(soa("helper.com")).unwrap();
            helper.insert(Record::new(n("helper.com"), 1, RData::Ns(n("ns-helper-host.com")))).unwrap();
            helper.insert(Record::new(n("ns.helper.com"), 300, RData::A("203.0.113.9".parse().unwrap()))).unwrap();

            let mut glueless = Zone::new(n("glueless.com"));
            glueless.insert(soa("glueless.com")).unwrap();
            glueless.insert(Record::new(n("glueless.com"), 1, RData::Ns(n("ns.helper.com")))).unwrap();
            glueless.insert(Record::new(n("www.glueless.com"), 300, RData::A("203.0.113.80".parse().unwrap()))).unwrap();

            let mk = |z: Zone| {
                let mut c = Catalog::new();
                c.insert(z);
                ServerEngine::with_catalog(c)
            };
            engines.insert(ip("198.41.0.4"), mk(root));
            engines.insert(ip("192.5.6.30"), mk(com));
            engines.insert(ip("216.239.32.10"), mk(google));
            engines.insert(ip("203.0.113.5"), mk(helper));
            engines.insert(ip("203.0.113.9"), mk(glueless));
            FakeInternet { engines, queries: vec![], dead: vec![] }
        }
    }

    impl Upstream for FakeInternet {
        fn exchange(&mut self, server: IpAddr, query: &Message) -> Option<Message> {
            self.queries.push((
                server,
                query.question().map(|q| q.name.to_string()).unwrap_or_default(),
            ));
            if self.dead.contains(&server) {
                return None;
            }
            let engine = self.engines.get(&server)?;
            Some(engine.answer(ip("10.0.0.99"), query))
        }
    }

    #[test]
    fn cold_cache_walks_root_tld_sld() {
        let mut net = FakeInternet::new();
        let mut r = IterativeResolver::new(vec![ip("198.41.0.4")]);
        let res = r.resolve(&mut net, &n("www.google.com"), RecordType::A, 0.0).unwrap();
        assert_eq!(res.rcode, Rcode::NoError);
        assert_eq!(res.answers.len(), 1);
        assert_eq!(res.upstream_queries, 3, "root → com → google.com");
        let path: Vec<IpAddr> = net.queries.iter().map(|(s, _)| *s).collect();
        assert_eq!(path, vec![ip("198.41.0.4"), ip("192.5.6.30"), ip("216.239.32.10")]);
    }

    #[test]
    fn warm_cache_answers_locally() {
        let mut net = FakeInternet::new();
        let mut r = IterativeResolver::new(vec![ip("198.41.0.4")]);
        r.resolve(&mut net, &n("www.google.com"), RecordType::A, 0.0).unwrap();
        let res = r.resolve(&mut net, &n("www.google.com"), RecordType::A, 1.0).unwrap();
        assert!(res.from_cache);
        assert_eq!(res.upstream_queries, 0);
    }

    #[test]
    fn delegation_cache_skips_upper_levels() {
        let mut net = FakeInternet::new();
        let mut r = IterativeResolver::new(vec![ip("198.41.0.4")]);
        r.resolve(&mut net, &n("www.google.com"), RecordType::A, 0.0).unwrap();
        net.queries.clear();
        // Different name, same zone: should go straight to ns1.google.com.
        let res = r.resolve(&mut net, &n("alias.google.com"), RecordType::A, 1.0).unwrap();
        assert!(!res.from_cache);
        assert_eq!(net.queries[0].0, ip("216.239.32.10"), "skipped root and com");
        // CNAME chased to the cached www answer.
        assert_eq!(res.answers.last().unwrap().rtype(), RecordType::A);
    }

    #[test]
    fn cname_chain_resolved() {
        let mut net = FakeInternet::new();
        let mut r = IterativeResolver::new(vec![ip("198.41.0.4")]);
        let res = r.resolve(&mut net, &n("alias.google.com"), RecordType::A, 0.0).unwrap();
        assert_eq!(res.rcode, Rcode::NoError);
        assert!(res.answers.iter().any(|rec| rec.rtype() == RecordType::CNAME));
        assert!(res.answers.iter().any(|rec| rec.rtype() == RecordType::A));
    }

    #[test]
    fn nxdomain_from_authoritative() {
        let mut net = FakeInternet::new();
        let mut r = IterativeResolver::new(vec![ip("198.41.0.4")]);
        let res = r.resolve(&mut net, &n("missing.google.com"), RecordType::A, 0.0).unwrap();
        assert_eq!(res.rcode, Rcode::NxDomain);
        // Negative answer is cached.
        let res2 = r.resolve(&mut net, &n("missing.google.com"), RecordType::A, 1.0).unwrap();
        assert!(res2.from_cache);
        assert_eq!(res2.rcode, Rcode::NxDomain);
    }

    #[test]
    fn glueless_delegation_resolves_ns_first() {
        let mut net = FakeInternet::new();
        let mut r = IterativeResolver::new(vec![ip("198.41.0.4")]);
        let res = r.resolve(&mut net, &n("www.glueless.com"), RecordType::A, 0.0).unwrap();
        assert_eq!(res.rcode, Rcode::NoError);
        assert_eq!(res.answers[0].rdata, RData::A("203.0.113.80".parse().unwrap()));
        // The NS name itself had to be resolved via helper.com.
        assert!(net.queries.iter().any(|(_, q)| q == "ns.helper.com."));
    }

    #[test]
    fn dead_root_unreachable() {
        let mut net = FakeInternet::new();
        net.dead.push(ip("198.41.0.4"));
        let mut r = IterativeResolver::new(vec![ip("198.41.0.4")]);
        let err = r.resolve(&mut net, &n("www.google.com"), RecordType::A, 0.0).unwrap_err();
        assert_eq!(err, ResolveError::Unreachable);
    }

    #[test]
    fn dead_primary_falls_back_to_secondary_hint() {
        let mut net = FakeInternet::new();
        net.dead.push(ip("9.9.9.9"));
        let mut r = IterativeResolver::new(vec![ip("9.9.9.9"), ip("198.41.0.4")]);
        let res = r.resolve(&mut net, &n("www.google.com"), RecordType::A, 0.0).unwrap();
        assert_eq!(res.rcode, Rcode::NoError);
        // One extra (failed) query against the dead hint.
        assert_eq!(res.upstream_queries, 4);
    }

    #[test]
    fn cache_expiry_forces_requery() {
        let mut net = FakeInternet::new();
        let mut r = IterativeResolver::new(vec![ip("198.41.0.4")]);
        r.resolve(&mut net, &n("www.google.com"), RecordType::A, 0.0).unwrap();
        net.queries.clear();
        // TTL of the answer is 300; at t=400 it must re-resolve.
        let res = r.resolve(&mut net, &n("www.google.com"), RecordType::A, 400.0).unwrap();
        assert!(!res.from_cache);
        assert!(!net.queries.is_empty());
    }
}
