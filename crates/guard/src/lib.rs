//! `ldp-guard`: the overload-and-recovery layer for the replay stack.
//!
//! LDplayer's replays run for hours (paper §3 replays a full day of
//! B-Root traffic); a querier crash or an overloaded server mid-run
//! used to lose the whole experiment. This crate makes degraded-mode
//! behavior an explicit, testable state machine instead of an
//! accident:
//!
//! - [`budget`]: [`RetryBudget`] — bounded retry attempts with
//!   capped decorrelated-jitter backoff, shared by every reconnect /
//!   restart loop in the workspace (lint rule R1 enforces that no
//!   retry loop runs without one).
//! - [`checkpoint`]: [`Checkpoint`] — a compact, versioned,
//!   line-based snapshot of replay progress (trace cursor, completed
//!   records, counters, virtual-time epoch) with an exact text
//!   round-trip, so a killed run resumes from the last cut and
//!   replays a byte-identical virtual-time transcript. v1 commits at
//!   quiescent cuts only; v2 ("fuzzy cut") commits at any instant by
//!   carrying per-query in-flight state.
//! - [`inflight`]: [`InflightEntry`] — the per-query state a v2
//!   checkpoint carries for each outstanding query (original send
//!   deadline, elapsed retransmits, retry-budget snapshot, admission
//!   status).
//! - [`admission`]: [`AdmissionController`] — a bounded in-flight
//!   window with deadline-aware shedding that records dropped seqs
//!   instead of stalling the replay clock.
//! - [`supervisor`]: [`Supervisor`] — heartbeat-monitored querier
//!   slots with bounded restart budgets and re-dispatch of a dead
//!   querier's unacknowledged trace span.
//! - [`config`]: [`GuardConfig`] — every knob in one place.
//! - [`rng`]: [`SplitMix64`] — the crate's own tiny seeded PRNG, so
//!   guard stays dependency-free and deterministic (lint rule D3).
//!
//! Everything here is pure logic over explicit `now` parameters — no
//! clocks, no threads, no I/O — so the whole crate unit-tests offline
//! and behaves identically under the simulator's virtual time and the
//! tokio engine's wall time.

#![warn(missing_docs)]

pub mod admission;
pub mod budget;
pub mod checkpoint;
pub mod config;
pub mod inflight;
pub mod rng;
pub mod supervisor;

pub use admission::{Admission, AdmissionConfig, AdmissionController};
pub use budget::{BudgetSnapshot, RetryBudget};
pub use checkpoint::{Checkpoint, CheckpointParseError};
pub use config::{GuardConfig, OverloadConfig, ReconnectConfig, RetransmitConfig};
pub use inflight::{InflightEntry, InflightStatus};
pub use rng::SplitMix64;
pub use supervisor::{Supervisor, SupervisorAction, SupervisorConfig};
