//! A tiny seeded PRNG so guard needs no `rand` dependency.
//!
//! SplitMix64 (Steele, Lea & Flood) — 64 bits of state, full-period,
//! passes BigCrush, and — the property guard actually cares about —
//! completely determined by its seed. All jittered backoff draws in
//! this crate flow through it, so two runs with equal seeds make
//! identical scheduling decisions (lint rule D3: no ambient
//! entropy in sim-reachable code).

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[lo, hi)`; returns `lo` when the range is
    /// empty. The modulo bias is negligible for the microsecond-scale
    /// backoff ranges guard draws from.
    pub fn uniform(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }

    /// The current stream position. Together with
    /// [`SplitMix64::from_state`] this makes the generator
    /// checkpointable: SplitMix64's whole state is one counter-like
    /// word, so saving it and reloading it resumes the stream exactly
    /// where it left off.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// A generator resumed at a previously captured stream position
    /// (the value [`SplitMix64::state`] returned).
    pub fn from_state(state: u64) -> Self {
        SplitMix64 { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn state_round_trip_resumes_stream_exactly() {
        let mut a = SplitMix64::new(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = SplitMix64::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.uniform(200, 1600);
            assert!((200..1600).contains(&v), "out of range: {v}");
        }
        assert_eq!(r.uniform(5, 5), 5, "empty range collapses to lo");
        assert_eq!(r.uniform(9, 3), 9, "inverted range collapses to lo");
    }
}
