//! Admission control on the querier's in-flight window.
//!
//! The replay engine must never let an overloaded sink stall the
//! clock: queries keep their trace-scheduled deadlines whatever the
//! network does. The controller therefore bounds the number of
//! in-flight queries and, when the window is full, *sheds* queries
//! that are already hopelessly late (recording their seqs so the
//! transcript and the `replay.shed` counter account for every dropped
//! query) instead of blocking the dispatch loop.

/// Admission policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum queries in flight at once. `0` disables admission
    /// control entirely (every offer admits).
    pub max_in_flight: usize,
    /// How far past its deadline a query may run while waiting for a
    /// slot before it is shed (µs).
    pub max_lateness_us: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_in_flight: 4096,
            max_lateness_us: 250_000,
        }
    }
}

/// The verdict on one offered query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// A slot was granted; the caller must pair this with
    /// [`AdmissionController::complete`].
    Admit,
    /// The window is full but the query is still within its lateness
    /// allowance — re-offer after yielding; do not block.
    Busy,
    /// The window is full and the query is too late to be worth
    /// sending; its seq has been recorded as shed.
    Shed,
}

/// Bounded in-flight window with deadline-aware shedding.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    in_flight: usize,
    admitted: u64,
    shed: Vec<u64>,
}

impl AdmissionController {
    /// A controller with an empty window.
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionController {
            cfg,
            in_flight: 0,
            admitted: 0,
            shed: Vec::new(),
        }
    }

    /// Offer query `seq` (deadline `deadline_us`, current time
    /// `now_us`) for dispatch.
    pub fn offer(&mut self, seq: u64, deadline_us: u64, now_us: u64) -> Admission {
        if self.cfg.max_in_flight == 0 || self.in_flight < self.cfg.max_in_flight {
            self.in_flight += 1;
            self.admitted += 1;
            return Admission::Admit;
        }
        if now_us > deadline_us.saturating_add(self.cfg.max_lateness_us) {
            // Shedding is idempotent per seq: a query re-offered after
            // a querier crash (its park timer died with the process)
            // must not be reported shed twice.
            if !self.shed.contains(&seq) {
                self.shed.push(seq);
            }
            return Admission::Shed;
        }
        Admission::Busy
    }

    /// A previously admitted query finished (answered, timed out, or
    /// errored) — free its slot.
    pub fn complete(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
    }

    /// Forget the whole in-flight window — a crashed querier's
    /// in-flight queries died with it. Only the live window is
    /// cleared: the shed history survives (and stays duplicate-free —
    /// re-offering a previously shed seq after the crash does not
    /// re-record it), while `admitted` keeps counting *grants*, so a
    /// query that is re-offered and re-admitted after the crash is
    /// counted once per grant, not once per distinct seq. Callers that
    /// park queries must re-offer them after calling this — in
    /// ascending seq order, so recovery is deterministic.
    pub fn reset_in_flight(&mut self) {
        self.in_flight = 0;
    }

    /// Queries currently holding slots.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Total admission *grants* so far. A query re-offered after a
    /// crash ([`AdmissionController::reset_in_flight`]) is granted —
    /// and counted — again, so this can exceed the number of distinct
    /// admitted seqs.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Distinct seqs shed so far, in first-shed order (a seq re-shed
    /// after a crash re-offer appears once).
    pub fn shed_seqs(&self) -> &[u64] {
        &self.shed
    }

    /// Count of distinct shed queries.
    pub fn shed_count(&self) -> u64 {
        self.shed.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AdmissionController {
        AdmissionController::new(AdmissionConfig {
            max_in_flight: 2,
            max_lateness_us: 1_000,
        })
    }

    #[test]
    fn admits_until_window_full_then_busy() {
        let mut ac = tiny();
        assert_eq!(ac.offer(0, 100, 50), Admission::Admit);
        assert_eq!(ac.offer(1, 100, 50), Admission::Admit);
        assert_eq!(ac.in_flight(), 2);
        // On time, window full: caller should yield and re-offer.
        assert_eq!(ac.offer(2, 100, 50), Admission::Busy);
        assert_eq!(ac.shed_count(), 0);
    }

    #[test]
    fn completion_frees_a_slot() {
        let mut ac = tiny();
        ac.offer(0, 100, 50);
        ac.offer(1, 100, 50);
        ac.complete();
        assert_eq!(ac.in_flight(), 1);
        assert_eq!(ac.offer(2, 100, 50), Admission::Admit);
        assert_eq!(ac.admitted(), 3);
    }

    #[test]
    fn late_query_is_shed_and_recorded() {
        let mut ac = tiny();
        ac.offer(0, 100, 50);
        ac.offer(1, 100, 50);
        // deadline 100, allowance 1000: at t=1101 it's past the limit.
        assert_eq!(ac.offer(7, 100, 1_101), Admission::Shed);
        assert_eq!(ac.offer(8, 100, 2_000), Admission::Shed);
        assert_eq!(ac.shed_seqs(), &[7, 8]);
        assert_eq!(ac.shed_count(), 2);
        // Shedding never consumed a slot.
        assert_eq!(ac.in_flight(), 2);
    }

    #[test]
    fn lateness_boundary_is_inclusive() {
        let mut ac = tiny();
        ac.offer(0, 100, 50);
        ac.offer(1, 100, 50);
        // Exactly deadline + allowance: still Busy, not shed.
        assert_eq!(ac.offer(2, 100, 1_100), Admission::Busy);
    }

    #[test]
    fn zero_window_disables_admission_control() {
        let mut ac = AdmissionController::new(AdmissionConfig {
            max_in_flight: 0,
            max_lateness_us: 0,
        });
        for seq in 0..10_000u64 {
            assert_eq!(ac.offer(seq, 0, u64::MAX), Admission::Admit);
        }
        assert_eq!(ac.shed_count(), 0);
    }

    #[test]
    fn shed_history_is_idempotent_across_crash_reoffers() {
        let mut ac = tiny();
        ac.offer(0, 100, 50);
        ac.offer(1, 100, 50);
        assert_eq!(ac.offer(7, 100, 5_000), Admission::Shed);
        // Querier crashes; its window dies; the shed query is
        // re-offered on restart (still hopelessly late).
        ac.reset_in_flight();
        assert_eq!(ac.offer(0, 100, 6_000), Admission::Admit);
        assert_eq!(ac.offer(1, 100, 6_000), Admission::Admit);
        assert_eq!(ac.offer(7, 100, 6_000), Admission::Shed);
        assert_eq!(ac.shed_seqs(), &[7], "one entry per distinct seq");
        assert_eq!(ac.shed_count(), 1);
        // `admitted` counts grants: 0 and 1 were each granted twice.
        assert_eq!(ac.admitted(), 4);
    }

    #[test]
    fn crash_recovery_reoffer_in_seq_order_is_deterministic() {
        let mut ac = tiny();
        ac.offer(3, 100, 50);
        ac.offer(5, 100, 50);
        assert_eq!(ac.offer(8, 100, 60), Admission::Busy, "parked");
        ac.reset_in_flight();
        // The contract: after a crash the caller re-offers the dead
        // window's queries and its parked queries in ascending seq
        // order. With a window of 2, the verdict sequence is pinned:
        // first two seqs admit, the third parks again.
        let verdicts: Vec<Admission> =
            [3u64, 5, 8].iter().map(|&s| ac.offer(s, 100, 70)).collect();
        assert_eq!(verdicts, vec![Admission::Admit, Admission::Admit, Admission::Busy]);
        assert_eq!(ac.in_flight(), 2);
        assert_eq!(ac.shed_count(), 0);
    }

    #[test]
    fn complete_never_underflows() {
        let mut ac = tiny();
        ac.complete();
        assert_eq!(ac.in_flight(), 0);
    }
}
