//! Supervised querier slots: heartbeat timeouts, bounded restart
//! budgets, and re-dispatch of a dead querier's unacknowledged span.
//!
//! The supervisor is a pure state machine over explicit `now`
//! parameters — the replay engine feeds it heartbeats and sequence
//! acknowledgements from its querier threads and polls it for
//! actions; the same logic would drive tokio tasks or sim hosts. A
//! slot that stops heartbeating is scheduled for restart after a
//! jittered backoff drawn from its [`RetryBudget`]; when the budget
//! runs dry the slot is declared dead for good ([`SupervisorAction::GiveUp`])
//! so the run degrades visibly instead of hanging.

use crate::budget::RetryBudget;

/// Supervision knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// A slot with no heartbeat for this long (µs) is presumed dead.
    pub heartbeat_timeout_us: u64,
    /// Restarts allowed per slot before giving up.
    pub max_restarts: u32,
    /// Base restart backoff (µs).
    pub backoff_base_us: u64,
    /// Restart backoff cap (µs).
    pub backoff_cap_us: u64,
    /// Seed for the per-slot jitter streams.
    pub seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            heartbeat_timeout_us: 2_000_000,
            max_restarts: 3,
            backoff_base_us: 10_000,
            backoff_cap_us: 1_000_000,
            seed: 0x6a2d_5eed,
        }
    }
}

/// Lifecycle of one supervised slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Heartbeating normally.
    Alive,
    /// Missed its heartbeat; restart scheduled for `restart_at_us`.
    Restarting,
    /// Restart budget exhausted; abandoned.
    Dead,
}

#[derive(Debug, Clone)]
struct Slot {
    state: SlotState,
    last_beat_us: u64,
    /// Highest trace seq this slot has acknowledged completing, if any.
    acked_seq: Option<u64>,
    restart_at_us: u64,
    budget: RetryBudget,
    restarts: u32,
}

/// What the engine must do for a slot, produced by [`Supervisor::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorAction {
    /// Tear down and relaunch the slot's querier, re-dispatching its
    /// trace span starting at `redispatch_from` (the first seq it
    /// never acknowledged).
    Restart {
        /// Slot index.
        slot: usize,
        /// First unacknowledged seq; `0` if it never acked anything.
        redispatch_from: u64,
    },
    /// The slot's restart budget is exhausted: mark its span failed
    /// and carry on without it.
    GiveUp {
        /// Slot index.
        slot: usize,
    },
}

/// Heartbeat-monitored querier slots with bounded restart budgets.
#[derive(Debug, Clone)]
pub struct Supervisor {
    cfg: SupervisorConfig,
    slots: Vec<Slot>,
}

impl Supervisor {
    /// A supervisor over `slots` queriers, all presumed alive and
    /// freshly heartbeated at `now_us`.
    pub fn new(cfg: SupervisorConfig, slots: usize, now_us: u64) -> Self {
        let slots = (0..slots)
            .map(|i| Slot {
                state: SlotState::Alive,
                last_beat_us: now_us,
                acked_seq: None,
                restart_at_us: 0,
                budget: RetryBudget::new(
                    cfg.max_restarts,
                    cfg.backoff_base_us,
                    cfg.backoff_cap_us,
                    cfg.seed.wrapping_add(i as u64),
                ),
                restarts: 0,
            })
            .collect();
        Supervisor { cfg, slots }
    }

    /// Record a heartbeat from `slot` at `now_us`.
    pub fn heartbeat(&mut self, slot: usize, now_us: u64) {
        if let Some(s) = self.slots.get_mut(slot) {
            if s.state == SlotState::Alive {
                s.last_beat_us = s.last_beat_us.max(now_us);
            }
        }
    }

    /// Record that `slot` acknowledged completing trace seq `seq`
    /// (monotone — stale acks are ignored). Also counts as a
    /// heartbeat.
    pub fn ack(&mut self, slot: usize, seq: u64, now_us: u64) {
        if let Some(s) = self.slots.get_mut(slot) {
            if s.acked_seq.map_or(true, |prev| seq > prev) {
                s.acked_seq = Some(seq);
            }
        }
        self.heartbeat(slot, now_us);
    }

    /// Report an observed crash of `slot` (e.g. a send returned
    /// `Dead`), skipping the heartbeat-timeout wait.
    pub fn note_dead(&mut self, slot: usize, now_us: u64) {
        if self
            .slots
            .get(slot)
            .map_or(false, |s| s.state == SlotState::Alive)
        {
            self.begin_restart(slot, now_us);
        }
    }

    /// Advance the state machine to `now_us` and collect the actions
    /// the engine must perform. Alive slots past their heartbeat
    /// timeout begin a (jitter-delayed) restart; restarting slots
    /// whose delay has elapsed yield [`SupervisorAction::Restart`];
    /// slots out of budget yield [`SupervisorAction::GiveUp`] exactly
    /// once.
    pub fn poll(&mut self, now_us: u64) -> Vec<SupervisorAction> {
        let mut actions = Vec::new();
        for i in 0..self.slots.len() {
            match self.slots[i].state {
                SlotState::Alive => {
                    let stale = now_us.saturating_sub(self.slots[i].last_beat_us)
                        > self.cfg.heartbeat_timeout_us;
                    if stale {
                        if let Some(action) = self.begin_restart(i, now_us) {
                            actions.push(action);
                        }
                    }
                }
                SlotState::Restarting => {
                    if now_us >= self.slots[i].restart_at_us {
                        let s = &mut self.slots[i];
                        s.state = SlotState::Alive;
                        s.last_beat_us = now_us;
                        s.restarts += 1;
                        actions.push(SupervisorAction::Restart {
                            slot: i,
                            redispatch_from: s.acked_seq.map_or(0, |a| a + 1),
                        });
                    }
                }
                SlotState::Dead => {}
            }
        }
        actions
    }

    /// Move `slot` to `Restarting` (or `Dead` when the budget is dry,
    /// returning the one-shot `GiveUp`).
    fn begin_restart(&mut self, slot: usize, now_us: u64) -> Option<SupervisorAction> {
        let s = &mut self.slots[slot];
        match s.budget.next_delay_us() {
            Some(delay) => {
                s.state = SlotState::Restarting;
                s.restart_at_us = now_us.saturating_add(delay);
                None
            }
            None => {
                s.state = SlotState::Dead;
                Some(SupervisorAction::GiveUp { slot })
            }
        }
    }

    /// Restarts performed for `slot` so far.
    pub fn restarts(&self, slot: usize) -> u32 {
        self.slots.get(slot).map_or(0, |s| s.restarts)
    }

    /// Whether `slot` has been abandoned.
    pub fn is_dead(&self, slot: usize) -> bool {
        self.slots
            .get(slot)
            .map_or(false, |s| s.state == SlotState::Dead)
    }

    /// Number of supervised slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the supervisor has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SupervisorConfig {
        SupervisorConfig {
            heartbeat_timeout_us: 1_000,
            max_restarts: 2,
            backoff_base_us: 100,
            backoff_cap_us: 500,
            seed: 42,
        }
    }

    #[test]
    fn heartbeats_keep_slots_alive() {
        let mut sup = Supervisor::new(cfg(), 2, 0);
        for t in (0..10_000).step_by(500) {
            sup.heartbeat(0, t);
            sup.heartbeat(1, t);
            assert!(sup.poll(t).is_empty(), "no action at t={t}");
        }
        assert_eq!(sup.restarts(0), 0);
    }

    #[test]
    fn stale_slot_restarts_after_jittered_delay() {
        let mut sup = Supervisor::new(cfg(), 1, 0);
        // No heartbeat past the 1 ms timeout: restart gets scheduled.
        assert!(sup.poll(1_500).is_empty(), "delay pending, no action yet");
        // Backoff is capped at 500 µs, so by 1_500 + 500 it must fire.
        let actions = sup.poll(2_000);
        assert_eq!(
            actions,
            vec![SupervisorAction::Restart { slot: 0, redispatch_from: 0 }]
        );
        assert_eq!(sup.restarts(0), 1);
        // Restarted slot is alive again and stays quiet while beating.
        sup.heartbeat(0, 2_100);
        assert!(sup.poll(2_500).is_empty());
    }

    #[test]
    fn redispatch_resumes_after_last_acked_seq() {
        let mut sup = Supervisor::new(cfg(), 1, 0);
        sup.ack(0, 41, 500);
        sup.ack(0, 17, 600); // stale ack must not regress the span
        sup.note_dead(0, 700);
        let actions = sup.poll(700 + 500);
        assert_eq!(
            actions,
            vec![SupervisorAction::Restart { slot: 0, redispatch_from: 42 }]
        );
    }

    #[test]
    fn budget_exhaustion_gives_up_exactly_once() {
        let mut sup = Supervisor::new(cfg(), 1, 0);
        let mut restarts = 0;
        let mut give_ups = 0;
        let mut t = 0u64;
        for _ in 0..20 {
            t += 5_000; // long silence every round
            for a in sup.poll(t) {
                match a {
                    SupervisorAction::Restart { .. } => restarts += 1,
                    SupervisorAction::GiveUp { .. } => give_ups += 1,
                }
            }
        }
        assert_eq!(restarts, 2, "budget allows exactly max_restarts");
        assert_eq!(give_ups, 1, "GiveUp fires once, then the slot stays dead");
        assert!(sup.is_dead(0));
        // A dead slot ignores further heartbeats and acks.
        sup.heartbeat(0, t + 1);
        assert!(sup.poll(t + 10_000).is_empty());
    }

    #[test]
    fn note_dead_skips_the_timeout_wait() {
        let mut sup = Supervisor::new(cfg(), 2, 0);
        sup.note_dead(1, 100);
        // Well before the heartbeat timeout, the restart still fires
        // once its backoff (≤ 500 µs) elapses.
        let actions = sup.poll(700);
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], SupervisorAction::Restart { slot: 1, .. }));
        // Slot 0 was never touched.
        assert_eq!(sup.restarts(0), 0);
    }

    #[test]
    fn same_seed_same_restart_schedule() {
        let run = || {
            let mut sup = Supervisor::new(cfg(), 3, 0);
            let mut fired = Vec::new();
            for t in (0..50_000u64).step_by(250) {
                for a in sup.poll(t) {
                    fired.push((t, a));
                }
            }
            fired
        };
        assert_eq!(run(), run());
    }
}
