//! One struct for every overload-and-recovery knob.

use crate::admission::AdmissionConfig;
use crate::supervisor::SupervisorConfig;

/// Server-side overload response: token-bucket response rate limiting
/// with a TC-fallback slip, consulted per view. These knobs build the
/// `dns-server` rate limiter (`rrl::RrlConfig`) for each view of an
/// engine; guard keeps only the policy numbers so the sim and tokio
/// servers share one configuration surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadConfig {
    /// Sustained responses/second allowed per (client-prefix,
    /// response) bucket. `0.0` disables server-side rate limiting.
    pub responses_per_second: f64,
    /// Bucket burst depth, in responses.
    pub burst: f64,
    /// Every `slip`-th over-limit response is sent truncated (TC=1)
    /// instead of dropped, steering real clients to TCP. `0` never
    /// slips (pure drop).
    pub slip: u32,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            responses_per_second: 0.0,
            burst: 15.0,
            slip: 2,
        }
    }
}

impl OverloadConfig {
    /// Whether rate limiting is active at all.
    pub fn enabled(&self) -> bool {
        self.responses_per_second > 0.0
    }
}

/// TCP reconnect policy for a querier's send path: a jittered,
/// capped [`crate::RetryBudget`] replaces the old unbounded doubling
/// loop. A successful connect refills the budget; exhaustion makes
/// the path report `Dead` instead of spinning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectConfig {
    /// Backoff sleeps allowed before giving up (connect attempts are
    /// `max_attempts + 1`: one eager dial, then one per sleep).
    pub max_attempts: u32,
    /// Base backoff (µs).
    pub base_us: u64,
    /// Backoff cap (µs).
    pub cap_us: u64,
}

impl Default for ReconnectConfig {
    fn default() -> Self {
        ReconnectConfig { max_attempts: 3, base_us: 200, cap_us: 5_000 }
    }
}

/// UDP retransmission policy for a replay client: each query gets its
/// own [`crate::RetryBudget`] (seeded per-seq, so retransmit jitter is
/// deterministic and checkpointable per query). Unlike the TCP
/// reconnect chain — which rides connection-death events — UDP loss is
/// silent, so retransmits are timer-driven from dispatch. Exhaustion
/// is terminal: the query stays pending (and is carried on a v2
/// checkpoint `inflight` line) but is never sent again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetransmitConfig {
    /// Retransmits allowed per query after the initial send.
    pub max_retx: u32,
    /// Base inter-retransmit delay (µs). Must comfortably exceed the
    /// expected RTT or every query double-sends.
    pub base_us: u64,
    /// Inter-retransmit delay cap (µs).
    pub cap_us: u64,
}

impl Default for RetransmitConfig {
    fn default() -> Self {
        // Base 200ms: ~5× the study RTT (40ms), so healthy paths never
        // retransmit; cap 1.5s bounds a chain to a few seconds.
        RetransmitConfig { max_retx: 8, base_us: 200_000, cap_us: 1_500_000 }
    }
}

/// Every guard knob in one place: checkpoint cadence, querier
/// supervision, dispatch admission control, send-path reconnect
/// budgets, and the server-side overload response.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardConfig {
    /// Take a checkpoint after every `checkpoint_every` completed
    /// queries (at the next quiescent cut). `0` disables
    /// checkpointing.
    pub checkpoint_every: u64,
    /// Querier-slot supervision (heartbeats, restart budgets).
    pub supervisor: SupervisorConfig,
    /// Dispatch-side admission control (in-flight window, shedding).
    pub admission: AdmissionConfig,
    /// Querier TCP reconnect budget.
    pub reconnect: ReconnectConfig,
    /// Server-side overload response (per-view RRL).
    pub overload: OverloadConfig,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            checkpoint_every: 0,
            supervisor: SupervisorConfig::default(),
            admission: AdmissionConfig::default(),
            reconnect: ReconnectConfig::default(),
            overload: OverloadConfig::default(),
        }
    }
}

impl GuardConfig {
    /// A configuration with every protection off — the pre-guard
    /// behavior, used as the hotpath-bench baseline. (The reconnect
    /// budget keeps its default bounds: "off" would mean the old
    /// uncapped loop, which is the bug the budget fixes.)
    pub fn disabled() -> Self {
        GuardConfig {
            checkpoint_every: 0,
            supervisor: SupervisorConfig {
                max_restarts: 0,
                ..SupervisorConfig::default()
            },
            admission: AdmissionConfig {
                max_in_flight: 0,
                max_lateness_us: 0,
            },
            reconnect: ReconnectConfig::default(),
            overload: OverloadConfig {
                responses_per_second: 0.0,
                ..OverloadConfig::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_leaves_checkpointing_and_rrl_off() {
        let g = GuardConfig::default();
        assert_eq!(g.checkpoint_every, 0);
        assert!(!g.overload.enabled());
        assert!(g.admission.max_in_flight > 0, "admission has a sane bound");
    }

    #[test]
    fn disabled_turns_everything_off() {
        let g = GuardConfig::disabled();
        assert_eq!(g.checkpoint_every, 0);
        assert_eq!(g.supervisor.max_restarts, 0);
        assert_eq!(g.admission.max_in_flight, 0);
        assert!(!g.overload.enabled());
    }

    #[test]
    fn overload_enabled_tracks_rate() {
        let mut o = OverloadConfig::default();
        assert!(!o.enabled());
        o.responses_per_second = 10.0;
        assert!(o.enabled());
    }
}
