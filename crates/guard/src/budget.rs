//! Bounded retries with capped decorrelated-jitter backoff.
//!
//! Every retry loop in the replay stack (querier reconnects,
//! supervisor restarts, resolver failover escalation) shares this one
//! type, so "how many times and how fast do we hammer a struggling
//! peer" is a single auditable policy rather than per-call-site
//! constants. An exhausted budget is a *terminal* answer — callers
//! must surface it (a `Dead` outcome, a `GiveUp` action), never spin.

use crate::rng::SplitMix64;

/// A bounded, jittered retry allowance.
///
/// Delays follow the decorrelated-jitter scheme (AWS architecture
/// blog): each delay is uniform in `[base, 3 × previous)`, clamped to
/// `cap`, which spreads concurrent retriers apart while staying fully
/// deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    max_attempts: u32,
    used: u32,
    base_us: u64,
    cap_us: u64,
    prev_us: u64,
    rng: SplitMix64,
}

impl RetryBudget {
    /// A budget of `max_attempts` retries with delays in
    /// `[base_us, cap_us]`, jittered deterministically from `seed`.
    pub fn new(max_attempts: u32, base_us: u64, cap_us: u64, seed: u64) -> Self {
        let base_us = base_us.max(1);
        RetryBudget {
            max_attempts,
            used: 0,
            base_us,
            cap_us: cap_us.max(base_us),
            prev_us: base_us,
            rng: SplitMix64::new(seed),
        }
    }

    /// Spend one attempt: the delay (µs) to wait before the retry, or
    /// `None` when the budget is exhausted. Once `None`, always
    /// `None` (until [`RetryBudget::reset`]).
    pub fn next_delay_us(&mut self) -> Option<u64> {
        if self.used >= self.max_attempts {
            return None;
        }
        self.used += 1;
        let hi = self.prev_us.saturating_mul(3).max(self.base_us + 1);
        let delay = self.rng.uniform(self.base_us, hi).min(self.cap_us);
        self.prev_us = delay.max(self.base_us);
        Some(delay)
    }

    /// Attempts remaining.
    pub fn remaining(&self) -> u32 {
        self.max_attempts - self.used
    }

    /// Attempts spent so far.
    pub fn used(&self) -> u32 {
        self.used
    }

    /// Whether the next [`RetryBudget::next_delay_us`] returns `None`.
    pub fn exhausted(&self) -> bool {
        self.used >= self.max_attempts
    }

    /// Refill the budget after a confirmed recovery (e.g. a successful
    /// reconnect) so the next incident starts from a full allowance.
    /// The jitter stream is *not* rewound — determinism is per-run,
    /// not per-incident.
    pub fn reset(&mut self) {
        self.used = 0;
        self.prev_us = self.base_us;
    }

    /// Capture the budget's dynamic state — attempts spent, the
    /// previous delay the decorrelated-jitter recurrence feeds on, and
    /// the RNG stream position — for a fuzzy-cut checkpoint. The
    /// static policy (`max_attempts`, `base_us`, `cap_us`) is the
    /// caller's configuration and is not part of the snapshot.
    pub fn snapshot(&self) -> BudgetSnapshot {
        BudgetSnapshot {
            used: self.used,
            prev_us: self.prev_us,
            rng_state: self.rng.state(),
        }
    }

    /// Rewind this budget to a captured snapshot. The subsequent
    /// delay stream is identical to what the snapshotted budget would
    /// have produced — the property that lets a resumed run continue a
    /// half-spent retry chain instead of restarting it.
    pub fn restore(&mut self, snap: &BudgetSnapshot) {
        self.used = snap.used;
        self.prev_us = snap.prev_us.max(self.base_us);
        self.rng = SplitMix64::from_state(snap.rng_state);
    }
}

/// The dynamic state of a [`RetryBudget`] at one instant, as carried
/// on a checkpoint `inflight` line. Small, `Copy`, and exact: restoring
/// it reproduces the remaining delay stream bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetSnapshot {
    /// Attempts already spent.
    pub used: u32,
    /// Previous delay (µs) — the decorrelated-jitter recurrence input.
    pub prev_us: u64,
    /// SplitMix64 stream position.
    pub rng_state: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustion_is_terminal() {
        let mut b = RetryBudget::new(3, 100, 1000, 9);
        assert_eq!(b.remaining(), 3);
        for _ in 0..3 {
            assert!(b.next_delay_us().is_some());
        }
        assert!(b.exhausted());
        assert_eq!(b.next_delay_us(), None);
        assert_eq!(b.next_delay_us(), None, "stays exhausted");
        assert_eq!(b.remaining(), 0);
        assert_eq!(b.used(), 3);
    }

    #[test]
    fn delays_stay_within_base_and_cap() {
        let mut b = RetryBudget::new(50, 200, 5_000, 13);
        while let Some(d) = b.next_delay_us() {
            assert!(d >= 200, "below base: {d}");
            assert!(d <= 5_000, "above cap: {d}");
        }
    }

    #[test]
    fn same_seed_same_delays() {
        let mut a = RetryBudget::new(10, 100, 10_000, 77);
        let mut b = RetryBudget::new(10, 100, 10_000, 77);
        for _ in 0..10 {
            assert_eq!(a.next_delay_us(), b.next_delay_us());
        }
    }

    #[test]
    fn jitter_actually_varies() {
        let mut b = RetryBudget::new(20, 100, 1_000_000, 3);
        let delays: Vec<u64> = std::iter::from_fn(|| b.next_delay_us()).collect();
        let distinct: std::collections::BTreeSet<u64> = delays.iter().copied().collect();
        assert!(distinct.len() > 5, "decorrelated jitter should spread: {delays:?}");
    }

    #[test]
    fn reset_refills_but_does_not_rewind_jitter() {
        let mut b = RetryBudget::new(2, 100, 1000, 5);
        let first = b.next_delay_us();
        b.next_delay_us();
        assert!(b.exhausted());
        b.reset();
        assert_eq!(b.remaining(), 2);
        // Fresh allowance, but the RNG has advanced: a replayed first
        // draw would only match by coincidence, not by construction.
        assert!(b.next_delay_us().is_some());
        let _ = first;
    }

    #[test]
    fn snapshot_restore_continues_the_identical_delay_stream() {
        let mut a = RetryBudget::new(12, 100, 50_000, 4242);
        for _ in 0..5 {
            a.next_delay_us();
        }
        let snap = a.snapshot();
        assert_eq!(snap.used, 5);

        // A fresh budget with the same *policy* but a different seed:
        // restore overwrites the dynamic state, so from here on it
        // must shadow `a` exactly.
        let mut b = RetryBudget::new(12, 100, 50_000, 1);
        b.restore(&snap);
        assert_eq!(b.used(), 5);
        assert_eq!(b.remaining(), 7);
        loop {
            let (da, db) = (a.next_delay_us(), b.next_delay_us());
            assert_eq!(da, db);
            if da.is_none() {
                break;
            }
        }
    }

    #[test]
    fn snapshot_is_passive() {
        let mut a = RetryBudget::new(3, 100, 1000, 7);
        let before = a.snapshot();
        let _ = a.snapshot();
        a.next_delay_us();
        let after = a.snapshot();
        assert_eq!(before.used + 1, after.used);
        assert_ne!(before.rng_state, after.rng_state);
    }

    #[test]
    fn zero_budget_never_grants() {
        let mut b = RetryBudget::new(0, 100, 1000, 1);
        assert!(b.exhausted());
        assert_eq!(b.next_delay_us(), None);
    }
}
