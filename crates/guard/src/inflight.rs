//! Per-query in-flight state for fuzzy-cut (v2) checkpoints.
//!
//! A v1 checkpoint only commits at a quiescent cut, so it never needs
//! to describe an outstanding query. A v2 "fuzzy cut" commits at *any*
//! virtual instant — storms included — by carrying one [`InflightEntry`]
//! per query that has been dispatched (or parked by admission) but not
//! yet completed. Each entry pins everything a resumed run needs to
//! re-execute that query deterministically:
//!
//! - `seq` and the query's *original* virtual send deadline, so the
//!   resumed simulator re-arms it at the exact instant the first run
//!   dispatched it;
//! - elapsed send/retransmit counts, so committed counters plus the
//!   carried in-flight contributions reconstruct the uninterrupted
//!   run's totals;
//! - a [`BudgetSnapshot`] of the query's `RetryBudget` (attempts spent
//!   plus next-backoff RNG position), making the entry self-describing
//!   for engines that continue a half-spent chain in place;
//! - the admission status (in flight / parked / retrying), so parked
//!   queries re-enter admission instead of being silently dropped.
//!
//! The line grammar (one line per entry, inside a v2 document):
//!
//! ```text
//! inflight <seq> deadline <ns> sends <n> retx <n> status <s> budget <used> <prev_us> <rng_state>
//! inflight <seq> deadline <ns> sends <n> retx <n> status <s> budget -
//! ```
//!
//! where `<s>` is `inflight`, `parked`, or `retrying`, and `budget -`
//! marks a query with no retransmit budget (e.g. TCP queries whose
//! retries ride the connection-death chain). Serialization is exact:
//! parse ∘ serialize is the identity on well-formed lines.

use std::fmt::Write as _;

use crate::budget::BudgetSnapshot;
use crate::checkpoint::CheckpointParseError;

/// Where an uncompleted query stood at the instant of the cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum InflightStatus {
    /// Dispatched; awaiting a response (or the next retransmit).
    InFlight,
    /// Held by the admission controller; never dispatched.
    Parked,
    /// In a connection-death retry chain (TCP) awaiting re-dispatch.
    Retrying,
}

impl InflightStatus {
    /// The grammar keyword for this status.
    pub fn as_str(self) -> &'static str {
        match self {
            InflightStatus::InFlight => "inflight",
            InflightStatus::Parked => "parked",
            InflightStatus::Retrying => "retrying",
        }
    }

    /// Parse a grammar keyword.
    pub fn from_str_opt(s: &str) -> Option<InflightStatus> {
        match s {
            "inflight" => Some(InflightStatus::InFlight),
            "parked" => Some(InflightStatus::Parked),
            "retrying" => Some(InflightStatus::Retrying),
            _ => None,
        }
    }
}

/// One outstanding query carried by a v2 fuzzy-cut checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InflightEntry {
    /// Trace sequence number of the query.
    pub seq: u64,
    /// The query's *original* virtual send deadline (ns since
    /// simulation start). Re-arming at this instant — not at the cut —
    /// is what keeps the resumed transcript byte-identical.
    pub deadline_ns: u64,
    /// Sends so far (initial dispatch + retransmits + restart
    /// re-dispatches). Zero for a parked query.
    pub sends: u32,
    /// Retransmits / retries so far (a subset of `sends`).
    pub retx: u32,
    /// Admission status at the cut.
    pub status: InflightStatus,
    /// Snapshot of the query's retransmit budget, if it has one.
    pub budget: Option<BudgetSnapshot>,
}

impl InflightEntry {
    /// Serialize to the one-line grammar (without the trailing
    /// newline).
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(64);
        let _ = write!(
            out,
            "inflight {} deadline {} sends {} retx {} status {} budget ",
            self.seq,
            self.deadline_ns,
            self.sends,
            self.retx,
            self.status.as_str(),
        );
        match &self.budget {
            Some(b) => {
                let _ = write!(out, "{} {} {}", b.used, b.prev_us, b.rng_state);
            }
            None => out.push('-'),
        }
        out
    }

    /// Parse one `inflight ...` line (the full line, keyword
    /// included). `ln` is the 1-based line number used in errors.
    pub fn from_line(line: &str, ln: usize) -> Result<InflightEntry, CheckpointParseError> {
        fn err(ln: usize, msg: &str) -> CheckpointParseError {
            CheckpointParseError { line: ln, msg: msg.to_string() }
        }
        fn num(
            it: &mut std::str::SplitWhitespace<'_>,
            ln: usize,
            what: &str,
        ) -> Result<u64, CheckpointParseError> {
            it.next()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| err(ln, &format!("inflight line truncated: expected {what}")))
        }
        fn kw(
            it: &mut std::str::SplitWhitespace<'_>,
            ln: usize,
            expected: &str,
        ) -> Result<(), CheckpointParseError> {
            if it.next() == Some(expected) {
                Ok(())
            } else {
                Err(err(ln, &format!("inflight line truncated: expected `{expected}`")))
            }
        }
        let mut it = line.split_whitespace();
        if it.next() != Some("inflight") {
            return Err(err(ln, "expected `inflight ...`"));
        }
        let seq = num(&mut it, ln, "<seq>")?;
        kw(&mut it, ln, "deadline")?;
        let deadline_ns = num(&mut it, ln, "deadline <ns>")?;
        kw(&mut it, ln, "sends")?;
        let sends = num(&mut it, ln, "sends <n>")?;
        kw(&mut it, ln, "retx")?;
        let retx = num(&mut it, ln, "retx <n>")?;
        let sends = u32::try_from(sends).map_err(|_| err(ln, "sends exceeds u32"))?;
        let retx = u32::try_from(retx).map_err(|_| err(ln, "retx exceeds u32"))?;
        kw(&mut it, ln, "status")?;
        let status = it
            .next()
            .and_then(InflightStatus::from_str_opt)
            .ok_or_else(|| err(ln, "expected status `inflight`, `parked`, or `retrying`"))?;
        kw(&mut it, ln, "budget")?;
        let budget = match it.next() {
            Some("-") => None,
            Some(used) => {
                let used = used.parse::<u32>().map_err(|_| {
                    err(ln, "expected `budget <used> <prev_us> <rng_state>` or `budget -`")
                })?;
                let prev_us = num(&mut it, ln, "budget <prev_us>")?;
                let rng_state = num(&mut it, ln, "budget <rng_state>")?;
                Some(BudgetSnapshot { used, prev_us, rng_state })
            }
            None => return Err(err(ln, "inflight line truncated: expected budget fields or `-`")),
        };
        if it.next().is_some() {
            return Err(err(ln, "trailing tokens after inflight entry"));
        }
        Ok(InflightEntry { seq, deadline_ns, sends, retx, status, budget })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InflightEntry {
        InflightEntry {
            seq: 41,
            deadline_ns: 2_050_000_000,
            sends: 3,
            retx: 2,
            status: InflightStatus::InFlight,
            budget: Some(BudgetSnapshot { used: 2, prev_us: 450, rng_state: 0xdead_beef }),
        }
    }

    #[test]
    fn line_round_trips_exactly() {
        for entry in [
            sample(),
            InflightEntry {
                seq: 7,
                deadline_ns: 350_000_000,
                sends: 0,
                retx: 0,
                status: InflightStatus::Parked,
                budget: None,
            },
            InflightEntry { status: InflightStatus::Retrying, ..sample() },
        ] {
            let line = entry.to_line();
            let back = InflightEntry::from_line(&line, 1).expect("parses");
            assert_eq!(entry, back);
            assert_eq!(line, back.to_line());
        }
    }

    #[test]
    fn truncations_are_line_numbered_errors() {
        let full = sample().to_line();
        // Every proper prefix ending at a token boundary must fail —
        // and carry the caller's line number.
        let tokens: Vec<&str> = full.split_whitespace().collect();
        for n in 0..tokens.len() {
            let cut = tokens[..n].join(" ");
            let e = InflightEntry::from_line(&cut, 9).expect_err("truncated");
            assert_eq!(e.line, 9, "prefix {cut:?}");
        }
    }

    #[test]
    fn malformed_fields_rejected() {
        assert!(InflightEntry::from_line("inflight x deadline 1 sends 0 retx 0 status parked budget -", 1).is_err());
        assert!(InflightEntry::from_line("inflight 1 deadline 1 sends 0 retx 0 status lost budget -", 1).is_err());
        assert!(InflightEntry::from_line("inflight 1 deadline 1 sends 0 retx 0 status parked budget - extra", 1).is_err());
        assert!(InflightEntry::from_line("inflight 1 deadline 1 sends 99999999999 retx 0 status parked budget -", 1).is_err());
    }
}
