//! The versioned replay checkpoint: progress a killed run can resume
//! from.
//!
//! A checkpoint is taken at a *quiescent cut* — a virtual-time instant
//! with no queries in flight — so it fully determines the remaining
//! run: the trace cursor says which queries are still owed, the
//! completed records are carried verbatim, and the counters seed the
//! resumed client's state. Resuming then re-arms only the uncompleted
//! queries at their original virtual deadlines, and (on a loss-free
//! deterministic path) the concatenated transcript is byte-identical
//! to an uninterrupted same-seed run — the property `fig_recovery`
//! gates on.
//!
//! Like `ldp-chaos`'s fault plans, checkpoints are data, not code: a
//! line-based text format with an exact round-trip, safe to store next
//! to results and diff in CI.
//!
//! ```text
//! ldpguard checkpoint v1
//! epoch 2
//! taken_ns 1500000000
//! cursor 42
//! counter sent 42
//! rec q7 sent=1200 done=1240 ok
//! ```

use std::fmt;

/// One resumable snapshot of replay progress.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Checkpoint {
    /// Checkpoint ordinal within the run (1 = first cut).
    pub epoch: u32,
    /// Virtual time of the cut, nanoseconds since simulation start.
    /// Every uncompleted query's deadline is strictly later.
    pub taken_ns: u64,
    /// Next trace sequence number to dispatch: seqs `< cursor` are
    /// accounted for (completed or recorded as shed).
    pub cursor: u64,
    /// Named monotonic counters (sent, connects, retries, shed, ...)
    /// in serialization order. Names must be whitespace-free.
    pub counters: Vec<(String, u64)>,
    /// Completed per-query transcript lines, carried verbatim (they
    /// must not contain newlines). On resume these seed the output so
    /// the final transcript equals an uninterrupted run's.
    pub records: Vec<String>,
}

impl Checkpoint {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Serialize to the line-based text format (see module docs).
    ///
    /// Returns `Err` (rather than emitting a corrupt document) if a
    /// counter name contains whitespace or a record contains a
    /// newline.
    pub fn to_text(&self) -> Result<String, CheckpointParseError> {
        let err = |msg: &str| CheckpointParseError { line: 0, msg: msg.to_string() };
        let mut out = String::from("ldpguard checkpoint v1\n");
        out.push_str(&format!("epoch {}\n", self.epoch));
        out.push_str(&format!("taken_ns {}\n", self.taken_ns));
        out.push_str(&format!("cursor {}\n", self.cursor));
        for (name, v) in &self.counters {
            if name.is_empty() || name.chars().any(char::is_whitespace) {
                return Err(err("counter name must be non-empty and whitespace-free"));
            }
            out.push_str(&format!("counter {name} {v}\n"));
        }
        for rec in &self.records {
            if rec.contains('\n') || rec.contains('\r') {
                return Err(err("record lines must not contain newlines"));
            }
            out.push_str(&format!("rec {rec}\n"));
        }
        Ok(out)
    }

    /// Parse the text format back. Blank lines and `#` comments are
    /// ignored (record payloads are taken verbatim after `rec `, so a
    /// record can itself start with `#` only via the keyword line).
    pub fn from_text(text: &str) -> Result<Checkpoint, CheckpointParseError> {
        let err = |line: usize, msg: &str| CheckpointParseError { line, msg: msg.to_string() };
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l))
            .filter(|(_, l)| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with('#')
            });

        let (ln, header) = lines.next().ok_or_else(|| err(0, "empty checkpoint"))?;
        if header.trim() != "ldpguard checkpoint v1" {
            return Err(err(ln, "expected header `ldpguard checkpoint v1`"));
        }
        let mut field = |name: &str| -> Result<u64, CheckpointParseError> {
            let (ln, line) = lines
                .next()
                .ok_or_else(|| err(0, &format!("missing `{name}`")))?;
            line.trim()
                .strip_prefix(name)
                .and_then(|rest| rest.trim().parse::<u64>().ok())
                .ok_or_else(|| err(ln, &format!("expected `{name} <u64>`")))
        };
        let epoch = field("epoch")?;
        let epoch = u32::try_from(epoch).map_err(|_| err(0, "epoch exceeds u32"))?;
        let taken_ns = field("taken_ns")?;
        let cursor = field("cursor")?;

        let mut cp = Checkpoint {
            epoch,
            taken_ns,
            cursor,
            counters: Vec::new(),
            records: Vec::new(),
        };
        for (ln, line) in lines {
            if let Some(rest) = line.strip_prefix("rec ") {
                cp.records.push(rest.to_string());
            } else if let Some(rest) = line.trim().strip_prefix("counter ") {
                let mut it = rest.split_whitespace();
                let name = it.next().ok_or_else(|| err(ln, "counter needs a name"))?;
                let v = it
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or_else(|| err(ln, "expected `counter <name> <u64>`"))?;
                if it.next().is_some() {
                    return Err(err(ln, "trailing tokens after counter value"));
                }
                cp.counters.push((name.to_string(), v));
            } else {
                return Err(err(ln, "expected `counter ...` or `rec ...`"));
            }
        }
        Ok(cp)
    }
}

/// A parse (or serialize-validation) failure with its 1-based line
/// number (0 = whole document).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointParseError {
    /// 1-based line of the offending input (0 = whole document).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for CheckpointParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CheckpointParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            epoch: 2,
            taken_ns: 1_500_000_000,
            cursor: 42,
            counters: vec![
                ("sent".to_string(), 42),
                ("connects".to_string(), 3),
                ("retries".to_string(), 1),
            ],
            records: vec![
                "q0 sent=1000 done=1040 ok".to_string(),
                "q1 sent=1100 done=- shed".to_string(),
            ],
        }
    }

    #[test]
    fn text_round_trips_exactly() {
        let cp = sample();
        let text = cp.to_text().expect("serializes");
        let back = Checkpoint::from_text(&text).expect("parses");
        assert_eq!(cp, back);
        assert_eq!(text, back.to_text().expect("re-serializes"));
    }

    #[test]
    fn counter_lookup() {
        let cp = sample();
        assert_eq!(cp.counter("connects"), Some(3));
        assert_eq!(cp.counter("missing"), None);
    }

    #[test]
    fn records_survive_verbatim_including_spaces() {
        let cp = Checkpoint {
            records: vec!["  leading and   internal spaces # not a comment".to_string()],
            ..Checkpoint::default()
        };
        let back = Checkpoint::from_text(&cp.to_text().expect("ok")).expect("parses");
        assert_eq!(back.records, cp.records);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "ldpguard checkpoint v1\n# note\nepoch 1\n\ntaken_ns 5\ncursor 0\n";
        let cp = Checkpoint::from_text(text).expect("parses");
        assert_eq!(cp.epoch, 1);
        assert_eq!(cp.taken_ns, 5);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        assert!(Checkpoint::from_text("").is_err());
        assert!(Checkpoint::from_text("ldpguard checkpoint v2\n").is_err());
        let e = Checkpoint::from_text(
            "ldpguard checkpoint v1\nepoch 1\ntaken_ns 5\ncursor 0\nbogus line\n",
        )
        .expect_err("unknown keyword");
        assert_eq!(e.line, 5);
        let e = Checkpoint::from_text("ldpguard checkpoint v1\nepoch x\n").expect_err("bad epoch");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn serialization_rejects_malformed_fields() {
        let cp = Checkpoint {
            counters: vec![("two words".to_string(), 1)],
            ..Checkpoint::default()
        };
        assert!(cp.to_text().is_err());
        let cp = Checkpoint {
            records: vec!["line\nbreak".to_string()],
            ..Checkpoint::default()
        };
        assert!(cp.to_text().is_err());
    }
}
