//! The versioned replay checkpoint: progress a killed run can resume
//! from.
//!
//! **v1 — quiescent cut.** A v1 checkpoint is taken at a virtual-time
//! instant with no queries in flight, so it fully determines the
//! remaining run: the trace cursor says which queries are still owed,
//! the completed records are carried verbatim, and the counters seed
//! the resumed client's state. Its weakness is the commit condition
//! itself: under sustained loss a quiescent cut never forms, so a kill
//! mid-storm discards everything since the last lull.
//!
//! **v2 — fuzzy cut.** A v2 checkpoint commits at *any* virtual
//! instant, on a fixed cadence, by additionally carrying one
//! [`InflightEntry`] per outstanding query (see [`crate::inflight`]):
//! its seq, original virtual send deadline, elapsed send/retransmit
//! counts, a [`RetryBudget`](crate::RetryBudget) snapshot, and its
//! admission status. Counters in a v2 document are *committed* values
//! — completed work only — and the in-flight contributions ride on
//! the `inflight` lines, so a resumed run that re-executes the
//! outstanding queries from their original deadlines reconstructs the
//! uninterrupted run's totals, transcript, and telemetry exactly.
//!
//! Like `ldp-chaos`'s fault plans, checkpoints are data, not code: a
//! line-based text format with an exact round-trip, safe to store next
//! to results and diff in CI. LF line endings only — CRLF is rejected
//! at parse time because records are carried verbatim and a stripped
//! `\r` would silently break the exact round-trip.
//!
//! ```text
//! ldpguard checkpoint v2
//! epoch 2
//! taken_ns 1500000000
//! cursor 42
//! counter sent 40
//! rec q7 sent=1200 done=1240 ok
//! inflight 41 deadline 1450000000 sends 2 retx 1 status inflight budget 1 450 12345
//! ```
//!
//! A v2 document's sections are strictly ordered (`counter*`, `rec*`,
//! `inflight*`); v1 documents keep their historical lenient ordering
//! for back-compat, and parse into a [`Checkpoint`] with an empty
//! in-flight set — a v1 quiescent cut *is* a fuzzy cut with nothing in
//! flight, so upgrade reads are free.

use std::fmt;

use crate::inflight::InflightEntry;

/// One resumable snapshot of replay progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Format version this checkpoint serializes as: 1 (quiescent
    /// cut, no in-flight state) or 2 (fuzzy cut).
    pub version: u8,
    /// Checkpoint ordinal within the run (1 = first cut).
    pub epoch: u32,
    /// Virtual time of the cut, nanoseconds since simulation start.
    /// In a v1 document every uncompleted query's deadline is strictly
    /// later; in a v2 document in-flight deadlines may be earlier (the
    /// query was already dispatched when the cut committed).
    pub taken_ns: u64,
    /// Next trace sequence number to dispatch: seqs `< cursor` are
    /// accounted for (completed, recorded as shed, or carried on an
    /// `inflight` line).
    pub cursor: u64,
    /// Named monotonic counters (sent, connects, retries, shed, ...)
    /// in serialization order. Names must be whitespace-free and
    /// unique. In a v2 document these are *committed* values: work
    /// belonging to completed queries only.
    pub counters: Vec<(String, u64)>,
    /// Completed per-query transcript lines, carried verbatim (they
    /// must not contain newlines). On resume these seed the output so
    /// the final transcript equals an uninterrupted run's.
    pub records: Vec<String>,
    /// Outstanding queries at the cut (v2 only; empty in v1). Sorted
    /// by seq at serialization time by convention, but the parser
    /// preserves whatever order the document carries.
    pub inflight: Vec<InflightEntry>,
}

impl Default for Checkpoint {
    fn default() -> Self {
        Checkpoint {
            version: 1,
            epoch: 0,
            taken_ns: 0,
            cursor: 0,
            counters: Vec::new(),
            records: Vec::new(),
            inflight: Vec::new(),
        }
    }
}

impl Checkpoint {
    /// Look up a counter by name. Counter names are unique in any
    /// document [`Checkpoint::from_text`] accepts (duplicates are a
    /// parse error), so this is unambiguous.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Serialize to the line-based text format (see module docs).
    ///
    /// Returns `Err` (rather than emitting a corrupt document) if the
    /// version is unknown, a counter name contains whitespace or is
    /// duplicated, a record contains a newline, or a v1 checkpoint
    /// carries in-flight entries (v1 cannot represent them).
    pub fn to_text(&self) -> Result<String, CheckpointParseError> {
        let err = |msg: &str| CheckpointParseError { line: 0, msg: msg.to_string() };
        if self.version != 1 && self.version != 2 {
            return Err(err("unknown checkpoint version (expected 1 or 2)"));
        }
        if self.version == 1 && !self.inflight.is_empty() {
            return Err(err("v1 checkpoints cannot carry inflight entries"));
        }
        let mut out = format!("ldpguard checkpoint v{}\n", self.version);
        out.push_str(&format!("epoch {}\n", self.epoch));
        out.push_str(&format!("taken_ns {}\n", self.taken_ns));
        out.push_str(&format!("cursor {}\n", self.cursor));
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if name.is_empty() || name.chars().any(char::is_whitespace) {
                return Err(err("counter name must be non-empty and whitespace-free"));
            }
            if self.counters[..i].iter().any(|(n, _)| n == name) {
                return Err(err("duplicate counter name"));
            }
            out.push_str(&format!("counter {name} {v}\n"));
        }
        for rec in &self.records {
            if rec.contains('\n') || rec.contains('\r') {
                return Err(err("record lines must not contain newlines"));
            }
            out.push_str(&format!("rec {rec}\n"));
        }
        for entry in &self.inflight {
            out.push_str(&entry.to_line());
            out.push('\n');
        }
        Ok(out)
    }

    /// Parse the text format back (either version). Blank lines and
    /// `#` comments are ignored (record payloads are taken verbatim
    /// after `rec `, so a record can itself start with `#` only via
    /// the keyword line). CRLF input is rejected. v2 documents must
    /// keep their sections in order (`counter*`, `rec*`, `inflight*`);
    /// v1 documents keep the historical lenient counter/rec ordering.
    pub fn from_text(text: &str) -> Result<Checkpoint, CheckpointParseError> {
        let err = |line: usize, msg: &str| CheckpointParseError { line, msg: msg.to_string() };
        if let Some(pos) = text.find('\r') {
            let ln = text[..pos].matches('\n').count() + 1;
            return Err(err(ln, "CRLF line endings are not supported (LF only)"));
        }
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l))
            .filter(|(_, l)| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with('#')
            });

        let (ln, header) = lines.next().ok_or_else(|| err(0, "empty checkpoint"))?;
        let version = match header.trim() {
            "ldpguard checkpoint v1" => 1u8,
            "ldpguard checkpoint v2" => 2u8,
            _ => {
                return Err(err(
                    ln,
                    "expected header `ldpguard checkpoint v1` or `ldpguard checkpoint v2`",
                ))
            }
        };
        // Track the last line number consumed so "ran out of input"
        // errors point at the end of the document instead of line 0.
        let mut last_ln = ln;
        let mut field = |name: &str| -> Result<(usize, u64), CheckpointParseError> {
            let (ln, line) = lines
                .next()
                .ok_or_else(|| err(last_ln, &format!("missing `{name}`")))?;
            last_ln = ln;
            line.trim()
                .strip_prefix(name)
                .and_then(|rest| rest.trim().parse::<u64>().ok())
                .map(|v| (ln, v))
                .ok_or_else(|| err(ln, &format!("expected `{name} <u64>`")))
        };
        let (epoch_ln, epoch) = field("epoch")?;
        let epoch = u32::try_from(epoch).map_err(|_| err(epoch_ln, "epoch exceeds u32"))?;
        let (_, taken_ns) = field("taken_ns")?;
        let (_, cursor) = field("cursor")?;

        let mut cp = Checkpoint {
            version,
            epoch,
            taken_ns,
            cursor,
            counters: Vec::new(),
            records: Vec::new(),
            inflight: Vec::new(),
        };
        // Section progression for v2: counter(0) -> rec(1) -> inflight(2).
        let mut section = 0u8;
        for (ln, line) in lines {
            if let Some(rest) = line.strip_prefix("rec ") {
                if version == 2 && section > 1 {
                    return Err(err(ln, "`rec` lines must precede `inflight` lines"));
                }
                section = section.max(1);
                cp.records.push(rest.to_string());
            } else if let Some(rest) = line.trim().strip_prefix("counter ") {
                if version == 2 && section > 0 {
                    return Err(err(ln, "`counter` lines must precede `rec` and `inflight` lines"));
                }
                let mut it = rest.split_whitespace();
                let name = it.next().ok_or_else(|| err(ln, "counter needs a name"))?;
                let v = it
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or_else(|| err(ln, "expected `counter <name> <u64>`"))?;
                if it.next().is_some() {
                    return Err(err(ln, "trailing tokens after counter value"));
                }
                if cp.counters.iter().any(|(n, _)| n == name) {
                    return Err(err(ln, &format!("duplicate counter `{name}`")));
                }
                cp.counters.push((name.to_string(), v));
            } else if line.trim().starts_with("inflight ") || line.trim() == "inflight" {
                if version == 1 {
                    return Err(err(ln, "v1 documents cannot carry `inflight` lines"));
                }
                section = 2;
                cp.inflight.push(InflightEntry::from_line(line.trim(), ln)?);
            } else if version == 2 {
                return Err(err(ln, "expected `counter ...`, `rec ...`, or `inflight ...`"));
            } else {
                return Err(err(ln, "expected `counter ...` or `rec ...`"));
            }
        }
        Ok(cp)
    }
}

/// A parse (or serialize-validation) failure with its 1-based line
/// number (0 = whole document).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointParseError {
    /// 1-based line of the offending input (0 = whole document).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for CheckpointParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CheckpointParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::BudgetSnapshot;
    use crate::inflight::InflightStatus;

    fn sample() -> Checkpoint {
        Checkpoint {
            version: 1,
            epoch: 2,
            taken_ns: 1_500_000_000,
            cursor: 42,
            counters: vec![
                ("sent".to_string(), 42),
                ("connects".to_string(), 3),
                ("retries".to_string(), 1),
            ],
            records: vec![
                "q0 sent=1000 done=1040 ok".to_string(),
                "q1 sent=1100 done=- shed".to_string(),
            ],
            inflight: Vec::new(),
        }
    }

    fn sample_v2() -> Checkpoint {
        Checkpoint {
            version: 2,
            inflight: vec![
                InflightEntry {
                    seq: 40,
                    deadline_ns: 1_450_000_000,
                    sends: 2,
                    retx: 1,
                    status: InflightStatus::InFlight,
                    budget: Some(BudgetSnapshot { used: 1, prev_us: 450, rng_state: 12345 }),
                },
                InflightEntry {
                    seq: 41,
                    deadline_ns: 1_490_000_000,
                    sends: 0,
                    retx: 0,
                    status: InflightStatus::Parked,
                    budget: None,
                },
            ],
            ..sample()
        }
    }

    #[test]
    fn text_round_trips_exactly() {
        for cp in [sample(), sample_v2()] {
            let text = cp.to_text().expect("serializes");
            let back = Checkpoint::from_text(&text).expect("parses");
            assert_eq!(cp, back);
            assert_eq!(text, back.to_text().expect("re-serializes"));
        }
    }

    #[test]
    fn v1_reads_as_empty_inflight_upgrade() {
        // A v1 quiescent cut is a fuzzy cut with nothing in flight:
        // reading it and re-writing as v2 is lossless.
        let text = sample().to_text().expect("ok");
        let mut up = Checkpoint::from_text(&text).expect("parses");
        assert_eq!(up.version, 1);
        assert!(up.inflight.is_empty());
        up.version = 2;
        let v2_text = up.to_text().expect("serializes as v2");
        let back = Checkpoint::from_text(&v2_text).expect("parses as v2");
        assert_eq!(back, up);
    }

    #[test]
    fn counter_lookup() {
        let cp = sample();
        assert_eq!(cp.counter("connects"), Some(3));
        assert_eq!(cp.counter("missing"), None);
    }

    #[test]
    fn records_survive_verbatim_including_spaces() {
        let cp = Checkpoint {
            records: vec!["  leading and   internal spaces # not a comment".to_string()],
            ..Checkpoint::default()
        };
        let back = Checkpoint::from_text(&cp.to_text().expect("ok")).expect("parses");
        assert_eq!(back.records, cp.records);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "ldpguard checkpoint v1\n# note\nepoch 1\n\ntaken_ns 5\ncursor 0\n";
        let cp = Checkpoint::from_text(text).expect("parses");
        assert_eq!(cp.epoch, 1);
        assert_eq!(cp.taken_ns, 5);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        assert!(Checkpoint::from_text("").is_err());
        assert!(Checkpoint::from_text("ldpguard checkpoint v3\n").is_err());
        let e = Checkpoint::from_text(
            "ldpguard checkpoint v1\nepoch 1\ntaken_ns 5\ncursor 0\nbogus line\n",
        )
        .expect_err("unknown keyword");
        assert_eq!(e.line, 5);
        let e = Checkpoint::from_text("ldpguard checkpoint v1\nepoch x\n").expect_err("bad epoch");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn epoch_overflow_error_names_the_epoch_line() {
        let e = Checkpoint::from_text("ldpguard checkpoint v1\n# pad\nepoch 5000000000\n")
            .expect_err("epoch exceeds u32");
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("epoch exceeds u32"), "{}", e.msg);
    }

    #[test]
    fn missing_field_error_points_at_end_of_input() {
        let e = Checkpoint::from_text("ldpguard checkpoint v1\nepoch 1\ntaken_ns 5\n")
            .expect_err("missing cursor");
        assert_eq!(e.line, 3, "points at the last line seen, not 0");
        assert!(e.msg.contains("cursor"), "{}", e.msg);
        let e = Checkpoint::from_text("ldpguard checkpoint v1\n").expect_err("missing epoch");
        assert_eq!(e.line, 1);
    }

    #[test]
    fn duplicate_counters_rejected_with_line_number() {
        let text = "ldpguard checkpoint v1\nepoch 1\ntaken_ns 5\ncursor 0\n\
                    counter sent 3\ncounter connects 1\ncounter sent 9\n";
        let e = Checkpoint::from_text(text).expect_err("duplicate counter");
        assert_eq!(e.line, 7);
        assert!(e.msg.contains("duplicate counter `sent`"), "{}", e.msg);
        // Serialization refuses to create such a document in the
        // first place.
        let cp = Checkpoint {
            counters: vec![("sent".to_string(), 1), ("sent".to_string(), 2)],
            ..Checkpoint::default()
        };
        assert!(cp.to_text().is_err());
    }

    #[test]
    fn serialization_rejects_malformed_fields() {
        let cp = Checkpoint {
            counters: vec![("two words".to_string(), 1)],
            ..Checkpoint::default()
        };
        assert!(cp.to_text().is_err());
        let cp = Checkpoint {
            records: vec!["line\nbreak".to_string()],
            ..Checkpoint::default()
        };
        assert!(cp.to_text().is_err());
        let cp = Checkpoint { version: 3, ..Checkpoint::default() };
        assert!(cp.to_text().is_err());
        let cp = Checkpoint {
            inflight: vec![InflightEntry {
                seq: 0,
                deadline_ns: 0,
                sends: 0,
                retx: 0,
                status: InflightStatus::Parked,
                budget: None,
            }],
            ..Checkpoint::default()
        };
        assert!(cp.to_text().is_err(), "v1 cannot carry inflight entries");
    }

    // -- malformed-document corpus (hand-written, offline) ------------

    fn v2_doc(body: &str) -> String {
        format!("ldpguard checkpoint v2\nepoch 1\ntaken_ns 5\ncursor 4\n{body}")
    }

    #[test]
    fn corpus_truncated_inflight_lines() {
        let full = "inflight 3 deadline 100 sends 1 retx 0 status inflight budget 1 450 99";
        let tokens: Vec<&str> = full.split_whitespace().collect();
        for n in 1..tokens.len() {
            let doc = v2_doc(&format!("{}\n", tokens[..n].join(" ")));
            let e = Checkpoint::from_text(&doc).expect_err("truncated inflight");
            assert_eq!(e.line, 5, "prefix {:?}", tokens[..n].join(" "));
        }
    }

    #[test]
    fn corpus_interleaved_sections() {
        for (doc, bad_line) in [
            // counter after rec
            (v2_doc("rec q0 ok\ncounter sent 1\n"), 6),
            // counter after inflight
            (
                v2_doc("inflight 3 deadline 1 sends 0 retx 0 status parked budget -\ncounter sent 1\n"),
                6,
            ),
            // rec after inflight
            (
                v2_doc("inflight 3 deadline 1 sends 0 retx 0 status parked budget -\nrec q0 ok\n"),
                6,
            ),
        ] {
            let e = Checkpoint::from_text(&doc).expect_err("interleaved sections");
            assert_eq!(e.line, bad_line, "doc:\n{doc}");
        }
        // v1 keeps the historical lenient ordering (back-compat).
        let v1 = "ldpguard checkpoint v1\nepoch 1\ntaken_ns 5\ncursor 4\nrec q0 ok\ncounter sent 1\n";
        assert!(Checkpoint::from_text(v1).is_ok());
    }

    #[test]
    fn corpus_crlf_rejected_with_line_number() {
        let doc = "ldpguard checkpoint v2\r\nepoch 1\r\n";
        let e = Checkpoint::from_text(doc).expect_err("CRLF");
        assert_eq!(e.line, 1);
        let doc = "ldpguard checkpoint v2\nepoch 1\ntaken_ns 5\r\ncursor 0\n";
        let e = Checkpoint::from_text(doc).expect_err("CRLF mid-document");
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("CRLF"), "{}", e.msg);
    }

    #[test]
    fn corpus_v1_rejects_inflight_lines() {
        let doc = "ldpguard checkpoint v1\nepoch 1\ntaken_ns 5\ncursor 4\n\
                   inflight 3 deadline 1 sends 0 retx 0 status parked budget -\n";
        let e = Checkpoint::from_text(doc).expect_err("inflight in v1");
        assert_eq!(e.line, 5);
    }
}
