//! Property tests: any well-formed `Checkpoint` survives a text
//! round-trip exactly — `from_text(to_text(cp)) == cp` — for both the
//! v1 quiescent format and the v2 fuzzy-cut format with arbitrary
//! in-flight entries, and the serializer is a fixed point (re-encoding
//! the parse changes nothing). Cargo-only (proptest is unavailable in
//! the offline bare-rustc gate, which runs the deterministic
//! malformed-corpus unit tests in `checkpoint.rs` instead).

use ldp_guard::{BudgetSnapshot, Checkpoint, InflightEntry, InflightStatus};
use proptest::prelude::*;

/// Counter names: non-empty, whitespace-free (the serializer rejects
/// anything else), drawn from the tokens real callers use.
fn arb_counter_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.:-]{0,15}"
}

/// Unique-named counter list (duplicate names are a serialize error
/// and a parse error, so they can never round-trip).
fn arb_counters() -> impl Strategy<Value = Vec<(String, u64)>> {
    proptest::collection::vec((arb_counter_name(), any::<u64>()), 0..8).prop_map(|mut v| {
        let mut seen = std::collections::HashSet::new();
        v.retain(|(n, _)| seen.insert(n.clone()));
        v
    })
}

/// Record payloads: any single line (no LF/CR — the serializer refuses
/// to emit them), including leading/trailing whitespace, `#`, and
/// strings that look like other keywords (`counter x 1`, `inflight 3`).
fn arb_record() -> impl Strategy<Value = String> {
    prop_oneof![
        "[^\\r\\n]{0,40}",
        Just(String::new()),
        Just("  padded  ".to_string()),
        Just("# not a comment once prefixed".to_string()),
        Just("counter smuggled 1".to_string()),
        Just("inflight 3 deadline 4".to_string()),
    ]
}

fn arb_status() -> impl Strategy<Value = InflightStatus> {
    prop_oneof![
        Just(InflightStatus::InFlight),
        Just(InflightStatus::Parked),
        Just(InflightStatus::Retrying),
    ]
}

fn arb_budget() -> impl Strategy<Value = Option<BudgetSnapshot>> {
    proptest::option::of((any::<u32>(), any::<u64>(), any::<u64>()).prop_map(
        |(used, prev_us, rng_state)| BudgetSnapshot { used, prev_us, rng_state },
    ))
}

fn arb_inflight_entry() -> impl Strategy<Value = InflightEntry> {
    (any::<u64>(), any::<u64>(), any::<u32>(), any::<u32>(), arb_status(), arb_budget()).prop_map(
        |(seq, deadline_ns, sends, retx, status, budget)| InflightEntry {
            seq,
            deadline_ns,
            sends,
            retx,
            status,
            budget,
        },
    )
}

/// A v2 fuzzy-cut checkpoint: counters, records, and in-flight entries
/// all populated with arbitrary (but serializable) values.
fn arb_v2_checkpoint() -> impl Strategy<Value = Checkpoint> {
    (
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        arb_counters(),
        proptest::collection::vec(arb_record(), 0..16),
        proptest::collection::vec(arb_inflight_entry(), 0..16),
    )
        .prop_map(|(epoch, taken_ns, cursor, counters, records, inflight)| Checkpoint {
            version: 2,
            epoch,
            taken_ns,
            cursor,
            counters,
            records,
            inflight,
        })
}

/// A v1 quiescent checkpoint: same shape, no in-flight section (v1
/// cannot represent one — `to_text` refuses).
fn arb_v1_checkpoint() -> impl Strategy<Value = Checkpoint> {
    arb_v2_checkpoint().prop_map(|mut cp| {
        cp.version = 1;
        cp.inflight.clear();
        cp
    })
}

proptest! {
    #[test]
    fn v2_text_round_trip_is_exact(cp in arb_v2_checkpoint()) {
        let text = cp.to_text().expect("well-formed v2 serializes");
        let back = Checkpoint::from_text(&text).expect("own output parses");
        prop_assert_eq!(&cp, &back);
        // Serialization is a fixed point: re-encoding changes nothing.
        prop_assert_eq!(text, back.to_text().expect("re-serializes"));
    }

    #[test]
    fn v1_text_round_trip_is_exact(cp in arb_v1_checkpoint()) {
        let text = cp.to_text().expect("well-formed v1 serializes");
        let back = Checkpoint::from_text(&text).expect("own output parses");
        prop_assert_eq!(&cp, &back);
        prop_assert_eq!(text, back.to_text().expect("re-serializes"));
    }

    /// Upgrade read: a v2-aware parser reading any v1 document yields
    /// `version == 1` and an empty in-flight section — old checkpoints
    /// stay readable and are never misread as carrying live state.
    #[test]
    fn v1_documents_upgrade_read_with_empty_inflight(cp in arb_v1_checkpoint()) {
        let text = cp.to_text().expect("well-formed v1 serializes");
        let back = Checkpoint::from_text(&text).expect("v1 parses under the v2 parser");
        prop_assert_eq!(back.version, 1);
        prop_assert!(back.inflight.is_empty());
        prop_assert_eq!(back.epoch, cp.epoch);
        prop_assert_eq!(back.cursor, cp.cursor);
        prop_assert_eq!(&back.records, &cp.records);
    }

    /// An in-flight line on its own round-trips through the line
    /// grammar exactly.
    #[test]
    fn inflight_line_round_trip_is_exact(entry in arb_inflight_entry()) {
        let line = entry.to_line();
        let back = InflightEntry::from_line(&line, 1).expect("own output parses");
        prop_assert_eq!(entry, back);
        prop_assert_eq!(line, back.to_line());
    }

    /// The parser returns `Err`, never panics, on arbitrary input.
    #[test]
    fn parser_never_panics(text in "\\PC*") {
        let _ = Checkpoint::from_text(&text);
    }
}
