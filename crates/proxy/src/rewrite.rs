//! The address-rewriting algebra of paper §2.4 and its flow table.
//!
//! Outbound (recursive → authoritative): the recursive sends a query to
//! some public nameserver address — the *original query destination
//! address* (OQDA). The proxy rewrites the packet so that
//!
//! - destination becomes the meta-DNS-server, and
//! - **source becomes the OQDA**, which is the only signal telling the
//!   meta server which zone (view) should answer, because the query
//!   *content* is identical at every level of the hierarchy.
//!
//! Inbound (meta server → recursive): the reply arrives addressed to the
//! OQDA; the proxy restores source = OQDA:53 and destination = the
//! recursive's original socket, so the recursive accepts the reply as if
//! the real nameserver had sent it ("without knowing any address
//! manipulation in the background").

use std::collections::HashMap;
use std::net::SocketAddr;

/// One tracked query flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// The recursive server's socket (reply destination).
    pub client: SocketAddr,
    /// The original query destination address (public NS address).
    pub oqda: SocketAddr,
}

/// Flow table keyed by the proxy-side port used toward the meta server.
///
/// Each in-flight query gets a distinct proxy port so the reply can be
/// matched back; ports are recycled round-robin (65 k in flight is the
/// same bound a real UDP proxy has).
#[derive(Debug)]
pub struct FlowTable {
    flows: HashMap<u16, Flow>,
    next_port: u16,
    base_port: u16,
    capacity: u16,
}

impl FlowTable {
    /// Table using ports `base_port..base_port+capacity`.
    pub fn new(base_port: u16, capacity: u16) -> Self {
        assert!(capacity > 0);
        FlowTable {
            flows: HashMap::new(),
            next_port: 0,
            base_port,
            capacity,
        }
    }

    /// Default: ports 32768..=65535.
    pub fn with_defaults() -> Self {
        FlowTable::new(32768, 32767)
    }

    /// Record a new outbound flow; returns the proxy port to use as the
    /// rewritten source port. Oldest flow on that port is overwritten.
    pub fn insert(&mut self, client: SocketAddr, oqda: SocketAddr) -> u16 {
        let port = self.base_port + (self.next_port % self.capacity);
        self.next_port = self.next_port.wrapping_add(1);
        self.flows.insert(port, Flow { client, oqda });
        port
    }

    /// Look up (and keep) the flow for a reply arriving on `port`.
    pub fn lookup(&self, port: u16) -> Option<Flow> {
        self.flows.get(&port).copied()
    }

    /// Remove a completed flow.
    pub fn remove(&mut self, port: u16) -> Option<Flow> {
        self.flows.remove(&port)
    }

    /// Number of live flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True if no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }
}

/// Compute the outbound rewrite: `(new_src, new_dst)` for a query the
/// recursive sent to `oqda`, to be forwarded to `meta`.
///
/// New source = OQDA's IP with the proxy's flow port; new destination =
/// the meta server.
pub fn rewrite_outbound(oqda: SocketAddr, flow_port: u16, meta: SocketAddr) -> (SocketAddr, SocketAddr) {
    (SocketAddr::new(oqda.ip(), flow_port), meta)
}

/// Compute the inbound rewrite for a reply that the meta server sent
/// back to the flow's proxy socket: restore source = OQDA (port 53) and
/// destination = the recursive's original socket.
pub fn rewrite_inbound(flow: Flow) -> (SocketAddr, SocketAddr) {
    (flow.oqda, flow.client)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sa(s: &str) -> SocketAddr {
        s.parse().unwrap()
    }

    #[test]
    fn outbound_moves_oqda_into_source() {
        let (src, dst) = rewrite_outbound(sa("192.5.6.30:53"), 40000, sa("10.9.0.1:53"));
        assert_eq!(src, sa("192.5.6.30:40000"));
        assert_eq!(dst, sa("10.9.0.1:53"));
    }

    #[test]
    fn inbound_restores_original_view() {
        let flow = Flow {
            client: sa("10.2.0.1:5501"),
            oqda: sa("192.5.6.30:53"),
        };
        let (src, dst) = rewrite_inbound(flow);
        assert_eq!(src, sa("192.5.6.30:53"), "reply appears to come from the real NS");
        assert_eq!(dst, sa("10.2.0.1:5501"));
    }

    #[test]
    fn round_trip_is_transparent_to_the_recursive() {
        // The recursive sent to oqda from client; after out+in rewriting
        // it sees a reply from exactly oqda to exactly client.
        let client = sa("10.2.0.1:5501");
        let oqda = sa("198.41.0.4:53");
        let meta = sa("10.9.0.1:53");
        let mut table = FlowTable::with_defaults();
        let port = table.insert(client, oqda);
        let (_psrc, pdst) = rewrite_outbound(oqda, port, meta);
        assert_eq!(pdst, meta);
        let flow = table.remove(port).unwrap();
        let (rsrc, rdst) = rewrite_inbound(flow);
        assert_eq!(rsrc, oqda);
        assert_eq!(rdst, client);
        assert!(table.is_empty());
    }

    #[test]
    fn distinct_flows_get_distinct_ports() {
        let mut table = FlowTable::new(1000, 100);
        let p1 = table.insert(sa("10.0.0.1:1"), sa("1.1.1.1:53"));
        let p2 = table.insert(sa("10.0.0.2:2"), sa("2.2.2.2:53"));
        assert_ne!(p1, p2);
        assert_eq!(table.lookup(p1).unwrap().client, sa("10.0.0.1:1"));
        assert_eq!(table.lookup(p2).unwrap().oqda, sa("2.2.2.2:53"));
    }

    #[test]
    fn ports_recycle_at_capacity() {
        let mut table = FlowTable::new(1000, 2);
        let p1 = table.insert(sa("10.0.0.1:1"), sa("1.1.1.1:53"));
        let _p2 = table.insert(sa("10.0.0.2:2"), sa("2.2.2.2:53"));
        let p3 = table.insert(sa("10.0.0.3:3"), sa("3.3.3.3:53"));
        assert_eq!(p1, p3, "round robin reuses the oldest port");
        // The old flow on p1 was overwritten.
        assert_eq!(table.lookup(p1).unwrap().client, sa("10.0.0.3:3"));
        assert_eq!(table.len(), 2);
    }
}
