//! The proxy pair as a [`netsim`] host.
//!
//! In the paper, a TUN interface plus iptables rules capture every
//! packet whose destination is a public nameserver address (they are
//! non-routable inside the testbed) and hand them to the recursive
//! proxy; the authoritative proxy symmetrically captures the meta
//! server's replies. In the simulator the same capture falls out of
//! address ownership: this host *owns every emulated public nameserver
//! address*, so the recursive's queries route to it naturally, and the
//! meta server's replies (addressed to the OQDA) route back to it too.
//! One host therefore performs both §2.4 rewrites, faithfully producing
//! the packet sequence of the paper's Figure 2.

use std::net::SocketAddr;

use netsim::{Ctx, Host, PacketBytes, TcpEvent};

use crate::rewrite::{rewrite_inbound, rewrite_outbound, FlowTable};

/// Counters for the proxy.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProxyStats {
    /// Queries forwarded to the meta server.
    pub forwarded_queries: u64,
    /// Replies forwarded back to the recursive.
    pub forwarded_replies: u64,
    /// Replies with no matching flow (dropped).
    pub orphan_replies: u64,
}

/// The simulated hierarchy-emulation proxy.
pub struct SimProxy {
    meta: SocketAddr,
    flows: FlowTable,
    /// Live counters.
    pub stats: ProxyStats,
}

impl SimProxy {
    /// New proxy forwarding to the meta-DNS-server at `meta`.
    ///
    /// Register this host in the simulator with *all* public nameserver
    /// addresses from the reconstructed zones.
    pub fn new(meta: SocketAddr) -> Self {
        SimProxy {
            meta,
            flows: FlowTable::with_defaults(),
            stats: ProxyStats::default(),
        }
    }

    /// Outstanding (unanswered) flows.
    pub fn live_flows(&self) -> usize {
        self.flows.len()
    }
}

impl Host for SimProxy {
    fn on_udp(&mut self, ctx: &mut Ctx<'_>, from: SocketAddr, to: SocketAddr, data: PacketBytes) {
        if from == self.meta {
            // A reply from the meta server: `to` is (oqda_ip, flow_port).
            match self.flows.remove(to.port()) {
                Some(flow) => {
                    let (src, dst) = rewrite_inbound(flow);
                    self.stats.forwarded_replies += 1;
                    ctx.send_udp(src, dst, data);
                }
                None => {
                    self.stats.orphan_replies += 1;
                }
            }
        } else if to.port() == 53 {
            // A captured query to a public NS address (the OQDA is `to`).
            let flow_port = self.flows.insert(from, to);
            let (src, dst) = rewrite_outbound(to, flow_port, self.meta);
            self.stats.forwarded_queries += 1;
            ctx.send_udp(src, dst, data);
        }
        // Anything else (e.g. stray packets) is dropped, as the paper's
        // non-routable leak handling does.
    }

    fn on_tcp_event(&mut self, _ctx: &mut Ctx<'_>, _event: TcpEvent) {
        // The §2.4 proxy path is UDP (iterative resolver traffic).
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_server::{ServerEngine, SimDnsServer};
    use dns_wire::{Message, Name, RData, Rcode, Record, RecordType, Soa};
    use dns_zone::{Catalog, ViewSet, Zone};
    use netsim::{PathConfig, SimConfig, SimDuration, SimTime, Simulator, Topology};
    use std::net::IpAddr;
    use std::sync::{Arc, Mutex};

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn soa(origin: &str) -> Record {
        Record::new(
            n(origin),
            60,
            RData::Soa(Soa {
                mname: n("ns1.example"),
                rname: n("a.example"),
                serial: 1,
                refresh: 1,
                retry: 1,
                expire: 1,
                minimum: 60,
            }),
        )
    }

    /// Meta engine with root/com/google views keyed by public NS addrs.
    fn meta_engine() -> Arc<ServerEngine> {
        let mut root = Zone::new(Name::root());
        root.insert(soa(".")).unwrap();
        root.insert(Record::new(Name::root(), 1, RData::Ns(n("a.root-servers.net")))).unwrap();
        root.insert(Record::new(n("com"), 1, RData::Ns(n("a.gtld-servers.net")))).unwrap();
        root.insert(Record::new(n("a.gtld-servers.net"), 1, RData::A("192.5.6.30".parse().unwrap()))).unwrap();
        root.insert(Record::new(n("a.root-servers.net"), 1, RData::A("198.41.0.4".parse().unwrap()))).unwrap();

        let mut com = Zone::new(n("com"));
        com.insert(soa("com")).unwrap();
        com.insert(Record::new(n("com"), 1, RData::Ns(n("a.gtld-servers.net")))).unwrap();
        com.insert(Record::new(n("google.com"), 1, RData::Ns(n("ns1.google.com")))).unwrap();
        com.insert(Record::new(n("ns1.google.com"), 1, RData::A("216.239.32.10".parse().unwrap()))).unwrap();

        let mut google = Zone::new(n("google.com"));
        google.insert(soa("google.com")).unwrap();
        google.insert(Record::new(n("google.com"), 1, RData::Ns(n("ns1.google.com")))).unwrap();
        google.insert(Record::new(n("www.google.com"), 300, RData::A("142.250.80.36".parse().unwrap()))).unwrap();

        let mk = |z: Zone| {
            let mut c = Catalog::new();
            c.insert(z);
            c
        };
        let views = ViewSet::for_hierarchy(vec![
            (Name::root(), vec![ip("198.41.0.4")], mk(root)),
            (n("com"), vec![ip("192.5.6.30")], mk(com)),
            (n("google.com"), vec![ip("216.239.32.10")], mk(google)),
        ]);
        Arc::new(ServerEngine::with_views(views))
    }

    /// A stub that fires one query at the resolver and records replies.
    struct Stub {
        me: SocketAddr,
        resolver: SocketAddr,
        qname: Name,
        replies: Arc<Mutex<Vec<Message>>>,
    }

    impl Host for Stub {
        fn on_udp(&mut self, _ctx: &mut Ctx<'_>, _f: SocketAddr, _t: SocketAddr, data: PacketBytes) {
            self.replies.lock().unwrap().push(Message::decode(&data).unwrap());
        }
        fn on_tcp_event(&mut self, _ctx: &mut Ctx<'_>, _e: TcpEvent) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
            let q = Message::query(77, self.qname.clone(), RecordType::A);
            ctx.send_udp(self.me, self.resolver, q.encode());
        }
    }

    /// The paper's Figure 2 topology, end to end: stub → recursive →
    /// proxy (owning all public NS addresses) → meta-DNS-server, and all
    /// the way back. The recursive must walk root → com → google.com
    /// through the *single* server and get the right final answer.
    #[test]
    fn full_hierarchy_emulation_resolves_through_one_server() {
        let mut sim = Simulator::new(
            Topology::uniform(PathConfig::with_rtt(SimDuration::from_millis(2))),
            SimConfig::default(),
        );
        let meta_addr: SocketAddr = "10.9.0.1:53".parse().unwrap();
        let resolver_addr: SocketAddr = "10.2.0.1:53".parse().unwrap();

        sim.add_host(
            &[meta_addr.ip()],
            Box::new(SimDnsServer::new(meta_engine(), meta_addr, None)),
        );
        // The proxy owns every public nameserver address.
        sim.add_host(
            &[ip("198.41.0.4"), ip("192.5.6.30"), ip("216.239.32.10")],
            Box::new(SimProxy::new(meta_addr)),
        );
        sim.add_host(
            &[resolver_addr.ip()],
            Box::new(dns_resolver::SimResolver::new(
                resolver_addr,
                vec![ip("198.41.0.4")],
            )),
        );
        let replies = Arc::new(Mutex::new(vec![]));
        let stub = sim.add_host(
            &[ip("10.2.1.1")],
            Box::new(Stub {
                me: "10.2.1.1:5000".parse().unwrap(),
                resolver: resolver_addr,
                qname: n("www.google.com"),
                replies: replies.clone(),
            }),
        );
        sim.schedule_timer(stub, SimTime::ZERO, 0);
        sim.run_until(SimTime::from_secs_f64(10.0));

        let replies = replies.lock().unwrap();
        assert_eq!(replies.len(), 1, "stub got an answer");
        let resp = &replies[0];
        assert_eq!(resp.id, 77);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert_eq!(resp.answers.last().unwrap().rdata, RData::A("142.250.80.36".parse().unwrap()));
        assert!(resp.flags.recursion_available);
    }

    #[test]
    fn proxy_counts_and_clears_flows() {
        // Same topology; inspect the proxy after the run.
        let mut sim = Simulator::new(
            Topology::uniform(PathConfig::with_rtt(SimDuration::from_millis(1))),
            SimConfig::default(),
        );
        let meta_addr: SocketAddr = "10.9.0.1:53".parse().unwrap();
        let resolver_addr: SocketAddr = "10.2.0.1:53".parse().unwrap();
        sim.add_host(&[meta_addr.ip()], Box::new(SimDnsServer::new(meta_engine(), meta_addr, None)));
        let proxy_id = sim.add_host(
            &[ip("198.41.0.4"), ip("192.5.6.30"), ip("216.239.32.10")],
            Box::new(SimProxy::new(meta_addr)),
        );
        sim.add_host(
            &[resolver_addr.ip()],
            Box::new(dns_resolver::SimResolver::new(resolver_addr, vec![ip("198.41.0.4")])),
        );
        let replies = Arc::new(Mutex::new(vec![]));
        let stub = sim.add_host(
            &[ip("10.2.1.1")],
            Box::new(Stub {
                me: "10.2.1.1:5000".parse().unwrap(),
                resolver: resolver_addr,
                qname: n("www.google.com"),
                replies: replies.clone(),
            }),
        );
        sim.schedule_timer(stub, SimTime::ZERO, 0);
        sim.run_until(SimTime::from_secs_f64(10.0));

        // Take the proxy back out of the simulator to inspect.
        let host = sim.host(proxy_id);
        // Downcasting isn't supported on dyn Host; instead assert via
        // behaviour: the stub got its reply (previous test) and we can
        // at least ensure the sim processed the three-level walk by
        // counting UDP at the proxy host.
        let _ = host;
        let stats = sim.stats(proxy_id);
        // 3 queries captured + 3 replies returned = 6 rx; 6 tx.
        assert_eq!(stats.udp_rx, 6, "3 iterative queries + 3 replies pass the proxy");
        assert_eq!(stats.udp_tx, 6);
        assert_eq!(replies.lock().unwrap().len(), 1);
    }
}
