//! # ldp-proxy
//!
//! The server proxies of paper §2.4: the address-rewriting mechanism
//! that lets a *single* authoritative server (the meta-DNS-server)
//! emulate every level of the DNS hierarchy. The recursive's iterative
//! queries, addressed to public nameserver addresses, are captured,
//! their source rewritten to the original query destination address
//! (OQDA) — the meta server's split-horizon views key on exactly that —
//! and the replies are rewritten back so the recursive never notices.
//!
//! Two deployments of the same algebra ([`rewrite`]):
//! - [`SimProxy`] — a netsim host owning all public NS addresses;
//! - [`tokio_proxy`] — a real-socket UDP forwarder for loopback testbeds.

#![warn(missing_docs)]

pub mod rewrite;
pub mod sim_proxy;
pub mod tokio_proxy;

pub use rewrite::{rewrite_inbound, rewrite_outbound, Flow, FlowTable};
pub use sim_proxy::{ProxyStats, SimProxy};
pub use tokio_proxy::{spawn, ProxyCounters, RunningProxy};
