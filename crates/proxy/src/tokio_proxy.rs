//! The recursive proxy over real sockets: a UDP forwarder that performs
//! the §2.4 rewrite on loopback testbeds, standing in for the paper's
//! TUN + iptables capture (which needs root and real interfaces).
//!
//! One listener socket is bound per emulated public nameserver address
//! (e.g. distinct 127.x.y.z loopback addresses); queries are forwarded
//! to the meta server from a per-flow upstream socket whose *local bind
//! address is the listener's address*, so the meta server sees the
//! query "coming from" the OQDA — the same source-address signal the
//! simulated proxy produces.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tokio::net::UdpSocket;
use tokio::sync::watch;

/// Counters for the socket proxy.
#[derive(Debug, Default)]
pub struct ProxyCounters {
    /// Queries forwarded to the meta server.
    pub forwarded: AtomicU64,
    /// Replies relayed back to clients.
    pub replied: AtomicU64,
}

/// Handle to a running proxy; call [`RunningProxy::shutdown`] to stop.
pub struct RunningProxy {
    /// The addresses actually bound (one per emulated nameserver).
    pub listen_addrs: Vec<SocketAddr>,
    /// Live counters.
    pub counters: Arc<ProxyCounters>,
    stop: watch::Sender<bool>,
}

impl RunningProxy {
    /// Stop all proxy tasks.
    pub fn shutdown(&self) {
        let _ = self.stop.send(true);
    }
}

/// Spawn a UDP rewrite proxy: one task per `listen` address, forwarding
/// to `meta`. Each client query gets a fresh upstream socket bound to
/// the listener's IP, and the reply is relayed back from the listener
/// socket — so the client's view is a normal exchange with the OQDA.
pub async fn spawn(listen: Vec<SocketAddr>, meta: SocketAddr) -> std::io::Result<RunningProxy> {
    let counters = Arc::new(ProxyCounters::default());
    let (stop_tx, stop_rx) = watch::channel(false);
    let mut bound = Vec::new();

    for addr in listen {
        let sock = Arc::new(UdpSocket::bind(addr).await?);
        bound.push(sock.local_addr()?);
        let counters = counters.clone();
        let mut stop = stop_rx.clone();
        tokio::spawn(async move {
            let mut buf = vec![0u8; 65535];
            loop {
                tokio::select! {
                    _ = stop.changed() => break,
                    res = sock.recv_from(&mut buf) => {
                        let Ok((len, client)) = res else { break };
                        let query = buf[..len].to_vec();
                        let listener = sock.clone();
                        let counters = counters.clone();
                        tokio::spawn(async move {
                            // Per-flow upstream socket bound to the
                            // OQDA's IP: the meta server sees the query
                            // arrive from that address.
                            let Ok(listen_addr) = listener.local_addr() else { return };
                            let local = SocketAddr::new(listen_addr.ip(), 0);
                            let Ok(upstream) = UdpSocket::bind(local).await else { return };
                            if upstream.send_to(&query, meta).await.is_err() {
                                return;
                            }
                            counters.forwarded.fetch_add(1, Ordering::Relaxed);
                            let mut rbuf = vec![0u8; 65535];
                            if let Ok(Ok((rlen, _))) = tokio::time::timeout(
                                Duration::from_secs(3),
                                upstream.recv_from(&mut rbuf),
                            )
                            .await {
                                // Reply relayed from the listener
                                // socket: source = OQDA:53.
                                if listener.send_to(&rbuf[..rlen], client).await.is_ok() {
                                    counters.replied.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        });
                    }
                }
            }
        });
    }

    Ok(RunningProxy {
        listen_addrs: bound,
        counters,
        stop: stop_tx,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_server::{spawn as spawn_server, ServerConfig, ServerEngine};
    use dns_wire::{Message, Name, RData, Record, RecordType, Soa};
    use dns_zone::{Catalog, Zone};

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn engine() -> Arc<ServerEngine> {
        let mut z = Zone::new(n("example"));
        z.insert(Record::new(
            n("example"),
            60,
            RData::Soa(Soa {
                mname: n("ns1.example"),
                rname: n("a.example"),
                serial: 1,
                refresh: 1,
                retry: 1,
                expire: 1,
                minimum: 60,
            }),
        ))
        .unwrap();
        z.insert(Record::new(n("www.example"), 60, RData::A("1.2.3.4".parse().unwrap())))
            .unwrap();
        let mut cat = Catalog::new();
        cat.insert(z);
        Arc::new(ServerEngine::with_catalog(cat))
    }

    #[tokio::test]
    async fn proxy_relays_and_rewrites_source() {
        // Meta server on loopback.
        let server = spawn_server(engine(), ServerConfig::default()).await.unwrap();
        // Proxy emulating a public NS at another loopback address.
        let proxy = spawn(vec!["127.0.0.1:0".parse().unwrap()], server.udp_addr)
            .await
            .unwrap();
        let ns_addr = proxy.listen_addrs[0];

        // A "recursive" client queries the emulated NS address.
        let client = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let q = Message::query(5, n("www.example"), RecordType::A);
        client.send_to(&q.encode(), ns_addr).await.unwrap();
        let mut buf = [0u8; 4096];
        let (len, from) = tokio::time::timeout(Duration::from_secs(5), client.recv_from(&mut buf))
            .await
            .unwrap()
            .unwrap();
        // Reply must come from the emulated NS address, not the meta
        // server — the transparency property of §2.4.
        assert_eq!(from, ns_addr);
        let resp = Message::decode(&buf[..len]).unwrap();
        assert_eq!(resp.id, 5);
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(proxy.counters.forwarded.load(Ordering::Relaxed), 1);
        assert_eq!(proxy.counters.replied.load(Ordering::Relaxed), 1);
        proxy.shutdown();
        server.shutdown();
    }

    #[tokio::test]
    async fn concurrent_flows_do_not_cross() {
        let server = spawn_server(engine(), ServerConfig::default()).await.unwrap();
        let proxy = spawn(vec!["127.0.0.1:0".parse().unwrap()], server.udp_addr)
            .await
            .unwrap();
        let ns_addr = proxy.listen_addrs[0];

        let mut handles = Vec::new();
        for i in 0..20u16 {
            let ns = ns_addr;
            handles.push(tokio::spawn(async move {
                let client = UdpSocket::bind("127.0.0.1:0").await.unwrap();
                let q = Message::query(i, n("www.example"), RecordType::A);
                client.send_to(&q.encode(), ns).await.unwrap();
                let mut buf = [0u8; 4096];
                let (len, _) =
                    tokio::time::timeout(Duration::from_secs(5), client.recv_from(&mut buf))
                        .await
                        .unwrap()
                        .unwrap();
                Message::decode(&buf[..len]).unwrap().id
            }));
        }
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.await.unwrap(), i as u16, "each client got its own reply");
        }
        proxy.shutdown();
        server.shutdown();
    }
}
