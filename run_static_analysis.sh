#!/bin/sh
# Static-analysis gate for the workspace: formatting, clippy, the
# ldp-lint determinism/panic-safety pass (see DESIGN.md "Correctness
# invariants"), then the test suite. Run before sending a PR.
#
# Degrades gracefully offline: if cargo cannot reach a registry (no
# lockfile, no vendored deps), the cargo-driven steps are skipped with
# a notice and ldp-lint is built with bare rustc — the lint pass itself
# has zero dependencies precisely so it survives this.
set -u

root=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
cd "$root" || exit 2
fail=0

note() { printf '== %s\n' "$*"; }

cargo_works() {
    # Offline containers can't resolve the registry; probe cheaply once.
    cargo metadata --format-version 1 --offline >/dev/null 2>&1 ||
        cargo metadata --format-version 1 >/dev/null 2>&1
}

if cargo_works; then
    note "cargo fmt --check"
    cargo fmt --all --check || fail=1

    note "cargo clippy (denies unwrap/expect/panic in hot-path crates)"
    cargo clippy --workspace --all-targets -- -D warnings || fail=1

    note "ldp-lint check"
    cargo run -q -p ldp-lint -- check || fail=1

    note "cargo test"
    cargo test --workspace -q || fail=1
else
    note "cargo cannot resolve dependencies here; running ldp-lint via rustc"
    bin=${TMPDIR:-/tmp}/ldp-lint-gate
    rustc --edition 2021 -O -o "$bin" crates/ldp-lint/src/main.rs || exit 2
    "$bin" check || fail=1
    note "SKIPPED: fmt, clippy, cargo test (registry unreachable)"
fi

if [ "$fail" -eq 0 ]; then
    note "static analysis OK"
else
    note "static analysis FAILED"
fi
exit "$fail"
