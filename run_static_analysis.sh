#!/bin/sh
# Static-analysis gate for the workspace: formatting, clippy, the
# ldp-lint determinism/panic-safety pass (see DESIGN.md "Correctness
# invariants"), the test suite, and a smoke run of the `hotpath`
# microbench (which must produce BENCH_hotpath.json). Run before
# sending a PR.
#
# Degrades gracefully offline: if cargo cannot reach a registry (no
# lockfile, no vendored deps), the whole sim-path chain is built with
# bare rustc against the stubs in offline/ — ldp-lint, the netsim,
# replay, telemetry and chaos test suites, the hotpath bench and the
# fig_outage / fig_trace smoke runs all still happen; only fmt, clippy
# and the tokio-dependent crates are skipped.
set -u

root=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
cd "$root" || exit 2
fail=0

note() { printf '== %s\n' "$*"; }

cargo_works() {
    # Offline containers can't resolve the registry; probe cheaply once.
    cargo metadata --format-version 1 --offline >/dev/null 2>&1 ||
        cargo metadata --format-version 1 >/dev/null 2>&1
}

if cargo_works; then
    note "cargo fmt --check"
    cargo fmt --all --check || fail=1

    note "cargo clippy (denies unwrap/expect/panic in hot-path crates)"
    cargo clippy --workspace --all-targets -- -D warnings || fail=1

    note "ldp-lint v2 check (JSON mode; unused allowlist entries are fatal)"
    cargo build -q -p ldp-lint || fail=1
    lint_json=${TMPDIR:-/tmp}/ldp-lint-report.json
    lint_t0=$(date +%s%N)
    ./target/debug/ldp-lint check --deny-unused-allows --format json > "$lint_json" || fail=1
    lint_t1=$(date +%s%N)
    lint_ms=$(( (lint_t1 - lint_t0) / 1000000 ))
    note "ldp-lint wall time: ${lint_ms}ms (budget 2000ms)"
    if [ "$lint_ms" -gt 2000 ]; then
        note "FAILED: ldp-lint exceeded its 2s wall-time budget"
        fail=1
    fi
    # report re-parses the JSON (exit 2 on malformed output) and prints
    # per-rule violation counts.
    cargo run -q -p ldp-lint -- report "$lint_json" || fail=1

    note "cargo test"
    cargo test --workspace -q || fail=1

    note "hotpath microbench smoke run"
    rm -f BENCH_hotpath.json
    cargo run --release -q -p ldp-bench --bin hotpath -- BENCH_hotpath.json || fail=1

    note "fig_outage chaos smoke run (determinism + resilience gates)"
    cargo run --release -q -p ldp-bench --bin fig_outage -- --smoke || fail=1

    note "fig_trace telemetry smoke run (stage breakdown + determinism gates)"
    cargo run --release -q -p ldp-bench --bin fig_trace -- --smoke || fail=1

    note "fig_cache delayed-hits smoke run (determinism + dedup + eviction gates)"
    cargo run --release -q -p ldp-bench --bin fig_cache -- --smoke || fail=1

    note "fig_recovery smoke run (crash recovery + crash-storm fuzzy-cut gates)"
    cargo run --release -q -p ldp-bench --bin fig_recovery -- --smoke --storm || fail=1
else
    note "cargo cannot resolve dependencies here; running the offline rustc chain"
    bin=${TMPDIR:-/tmp}/ldp-lint-gate
    rustc --edition 2021 -O -o "$bin" crates/ldp-lint/src/main.rs || exit 2
    lint_json=${TMPDIR:-/tmp}/ldp-lint-report.json
    lint_t0=$(date +%s%N)
    "$bin" check --deny-unused-allows --format json > "$lint_json" || fail=1
    lint_t1=$(date +%s%N)
    lint_ms=$(( (lint_t1 - lint_t0) / 1000000 ))
    note "ldp-lint wall time: ${lint_ms}ms (budget 2000ms)"
    if [ "$lint_ms" -gt 2000 ]; then
        note "FAILED: ldp-lint exceeded its 2s wall-time budget"
        fail=1
    fi
    # report re-parses the JSON (exit 2 on malformed output) and prints
    # per-rule violation counts.
    "$bin" report "$lint_json" || fail=1

    od=${TMPDIR:-/tmp}/ldp-offline
    mkdir -p "$od"

    note "offline: ldp-lint unit tests (lexer, index, call graph, rules, driver, json)"
    rustc --edition 2021 --test -o "$od/ldp_lint_t" crates/ldp-lint/src/main.rs &&
        "$od/ldp_lint_t" -q || fail=1
    # -L lets rustc load transitive rlibs (a crate's own deps).
    rc() { rustc --edition 2021 -O --out-dir "$od" -L "dependency=$od" "$@"; }
    # Stub externs (offline/stubs/README): networked builds use the
    # real crates; these only exist so bare rustc can link the chain.
    RAND="--extern rand=$od/librand.rlib"
    BYTES="--extern bytes=$od/libbytes.rlib"
    XBEAM="--extern crossbeam=$od/libcrossbeam.rlib"
    WIRE="--extern dns_wire=$od/libdns_wire.rlib"
    TRACE="--extern ldp_trace=$od/libldp_trace.rlib"
    NETSIM="--extern netsim=$od/libnetsim.rlib"
    ZONE="--extern dns_zone=$od/libdns_zone.rlib"
    SERVER="--extern dns_server=$od/libdns_server.rlib"
    REPLAY="--extern ldp_replay=$od/libldp_replay.rlib"
    RESOLVER="--extern dns_resolver=$od/libdns_resolver.rlib"
    CACHE="--extern ldp_cache=$od/libldp_cache.rlib"
    PROXY="--extern ldp_proxy=$od/libldp_proxy.rlib"
    METRICS="--extern ldp_metrics=$od/libldp_metrics.rlib"
    TELEM="--extern ldp_telemetry=$od/libldp_telemetry.rlib"
    SHARD="--extern ldp_shard=$od/libldp_shard.rlib"
    WORKLOADS="--extern workloads=$od/libworkloads.rlib"
    ZC="--extern zone_construct=$od/libzone_construct.rlib"
    CORE="--extern ldp_core=$od/libldp_core.rlib"
    CHAOS="--extern ldp_chaos=$od/libldp_chaos.rlib"
    GUARD="--extern ldp_guard=$od/libldp_guard.rlib"
    BENCH="--extern ldp_bench=$od/libldp_bench.rlib"
    LDP="--extern ldplayer=$od/libldplayer.rlib"

    note "offline: dependency stubs (rand, bytes, crossbeam)"
    rc --crate-type lib --crate-name rand offline/stubs/rand.rs || exit 2
    rc --crate-type lib --crate-name bytes offline/stubs/bytes.rs || exit 2
    rc --crate-type lib --crate-name crossbeam offline/stubs/crossbeam.rs || exit 2

    note "offline: workspace rlibs (dns-wire, trace, metrics, telemetry, netsim, dns-zone, guard, dns-server, replay)"
    rc --crate-type lib --crate-name dns_wire $BYTES crates/dns-wire/src/lib.rs || fail=1
    rc --crate-type lib --crate-name ldp_cache $WIRE crates/cache/src/lib.rs || fail=1
    rc --crate-type lib --crate-name ldp_trace $WIRE $RAND crates/trace/src/lib.rs || fail=1
    rc --crate-type lib --crate-name ldp_metrics crates/metrics/src/lib.rs || fail=1
    rc --crate-type lib --crate-name ldp_telemetry $METRICS crates/telemetry/src/lib.rs || fail=1
    rc --crate-type lib --crate-name netsim $RAND $TELEM crates/netsim/src/lib.rs || fail=1
    rc --crate-type lib --crate-name ldp_shard $NETSIM $RAND $TELEM \
        crates/shard/src/lib.rs || fail=1
    rc --crate-type lib --crate-name dns_zone $WIRE $RAND crates/dns-zone/src/lib.rs || fail=1
    rc --crate-type lib --crate-name ldp_guard crates/guard/src/lib.rs || fail=1
    rc --crate-type lib --crate-name dns_server $WIRE $ZONE $NETSIM $TELEM $GUARD \
        offline/dns_server_offline.rs || fail=1
    rc --crate-type lib --crate-name ldp_replay $XBEAM $WIRE $TRACE $NETSIM $TELEM $GUARD \
        offline/replay_offline.rs || fail=1

    note "offline: workspace rlibs (workloads, resolver, proxy, zone-construct, core, chaos)"
    rc --crate-type lib --crate-name workloads $WIRE $TRACE $RAND \
        crates/workloads/src/lib.rs || fail=1
    rc --crate-type lib --crate-name dns_resolver $WIRE $ZONE $NETSIM $RAND $TELEM $CACHE \
        crates/dns-resolver/src/lib.rs || fail=1
    rc --crate-type lib --crate-name ldp_proxy $WIRE $NETSIM \
        offline/proxy_offline.rs || fail=1
    rc --crate-type lib --crate-name zone_construct $WIRE $ZONE $SERVER $RESOLVER $NETSIM $TRACE \
        crates/zone-construct/src/lib.rs || fail=1
    rc --crate-type lib --crate-name ldp_core \
        $WIRE $ZONE $SERVER $RESOLVER $NETSIM $TRACE $ZC $PROXY $REPLAY $METRICS $WORKLOADS \
        $TELEM $GUARD \
        offline/core_offline.rs || fail=1
    rc --crate-type lib --crate-name ldp_chaos $WIRE $ZONE $SERVER $RESOLVER $NETSIM $RAND \
        $TRACE $REPLAY $TELEM $GUARD $SHARD $CACHE $WORKLOADS \
        crates/chaos/src/lib.rs || fail=1

    note "offline: dns-wire unit tests"
    rc --test --crate-name dns_wire_t $BYTES crates/dns-wire/src/lib.rs &&
        "$od/dns_wire_t" -q || fail=1

    note "offline: ldp-cache unit tests (store, policies, outstanding, negative)"
    rc --test --crate-name cache_t $WIRE crates/cache/src/lib.rs &&
        "$od/cache_t" -q || fail=1

    note "offline: guard unit tests (budget, checkpoint, admission, supervisor)"
    rc --test --crate-name guard_t crates/guard/src/lib.rs &&
        "$od/guard_t" -q || fail=1

    note "offline: telemetry unit tests (recorder, clock, export)"
    rc --test --crate-name telemetry_t $METRICS crates/telemetry/src/lib.rs &&
        "$od/telemetry_t" -q || fail=1

    note "offline: netsim unit tests (event queue, sim, slab, tcp model)"
    rc --test --crate-name netsim_t $RAND $TELEM crates/netsim/src/lib.rs &&
        "$od/netsim_t" -q || fail=1

    note "offline: netsim determinism + tcp-model regression suites"
    rc --test --crate-name determinism_t $NETSIM crates/netsim/tests/determinism.rs &&
        "$od/determinism_t" -q || fail=1
    rc --test --crate-name tcp_model_t $NETSIM crates/netsim/tests/tcp_model.rs &&
        "$od/tcp_model_t" -q || fail=1

    note "offline: ldp-shard unit + equivalence + telemetry-determinism suites"
    rc --test --crate-name shard_t $NETSIM $RAND $TELEM crates/shard/src/lib.rs &&
        "$od/shard_t" -q || fail=1
    rc --test --crate-name shard_equiv_t $SHARD $NETSIM $RAND \
        crates/shard/tests/equivalence.rs &&
        "$od/shard_equiv_t" -q || fail=1
    # Serial on purpose: the telemetry enable flag and flushed store
    # are process-wide.
    rc --test --crate-name shard_telem_t $SHARD $NETSIM $TELEM \
        crates/shard/tests/telemetry_determinism.rs &&
        "$od/shard_telem_t" -q --test-threads=1 || fail=1

    note "offline: dns-server engine/template/rrl/sim_server suites"
    rc --test --crate-name dns_server_t $WIRE $ZONE $NETSIM $TELEM $GUARD \
        offline/dns_server_offline.rs &&
        "$od/dns_server_t" -q || fail=1

    note "offline: replay engine/clock/sticky/timing/sim_replay suites"
    # Serial: the timed-replay tests assert wall-clock send fidelity and
    # flake when CPU-heavy neighbors (fast-mode floods) run in parallel.
    rc --test --crate-name replay_t $XBEAM $WIRE $TRACE $NETSIM $ZONE $SERVER $TELEM $GUARD \
        offline/replay_offline.rs &&
        "$od/replay_t" -q --test-threads=1 || fail=1

    note "offline: resolver, proxy, emulation suites"
    rc --test --crate-name resolver_t $WIRE $ZONE $NETSIM $RAND $SERVER $TELEM $CACHE \
        crates/dns-resolver/src/lib.rs &&
        "$od/resolver_t" -q || fail=1
    rc --test --crate-name proxy_t $WIRE $NETSIM $ZONE $SERVER $RESOLVER \
        offline/proxy_offline.rs &&
        "$od/proxy_t" -q || fail=1
    rc --test --crate-name core_t \
        $WIRE $ZONE $SERVER $RESOLVER $NETSIM $TRACE $ZC $PROXY $REPLAY $METRICS $WORKLOADS \
        $TELEM $GUARD \
        offline/core_offline.rs &&
        "$od/core_t" -q || fail=1

    note "offline: chaos fault-injection suites (unit, determinism-under-faults, outage)"
    # (prop_plan.rs is cargo-only: proptest is unavailable offline; the
    # deterministic round-trip unit tests in plan.rs run here instead.)
    rc --test --crate-name chaos_t $WIRE $ZONE $SERVER $RESOLVER $NETSIM $RAND \
        $TRACE $REPLAY $TELEM $GUARD $SHARD $CACHE $WORKLOADS \
        crates/chaos/src/lib.rs &&
        "$od/chaos_t" -q || fail=1
    rc --test --crate-name chaos_det_t $CHAOS $NETSIM crates/chaos/tests/determinism_faults.rs &&
        "$od/chaos_det_t" -q || fail=1
    rc --test --crate-name chaos_outage_t $CHAOS $NETSIM crates/chaos/tests/outage.rs &&
        "$od/chaos_outage_t" -q || fail=1
    rc --test --crate-name chaos_delayed_t $CHAOS $NETSIM $RESOLVER \
        crates/chaos/tests/delayed_hits.rs &&
        "$od/chaos_delayed_t" -q || fail=1
    rc --test --crate-name chaos_telem_t $CHAOS $NETSIM $TELEM \
        crates/chaos/tests/telemetry_determinism.rs &&
        "$od/chaos_telem_t" -q || fail=1

    note "offline: chaos shard-equivalence suite (outage matrix x shard counts)"
    rc --test --crate-name chaos_shard_t $CHAOS $NETSIM crates/chaos/tests/shard_equivalence.rs &&
        "$od/chaos_shard_t" -q || fail=1

    note "offline: chaos crash-storm suite (v1 starvation + fuzzy-cut resume byte-identity)"
    # Serial: telemetry enable flag and thread-local rings are shared
    # process state across the storm runs.
    rc --test --crate-name chaos_storm_t $CHAOS $NETSIM $TELEM $GUARD \
        crates/chaos/tests/recovery_storm.rs &&
        "$od/chaos_storm_t" -q --test-threads=1 || fail=1

    note "offline: facade + sim-path integration suite (full_pipeline)"
    rc --crate-type lib --crate-name ldplayer \
        $WIRE $ZONE $SERVER $RESOLVER $NETSIM $TRACE $ZC $PROXY $REPLAY $METRICS $WORKLOADS $CORE $CHAOS $TELEM $GUARD $CACHE \
        offline/ldplayer_offline.rs || fail=1
    rc --test --crate-name full_pipeline_t $LDP tests/full_pipeline.rs &&
        "$od/full_pipeline_t" -q || fail=1
    # Type-check (not run) the sim-path example against the facade.
    rc --crate-name hierarchy_emulation_ex $LDP examples/hierarchy_emulation.rs || fail=1

    note "offline: hotpath microbench (includes telemetry + guard overhead gates)"
    rc --crate-name hotpath $WIRE $TRACE $NETSIM $REPLAY $TELEM $GUARD $SERVER $ZONE $SHARD $CACHE \
        crates/bench/src/bin/hotpath.rs || fail=1
    rm -f BENCH_hotpath.json
    "$od/hotpath" BENCH_hotpath.json || fail=1

    note "offline: fig_outage chaos smoke run (determinism + resilience gates)"
    rc --crate-type lib --crate-name ldp_bench $METRICS crates/bench/src/lib.rs || fail=1
    rc --crate-name fig_outage $BENCH $CHAOS $NETSIM $METRICS \
        crates/bench/src/bin/fig_outage.rs &&
        "$od/fig_outage" --smoke || fail=1

    note "offline: fig_cache delayed-hits smoke run (determinism + dedup + eviction gates)"
    rc --crate-name fig_cache $BENCH $CHAOS $NETSIM $RESOLVER $TELEM $METRICS \
        crates/bench/src/bin/fig_cache.rs &&
        "$od/fig_cache" --smoke || fail=1

    note "offline: fig_trace telemetry smoke run (stage breakdown + determinism gates)"
    rc --crate-name fig_trace \
        $BENCH $NETSIM $SERVER $REPLAY $ZONE $WIRE $WORKLOADS $TRACE $METRICS $TELEM \
        crates/bench/src/bin/fig_trace.rs &&
        "$od/fig_trace" --smoke || fail=1

    note "offline: fig_recovery smoke run (crash recovery + crash-storm fuzzy-cut gates)"
    rc --crate-name fig_recovery $BENCH $CHAOS $NETSIM $METRICS $GUARD $REPLAY $TELEM \
        crates/bench/src/bin/fig_recovery.rs &&
        "$od/fig_recovery" --smoke --storm || fail=1

    note "SKIPPED: fmt, clippy, tokio-dependent crates (registry unreachable)"
fi

if [ -f BENCH_hotpath.json ]; then
    note "BENCH_hotpath.json written"
    # Encode-path gates: the scratch-reuse encode rewrite must keep
    # encode at least as fast as decode, and the server template bench
    # must be present in the report.
    bench_num() {
        awk -F: -v key="\"$1\"" '$1 ~ key { gsub(/[ ,]/, "", $2); print int($2); exit }' \
            BENCH_hotpath.json
    }
    enc=$(bench_num encode_msgs_per_sec)
    dec=$(bench_num decode_msgs_per_sec)
    tpl=$(bench_num template_answers_per_sec)
    if [ -z "$enc" ] || [ -z "$dec" ] || [ "$enc" -lt "$dec" ]; then
        note "FAILED: wire.encode_msgs_per_sec (${enc:-missing}) < wire.decode_msgs_per_sec (${dec:-missing})"
        fail=1
    else
        note "encode/decode gate: ${enc} >= ${dec} msgs/s"
    fi
    if [ -z "$tpl" ]; then
        note "FAILED: server.template_answers_per_sec missing from BENCH_hotpath.json"
        fail=1
    else
        note "server template bench: ${tpl} answers/s"
    fi
    # Resolver-cache gate: the three answer-path rates must be present,
    # and the warm-hit path must not be slower than the full miss path
    # (lookup + lead registration + insert + eviction).
    chit=$(bench_num cache_hit_per_sec)
    cdel=$(bench_num cache_delayed_hit_per_sec)
    cmiss=$(bench_num cache_miss_per_sec)
    if [ -z "$chit" ] || [ -z "$cdel" ] || [ -z "$cmiss" ]; then
        note "FAILED: resolver.cache_{hit,delayed_hit,miss}_per_sec missing from BENCH_hotpath.json"
        fail=1
    elif [ "$chit" -lt "$cmiss" ]; then
        note "FAILED: resolver.cache_hit_per_sec ($chit) < cache_miss_per_sec ($cmiss)"
        fail=1
    else
        note "resolver cache bench: hit ${chit}, delayed-hit ${cdel}, miss ${cmiss} ops/s"
    fi
    # Guard gate: the v2 fuzzy-cut checkpoint serialization bench must
    # be present (the binary itself enforces the ≤3% guard overhead
    # budget before writing the report).
    fuzzy=$(bench_num fuzzy_checkpoint_per_sec)
    if [ -z "$fuzzy" ]; then
        note "FAILED: guard.fuzzy_checkpoint_per_sec missing from BENCH_hotpath.json"
        fail=1
    else
        note "guard fuzzy-checkpoint bench: ${fuzzy} round-trips/s"
    fi
    # Sharded-simulator gate: all three shard-count rates must be
    # present (the hotpath binary itself asserts the sharded event
    # counts equal the single-shard run before reporting them).
    for n in 1 2 8; do
        eps=$(bench_num "sharded_events_per_sec_$n")
        if [ -z "$eps" ]; then
            note "FAILED: sim.sharded_events_per_sec_$n missing from BENCH_hotpath.json"
            fail=1
        else
            note "sharded sim bench (shards=$n): ${eps} events/s"
        fi
    done
else
    note "FAILED: hotpath bench produced no BENCH_hotpath.json"
    fail=1
fi

if [ "$fail" -eq 0 ]; then
    note "static analysis OK"
else
    note "static analysis FAILED"
fi
exit "$fail"
