//! # LDplayer
//!
//! A Rust reproduction of **LDplayer: DNS Experimentation at Scale**
//! (Liang Zhu and John Heidemann, IMC 2018): a configurable,
//! general-purpose DNS experimentation framework that replays DNS traces
//! at scale — many zones, multiple levels of the DNS hierarchy emulated
//! on a single server, high query rates and diverse query sources — and
//! supports "what-if" studies by mutating traces (all-DNSSEC, all-TCP,
//! all-TLS).
//!
//! This facade crate re-exports the workspace's crates:
//!
//! - [`wire`] — the DNS wire protocol, from scratch.
//! - [`zone`] — zone files, authoritative lookup semantics, split-horizon
//!   views, DNSSEC size simulation.
//! - [`server`] — the authoritative server engine (meta-DNS-server).
//! - [`resolver`] — a recursive resolver with cache.
//! - [`cache`] — the resolver cache subsystem: capacity-bounded store
//!   with pluggable deterministic eviction (LRU / LFU-lite /
//!   delay-aware), in-flight query aggregation (delayed hits), RFC 2308
//!   negative caching and rate-budgeted prefetch.
//! - [`netsim`] — the deterministic network simulator (UDP/TCP/TLS
//!   cost models) used by the resource and latency experiments.
//! - [`trace`] — pcap/text/binary trace formats, converters and the
//!   query mutator.
//! - [`zone_construct`] — rebuild zone files from traces (paper §2.3).
//! - [`proxy`] — the recursive/authoritative proxies that rewrite packet
//!   addresses for hierarchy emulation (paper §2.4).
//! - [`replay`] — the distributed query engine: controller, distributors
//!   and queriers with accurate timing (paper §2.6).
//! - [`workloads`] — synthetic and B-Root-like trace generators.
//! - [`metrics`] — quantiles, CDFs, rate series.
//! - [`core`] — orchestration: experiment configs, hierarchy-emulation
//!   assembly, replay sessions, what-if APIs.
//! - [`chaos`] — deterministic fault injection: declarative fault plans
//!   (loss bursts, delay spikes, link cuts, server crash/restart)
//!   scheduled in virtual time, plus the root-letter outage study.
//! - [`telemetry`] — always-on, virtual-time-aware tracing: per-thread
//!   ring buffers of compact events, per-query lifecycle marks
//!   (enqueue→send→retx→response→match), stage-latency breakdowns and
//!   folded-stack flamegraph dumps.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`, or:
//!
//! ```
//! use ldplayer::workloads::synthetic::SyntheticTraceSpec;
//!
//! // Generate a 1-second synthetic trace at 1 ms inter-arrival.
//! let trace = SyntheticTraceSpec::fixed_interarrival(0.001, 1.0).generate(42);
//! assert_eq!(trace.len(), 1000);
//! ```

pub use dns_resolver as resolver;
pub use dns_server as server;
pub use ldp_cache as cache;
pub use ldp_chaos as chaos;
pub use dns_wire as wire;
pub use dns_zone as zone;
pub use ldp_core as core;
pub use ldp_metrics as metrics;
pub use ldp_proxy as proxy;
pub use ldp_replay as replay;
pub use ldp_shard as shard;
pub use ldp_telemetry as telemetry;
pub use ldp_trace as trace;
pub use netsim;
pub use workloads;
pub use zone_construct;
