//! The `ldplayer` command-line tool: the trace toolchain and replay
//! engine as an operator-facing binary (the role the paper's released
//! scripts play).
//!
//! ```text
//! ldplayer stats   <trace>                      Table-1 statistics
//! ldplayer convert <in> <out>                   between .pcap/.txt/.bin
//! ldplayer mutate  <in> <out> [--all-tcp|--all-tls|--all-udp]
//!                  [--do-fraction F] [--scale-time F] [--tag PREFIX]
//! ldplayer replay  <trace> --target IP:PORT [--fast] [--speed F]
//!                  [--queriers N] [--distributors N]
//! ldplayer serve   --zone <file> --origin <name> [--udp IP:PORT]
//! ldplayer generate --kind broot|rec|syn [--seconds S] [--rate R] [--out F]
//! ```
//!
//! Formats are chosen by extension: `.pcap`, `.txt`, `.bin`.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use ldplayer::replay::{replay, ReplayConfig};
use ldplayer::trace::{
    parse_binary, parse_pcap, parse_text, write_binary, write_pcap, write_text, Mutation, Mutator,
    TraceEntry, TraceStats,
};
use ldplayer::wire::Transport;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "stats" => cmd_stats(rest),
        "convert" => cmd_convert(rest),
        "mutate" => cmd_mutate(rest),
        "replay" => cmd_replay(rest),
        "serve" => cmd_serve(rest),
        "generate" => cmd_generate(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ldplayer: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  ldplayer stats    <trace.{pcap|txt|bin}>
  ldplayer convert  <in> <out>
  ldplayer mutate   <in> <out> [--all-tcp|--all-tls|--all-udp]
                    [--do-fraction F] [--scale-time F] [--tag PREFIX] [--queries-only]
  ldplayer replay   <trace> --target IP:PORT [--fast] [--speed F]
                    [--queriers N] [--distributors N]
  ldplayer serve    --zone <master-file> --origin <name> [--udp IP:PORT] [--timeout SECS]
  ldplayer generate --kind broot|rec|syn [--seconds S] [--rate R]
                    [--interarrival S] [--clients N] [--seed N] --out <file>";

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Load a trace, dispatching on the file extension.
fn load_trace(path: &str) -> Result<Vec<TraceEntry>, String> {
    let data = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    match extension(path) {
        "pcap" => {
            let (entries, skipped) =
                parse_pcap(&data).map_err(|e| format!("parse {path}: {e}"))?;
            if skipped > 0 {
                eprintln!("note: skipped {skipped} non-DNS packets");
            }
            Ok(entries)
        }
        "txt" | "text" => {
            let text = String::from_utf8(data).map_err(|e| format!("{path}: {e}"))?;
            parse_text(&text).map_err(|e| format!("parse {path}: {e}"))
        }
        "bin" => parse_binary(&data).map_err(|e| format!("parse {path}: {e}")),
        other => Err(format!("unknown trace extension .{other} (want .pcap/.txt/.bin)")),
    }
}

/// Save a trace, dispatching on the file extension.
fn save_trace(path: &str, trace: &[TraceEntry]) -> Result<(), String> {
    let bytes = match extension(path) {
        "pcap" => {
            let (data, skipped) = write_pcap(trace);
            if skipped > 0 {
                eprintln!("note: {skipped} IPv6 entries not representable in pcap output");
            }
            data
        }
        "txt" | "text" => write_text(trace).into_bytes(),
        "bin" => write_binary(trace),
        other => return Err(format!("unknown output extension .{other}")),
    };
    std::fs::write(path, bytes).map_err(|e| format!("write {path}: {e}"))
}

fn extension(path: &str) -> &str {
    Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("")
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("stats needs a trace file")?;
    let trace = load_trace(path)?;
    let stats = TraceStats::compute(&trace).ok_or("empty trace")?;
    println!("{}", stats.render_row(path));
    let tcp = trace.iter().filter(|e| e.transport == Transport::Tcp).count();
    let tls = trace.iter().filter(|e| e.transport == Transport::Tls).count();
    let do_bit = trace.iter().filter(|e| e.message.dnssec_ok()).count();
    let queries = trace.iter().filter(|e| e.is_query()).count();
    println!(
        "queries {} / responses {}; transport: {:.1}% TCP, {:.1}% TLS; DO bit on {:.1}%",
        queries,
        trace.len() - queries,
        100.0 * tcp as f64 / trace.len() as f64,
        100.0 * tls as f64 / trace.len() as f64,
        100.0 * do_bit as f64 / trace.len() as f64,
    );
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let [input, output] = args else {
        return Err("convert needs <in> <out>".into());
    };
    let trace = load_trace(input)?;
    save_trace(output, &trace)?;
    println!("{} records: {input} → {output}", trace.len());
    Ok(())
}

fn cmd_mutate(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("mutate needs <in> <out>")?;
    let output = args.get(1).ok_or("mutate needs <in> <out>")?;
    let mut mutations = Vec::new();
    if has_flag(args, "--all-tcp") {
        mutations.push(Mutation::SetTransport(Transport::Tcp));
    }
    if has_flag(args, "--all-tls") {
        mutations.push(Mutation::SetTransport(Transport::Tls));
    }
    if has_flag(args, "--all-udp") {
        mutations.push(Mutation::SetTransport(Transport::Udp));
    }
    if let Some(f) = flag_value(args, "--do-fraction") {
        let f: f64 = f.parse().map_err(|_| "bad --do-fraction")?;
        mutations.push(Mutation::SetDnssecFraction(f));
    }
    if let Some(f) = flag_value(args, "--scale-time") {
        let f: f64 = f.parse().map_err(|_| "bad --scale-time")?;
        mutations.push(Mutation::ScaleTime(f));
    }
    if let Some(tag) = flag_value(args, "--tag") {
        mutations.push(Mutation::UniquePrefix { tag: tag.to_string() });
    }
    if has_flag(args, "--queries-only") {
        mutations.push(Mutation::QueriesOnly);
    }
    if mutations.is_empty() {
        return Err("no mutations given (see --help)".into());
    }
    let mut trace = load_trace(input)?;
    Mutator::new(mutations).apply(&mut trace);
    save_trace(output, &trace)?;
    println!("{} records mutated: {input} → {output}", trace.len());
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("replay needs a trace file")?;
    let target = flag_value(args, "--target")
        .ok_or("replay needs --target IP:PORT")?
        .parse()
        .map_err(|e| format!("bad --target: {e}"))?;
    let trace = load_trace(input)?;
    if trace.is_empty() {
        return Err("empty trace".into());
    }
    let config = ReplayConfig {
        target_udp: target,
        target_tcp: target,
        fast_mode: has_flag(args, "--fast"),
        speed: flag_value(args, "--speed")
            .map(|s| s.parse().map_err(|_| "bad --speed"))
            .transpose()?
            .unwrap_or(1.0),
        distributors: flag_value(args, "--distributors")
            .map(|s| s.parse().map_err(|_| "bad --distributors"))
            .transpose()?
            .unwrap_or(2),
        queriers_per_distributor: flag_value(args, "--queriers")
            .map(|s| s.parse().map_err(|_| "bad --queriers"))
            .transpose()?
            .unwrap_or(3),
        ..Default::default()
    };
    eprintln!(
        "replaying {} queries to {target} ({} mode)…",
        trace.len(),
        if config.fast_mode { "fast" } else { "timed" }
    );
    let report = replay(&trace, &config);
    let rate = report.total_sent as f64 / report.elapsed.as_secs_f64();
    println!(
        "sent {} ({} errors) in {:.2?} → {rate:.0} q/s from {} sources",
        report.total_sent, report.errors, report.elapsed, report.distinct_sources
    );
    let errs = report.timing_errors_us(trace[0].time_us, config.speed);
    if !config.fast_mode {
        if let Some(s) = ldplayer::metrics::Summary::of(&errs) {
            println!(
                "send-time error: median {:.3} ms (q1 {:.3}, q3 {:.3}, max {:.3})",
                s.median / 1e3,
                s.q1 / 1e3,
                s.q3 / 1e3,
                s.max / 1e3
            );
        }
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let zone_path = flag_value(args, "--zone").ok_or("serve needs --zone <master-file>")?;
    let origin: ldplayer::wire::Name = flag_value(args, "--origin")
        .ok_or("serve needs --origin <name>")?
        .parse()
        .map_err(|e| format!("bad --origin: {e}"))?;
    let text = std::fs::read_to_string(zone_path).map_err(|e| format!("read {zone_path}: {e}"))?;
    let zone = ldplayer::zone::parse_zone(&text, &origin).map_err(|e| format!("{zone_path}: {e}"))?;
    zone.validate().map_err(|e| format!("{zone_path}: {e}"))?;
    println!(
        "loaded zone {} ({} records)",
        zone.origin(),
        zone.record_count()
    );
    let mut catalog = ldplayer::zone::Catalog::new();
    catalog.insert(zone);
    let engine = Arc::new(ldplayer::server::ServerEngine::with_catalog(catalog));

    let udp_addr = flag_value(args, "--udp").unwrap_or("127.0.0.1:5300");
    let timeout: u64 = flag_value(args, "--timeout")
        .map(|s| s.parse().map_err(|_| "bad --timeout"))
        .transpose()?
        .unwrap_or(20);
    let config = ldplayer::server::ServerConfig {
        udp_addr: udp_addr.parse().map_err(|e| format!("bad --udp: {e}"))?,
        tcp_addr: udp_addr.parse().map_err(|e| format!("bad --udp: {e}"))?,
        tcp_idle_timeout: std::time::Duration::from_secs(timeout),
        ..Default::default()
    };
    let runtime = tokio::runtime::Runtime::new().map_err(|e| e.to_string())?;
    runtime.block_on(async move {
        let server = ldplayer::server::spawn(engine, config)
            .await
            .map_err(|e| format!("bind: {e}"))?;
        println!("serving on udp/tcp {} (ctrl-c to stop)", server.udp_addr);
        tokio::signal::ctrl_c().await.ok();
        server.shutdown();
        Ok::<(), String>(())
    })
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    use ldplayer::workloads::{BRootSpec, RecursiveSpec, SyntheticTraceSpec};
    let kind = flag_value(args, "--kind").ok_or("generate needs --kind broot|rec|syn")?;
    let out = flag_value(args, "--out").ok_or("generate needs --out <file>")?;
    let seconds: f64 = flag_value(args, "--seconds")
        .map(|s| s.parse().map_err(|_| "bad --seconds"))
        .transpose()?
        .unwrap_or(60.0);
    let seed: u64 = flag_value(args, "--seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(1);
    let trace = match kind {
        "broot" => {
            let rate: f64 = flag_value(args, "--rate")
                .map(|s| s.parse().map_err(|_| "bad --rate"))
                .transpose()?
                .unwrap_or(2000.0);
            let clients: usize = flag_value(args, "--clients")
                .map(|s| s.parse().map_err(|_| "bad --clients"))
                .transpose()?
                .unwrap_or(20_000);
            BRootSpec {
                duration_secs: seconds,
                mean_rate: rate,
                clients,
                ..BRootSpec::b_root_17a()
            }
            .generate(seed)
        }
        "rec" => RecursiveSpec {
            duration_secs: seconds,
            ..RecursiveSpec::rec_17()
        }
        .generate(seed),
        "syn" => {
            let ia: f64 = flag_value(args, "--interarrival")
                .map(|s| s.parse().map_err(|_| "bad --interarrival"))
                .transpose()?
                .unwrap_or(0.001);
            SyntheticTraceSpec::fixed_interarrival(ia, seconds).generate(seed)
        }
        other => return Err(format!("unknown --kind {other}")),
    };
    save_trace(out, &trace)?;
    let stats = TraceStats::compute(&trace).ok_or("empty trace generated")?;
    println!("{}", stats.render_row(out));
    Ok(())
}
