//! Integration: the what-if mutation pipelines (paper §5) across
//! crates — trace generation → mutation → signed zones / transport
//! experiments — asserting the directional results the paper reports.

use std::sync::Arc;

use ldplayer::core::{
    dnssec_bandwidth, synthetic_root_zone, transport_experiment, TransportExperiment,
};
use ldplayer::netsim::SimDuration;
use ldplayer::server::ServerEngine;
use ldplayer::trace::{parse_binary, write_binary, Mutation, Mutator};
use ldplayer::wire::Transport;
use ldplayer::zone::Catalog;
use ldplayer::workloads::BRootSpec;

fn trace() -> Vec<ldplayer::trace::TraceEntry> {
    BRootSpec {
        duration_secs: 30.0,
        mean_rate: 400.0,
        clients: 2_000,
        ..BRootSpec::b_root_17a()
    }
    .generate(5)
}

fn engine() -> Arc<ServerEngine> {
    let mut cat = Catalog::new();
    cat.insert(synthetic_root_zone());
    Arc::new(ServerEngine::with_catalog(cat))
}

/// §5.1 directional result: more DO and bigger keys cost bandwidth, and
/// the full pipeline survives a binary-format round trip in the middle
/// (pcap → binary → mutate → replay, Figure 3).
#[test]
fn dnssec_whatif_through_binary_format() {
    let original = trace();
    // Round-trip through the replay input format first.
    let bin = write_binary(&original);
    let mut restored = parse_binary(&bin).expect("binary round trip");
    assert_eq!(restored, original);

    // Mutate: all queries want DNSSEC.
    Mutator::new(vec![Mutation::SetDnssecFraction(1.0)]).apply(&mut restored);
    assert!(restored.iter().all(|e| e.message.dnssec_ok()));

    let root = synthetic_root_zone();
    let base = dnssec_bandwidth(&root, &original, 2048, false, 0.723);
    let what_if = dnssec_bandwidth(&root, &restored, 2048, false, 1.0);
    let increase = what_if.summary.median / base.summary.median - 1.0;
    assert!(
        increase > 0.05,
        "all-DNSSEC increases bandwidth ({:+.1}%)",
        increase * 100.0
    );
}

/// §5.2 directional results across the transport matrix.
#[test]
fn transport_matrix_shape() {
    let trace = trace();
    let engine = engine();
    let run = |transport: Option<Transport>, timeout_s: u64| {
        transport_experiment(
            engine.clone(),
            &trace,
            &TransportExperiment {
                transport,
                idle_timeout: SimDuration::from_secs(timeout_s),
                rtt: SimDuration::from_millis(20),
                sample_every: 5.0,
                ..Default::default()
            },
        )
    };

    let udp = run(Some(Transport::Udp), 20);
    let tcp = run(Some(Transport::Tcp), 20);
    let tls = run(Some(Transport::Tls), 20);
    let mix = run(None, 20);

    // Memory ordering: UDP < TCP < TLS (Figures 13a/14a).
    let mem = |r: &ldplayer::core::TransportResult| r.memory_gib.max_value().unwrap();
    assert!(mem(&udp) < mem(&tcp), "UDP {} < TCP {}", mem(&udp), mem(&tcp));
    assert!(mem(&tcp) < mem(&tls), "TCP {} < TLS {}", mem(&tcp), mem(&tls));
    // Mixed trace sits between UDP and all-TCP.
    assert!(mem(&mix) <= mem(&tcp));

    // CPU: TCP cheapest (NIC offload), TLS and the UDP-heavy mix higher
    // (Figure 11's surprising ordering).
    assert!(tcp.cpu_percent < mix.cpu_percent, "all-TCP beats the UDP mix");
    assert!(tcp.cpu_percent < tls.cpu_percent);

    // TIME_WAIT exceeds established at steady state (Figures 13b/13c:
    // the server is the closer, and TIME_WAIT lasts 60 s > timeout).
    assert!(
        tcp.time_wait.max_value().unwrap() >= tcp.established.max_value().unwrap(),
        "TIME_WAIT {} ≥ established {}",
        tcp.time_wait.max_value().unwrap(),
        tcp.established.max_value().unwrap()
    );

    // Latency: UDP ≈ 1 RTT; TCP between 1 and 2 RTT overall (reuse),
    // TLS above TCP (Figure 15).
    let med = |r: &ldplayer::core::TransportResult| r.latency_summary_ms().unwrap().median;
    assert!((med(&udp) - 20.0).abs() < 3.0);
    assert!(med(&tcp) >= med(&udp) * 0.95);
    assert!(med(&tcp) <= 45.0);
    assert!(med(&tls) >= med(&tcp));
}

/// Longer idle timeouts hold more concurrent connections and more
/// memory — the x-axis relationship of Figures 13/14.
#[test]
fn timeout_sweep_monotone() {
    let trace = trace();
    let engine = engine();
    let mut maxima = Vec::new();
    for timeout in [5u64, 20, 40] {
        let r = transport_experiment(
            engine.clone(),
            &trace,
            &TransportExperiment {
                transport: Some(Transport::Tcp),
                idle_timeout: SimDuration::from_secs(timeout),
                sample_every: 5.0,
                ..Default::default()
            },
        );
        maxima.push(r.established.max_value().unwrap());
    }
    assert!(
        maxima[0] <= maxima[1] && maxima[1] <= maxima[2],
        "established connections grow with timeout: {maxima:?}"
    );
}

/// Latency grows with RTT for connection-oriented transports, and the
/// non-busy-client median sits near 2 RTT for TCP (Figure 15b).
#[test]
fn rtt_sweep_latency() {
    let trace = trace();
    let engine = engine();
    let mut medians = Vec::new();
    for rtt_ms in [20u64, 80, 160] {
        let r = transport_experiment(
            engine.clone(),
            &trace,
            &TransportExperiment {
                transport: Some(Transport::Tcp),
                rtt: SimDuration::from_millis(rtt_ms),
                sample_every: 10.0,
                ..Default::default()
            },
        );
        let nonbusy = r.latency_summary_nonbusy_ms(250).unwrap();
        medians.push((rtt_ms, nonbusy.median));
    }
    for w in medians.windows(2) {
        assert!(w[1].1 > w[0].1, "latency grows with RTT: {medians:?}");
    }
    // Non-busy TCP median ≈ 2 RTT (fresh connections dominate).
    for (rtt_ms, med) in &medians {
        let rtts = med / *rtt_ms as f64;
        assert!(
            (0.9..=2.6).contains(&rtts),
            "non-busy median {med} ms at RTT {rtt_ms} ms = {rtts:.2} RTTs"
        );
    }
}
