//! Integration: the complete LDplayer pipeline across crates —
//! workload generation → zone construction → hierarchy emulation on a
//! single meta-DNS-server → recursive replay — validated against the
//! ground truth of independent per-zone servers.

use std::net::SocketAddr;
use std::sync::{Arc, Mutex};

use ldplayer::core::{build_emulation, views_from_hierarchy, EmulationConfig};
use ldplayer::netsim::{Ctx, Host, PacketBytes, SimTime, TcpEvent};
use ldplayer::resolver::IterativeResolver;
use ldplayer::trace::TraceEntry;
use ldplayer::wire::{Message, RData, Rcode, RecordType};
use ldplayer::workloads::RecursiveSpec;
use ldplayer::zone_construct::{build_from_trace, SimulatedInternet};

fn spec() -> RecursiveSpec {
    RecursiveSpec {
        duration_secs: 60.0,
        mean_rate: 3.0,
        zones: 25,
        ..RecursiveSpec::rec_17()
    }
}

struct Stub {
    me: SocketAddr,
    resolver: SocketAddr,
    trace: Vec<TraceEntry>,
    responses: Arc<Mutex<Vec<Message>>>,
}

impl Host for Stub {
    fn on_udp(&mut self, _ctx: &mut Ctx<'_>, _f: SocketAddr, _t: SocketAddr, data: PacketBytes) {
        if let Ok(m) = Message::decode(&data) {
            self.responses.lock().unwrap().push(m);
        }
    }
    fn on_tcp_event(&mut self, _ctx: &mut Ctx<'_>, _e: TcpEvent) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if let Some(e) = self.trace.get(token as usize) {
            ctx.send_udp(self.me, self.resolver, e.message.encode());
        }
    }
}

/// The headline claim (paper §2.4): a single server with split-horizon
/// views plus proxies answers a recursive workload *identically* to the
/// real multi-server hierarchy.
#[test]
fn emulated_hierarchy_matches_ground_truth() {
    let spec = spec();
    let trace = spec.generate(99);

    // Ground truth: resolve each unique query against the simulated
    // Internet directly (independent per-zone servers).
    let mut internet = SimulatedInternet::new(&spec.zone_names(), RecursiveSpec::host_labels());
    let hints = internet.root_addrs.clone();
    let mut truth_resolver = IterativeResolver::new(hints);
    let mut truth: std::collections::HashMap<String, Vec<RData>> = Default::default();
    for e in &trace {
        let q = e.message.question().unwrap();
        let key = format!("{} {}", q.name, q.qtype);
        if truth.contains_key(&key) {
            continue;
        }
        let res = truth_resolver
            .resolve(&mut internet, &q.name, q.qtype, 0.0)
            .expect("ground truth resolves");
        let mut rdatas: Vec<RData> = res
            .answers
            .iter()
            .filter(|r| r.rtype() == q.qtype)
            .map(|r| r.rdata.clone())
            .collect();
        rdatas.sort_by_key(|r| format!("{r}"));
        truth.insert(key, rdatas);
    }

    // Construct zones from (fresh) captures and emulate.
    let mut internet2 = SimulatedInternet::new(&spec.zone_names(), RecursiveSpec::host_labels());
    let hierarchy = build_from_trace(&trace, &mut internet2);
    assert!(hierarchy.unresolved.is_empty(), "everything constructible");
    let mut emu = build_emulation(&hierarchy, EmulationConfig::default());

    let responses = Arc::new(Mutex::new(vec![]));
    let stub = emu.sim.add_host(
        &["10.2.200.1".parse().unwrap()],
        Box::new(Stub {
            me: "10.2.200.1:6000".parse().unwrap(),
            resolver: emu.resolver_addr,
            trace: trace.clone(),
            responses: responses.clone(),
        }),
    );
    let t0 = trace[0].time_us;
    for (i, e) in trace.iter().enumerate() {
        emu.sim
            .schedule_timer(stub, SimTime::from_micros(e.time_us - t0), i as u64);
    }
    emu.sim
        .run_until(SimTime::from_secs_f64(spec.duration_secs + 30.0));

    // Compare every response against ground truth.
    let responses = responses.lock().unwrap();
    assert_eq!(responses.len(), trace.len(), "all queries answered");
    let mut compared = 0;
    for resp in responses.iter() {
        assert_eq!(resp.rcode, Rcode::NoError, "resolved through emulation");
        let q = resp.question().unwrap();
        let key = format!("{} {}", q.name, q.qtype);
        let mut got: Vec<RData> = resp
            .answers
            .iter()
            .filter(|r| r.rtype() == q.qtype)
            .map(|r| r.rdata.clone())
            .collect();
        got.sort_by_key(|r| format!("{r}"));
        assert_eq!(&got, truth.get(&key).expect("truth entry"), "answers for {key} match");
        compared += 1;
    }
    assert!(compared > 100, "compared a meaningful number of answers");
}

/// Zone construction is a one-time cost: re-running an experiment reuses
/// the zones, and reconstructed zones round-trip through master files
/// (paper §2.3's "reusable zone files").
#[test]
fn constructed_zones_round_trip_master_files() {
    let spec = spec();
    let trace = spec.generate(7);
    let mut internet = SimulatedInternet::new(&spec.zone_names(), RecursiveSpec::host_labels());
    let hierarchy = build_from_trace(&trace, &mut internet);

    for zone in &hierarchy.zones {
        let text = ldplayer::zone::write_zone(zone);
        let parsed = ldplayer::zone::parse_zone(&text, zone.origin()).expect("parses back");
        assert_eq!(&parsed, zone, "zone {} round-trips", zone.origin());
    }
}

/// The views built from a hierarchy give *different answers to the same
/// query* depending on source address — the split-horizon property that
/// makes one server act as many.
#[test]
fn views_differ_by_source_address() {
    let spec = spec();
    let trace = spec.generate(3);
    let mut internet = SimulatedInternet::new(&spec.zone_names(), RecursiveSpec::host_labels());
    let hierarchy = build_from_trace(&trace, &mut internet);
    let views = views_from_hierarchy(&hierarchy);
    let engine = ldplayer::server::ServerEngine::with_views(views);

    let qname = trace[0].message.question().unwrap().name.clone();
    let query = Message::query(1, qname.clone(), RecordType::A);

    let root_addr = hierarchy.zone_servers[&ldplayer::wire::Name::root()][0];
    let from_root = engine.answer(root_addr, &query);
    assert!(from_root.answers.is_empty(), "root view refers, never answers");
    assert!(!from_root.authorities.is_empty());

    // The SLD's own server view answers authoritatively.
    let sld_origin = qname.parent().unwrap();
    let sld_addr = hierarchy.zone_servers[&sld_origin][0];
    let from_sld = engine.answer(sld_addr, &query);
    assert!(from_sld.flags.authoritative);
    assert!(!from_sld.answers.is_empty());
}
