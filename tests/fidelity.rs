//! Integration: replay fidelity over real loopback sockets (the §4
//! validation), at test-friendly scale, plus failure injection on the
//! simulated network path.

use ldplayer::core::{run_fidelity_session, SessionConfig};
use ldplayer::replay::{replay, ReplayConfig};
use ldplayer::workloads::{BRootSpec, SyntheticTraceSpec};

/// Figure 6/7-style validation: replayed arrival timing tracks the
/// original trace within small error for a Poisson (B-Root-like) trace.
#[test]
fn broot_like_replay_timing_is_accurate() {
    let trace = BRootSpec {
        duration_secs: 4.0,
        mean_rate: 250.0,
        clients: 300,
        ..BRootSpec::b_root_16_like()
    }
    .generate(4);
    let config = SessionConfig {
        answer_from: Some("example.com".into()),
        skip_secs: 0.4,
        ..Default::default()
    };
    let report = run_fidelity_session(&trace, &config);
    assert!(report.matched as f64 >= trace.len() as f64 * 0.98, "matched {}", report.matched);
    let s = &report.error_summary;
    // Quartiles well inside ±10 ms (paper: ±2.5 ms on dedicated hosts).
    assert!(s.q1 > -10.0 && s.q3 < 10.0, "quartiles ({}, {})", s.q1, s.q3);
    // Inter-arrival distributions close in KS for a continuous process.
    assert!(report.interarrival_ks() < 0.25, "KS {}", report.interarrival_ks());
}

/// Figure 8-style: per-second rates match within tight bounds.
#[test]
fn per_second_rates_track() {
    let trace = BRootSpec {
        duration_secs: 6.0,
        mean_rate: 400.0,
        clients: 500,
        ..BRootSpec::b_root_16_like()
    }
    .generate(8);
    let config = SessionConfig {
        answer_from: Some("example.com".into()),
        ..Default::default()
    };
    let report = run_fidelity_session(&trace, &config);
    assert!(!report.rate_differences.is_empty());
    // Middle seconds must be within ±2% (paper: ±0.1% with dedicated
    // hardware and 1-hour windows; short windows are noisier).
    let close = report
        .rate_differences
        .iter()
        .filter(|d| d.abs() <= 0.02)
        .count();
    assert!(
        close * 10 >= report.rate_differences.len() * 7,
        "≥70% of seconds within ±2%: {:?}",
        report.rate_differences
    );
}

/// Fast mode replays a nominally-long trace quickly — the §4.3 load
/// test mode — and the throughput exceeds the trace's nominal rate.
#[test]
fn fast_mode_exceeds_nominal_rate() {
    let sink = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    let addr = sink.local_addr().unwrap();
    // Nominal: 100 q/s for 30 s. Fast mode must beat that wildly.
    let mut spec = SyntheticTraceSpec::fixed_interarrival(0.01, 30.0);
    spec.client_pool = 100;
    let trace = spec.generate(2);
    let report = replay(
        &trace,
        &ReplayConfig {
            target_udp: addr,
            target_tcp: addr,
            fast_mode: true,
            ..Default::default()
        },
    );
    assert_eq!(report.total_sent as usize, trace.len());
    let qps = report.total_sent as f64 / report.elapsed.as_secs_f64();
    assert!(qps > 10_000.0, "fast mode rate {qps:.0} q/s");
}

/// Packet loss on the simulated path degrades but does not wedge the
/// hierarchy emulation: the resolver retries and still answers most
/// queries (failure injection).
#[test]
fn emulation_survives_packet_loss() {
    use ldplayer::core::{build_emulation, EmulationConfig};
    use ldplayer::netsim::{Ctx, Host, PacketBytes, PathConfig, SimDuration, SimTime, TcpEvent, Topology};
    use ldplayer::wire::{Message, Rcode, RecordType};
    use ldplayer::workloads::RecursiveSpec;
    use ldplayer::zone_construct::{build_from_trace, SimulatedInternet};
    use std::net::SocketAddr;
    use std::sync::{Arc, Mutex};

    let spec = RecursiveSpec {
        duration_secs: 40.0,
        mean_rate: 1.0,
        zones: 8,
        ..RecursiveSpec::rec_17()
    };
    let trace = spec.generate(3);
    let mut internet = SimulatedInternet::new(&spec.zone_names(), RecursiveSpec::host_labels());
    let hierarchy = build_from_trace(&trace, &mut internet);

    // 10% loss on every path.
    let config = EmulationConfig {
        topology: Topology::uniform(PathConfig {
            rtt: SimDuration::from_millis(5),
            bandwidth_bps: None,
            loss: 0.10,
        }),
        ..Default::default()
    };
    let mut emu = build_emulation(&hierarchy, config);

    struct Stub {
        me: SocketAddr,
        resolver: SocketAddr,
        trace: Vec<ldplayer::trace::TraceEntry>,
        ok: Arc<Mutex<usize>>,
    }
    impl Host for Stub {
        fn on_udp(&mut self, _c: &mut Ctx<'_>, _f: SocketAddr, _t: SocketAddr, data: PacketBytes) {
            if let Ok(m) = Message::decode(&data) {
                if m.rcode == Rcode::NoError && !m.answers.is_empty() {
                    *self.ok.lock().unwrap() += 1;
                }
            }
        }
        fn on_tcp_event(&mut self, _c: &mut Ctx<'_>, _e: TcpEvent) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            if let Some(e) = self.trace.get(token as usize) {
                let mut q = e.message.clone();
                q.questions[0].qtype = RecordType::A;
                ctx.send_udp(self.me, self.resolver, q.encode());
            }
        }
    }
    let ok = Arc::new(Mutex::new(0usize));
    let stub = emu.sim.add_host(
        &["10.2.200.1".parse().unwrap()],
        Box::new(Stub {
            me: "10.2.200.1:6000".parse().unwrap(),
            resolver: emu.resolver_addr,
            trace: trace.clone(),
            ok: ok.clone(),
        }),
    );
    let t0 = trace[0].time_us;
    for (i, e) in trace.iter().enumerate() {
        emu.sim
            .schedule_timer(stub, SimTime::from_micros(e.time_us - t0), i as u64);
    }
    emu.sim.run_until(SimTime::from_secs_f64(120.0));
    let ok = *ok.lock().unwrap();
    // With 10% loss and retries, most queries still succeed; and the
    // run terminates (no wedged state).
    assert!(
        ok * 10 >= trace.len() * 6,
        "{ok}/{} answered under 10% loss",
        trace.len()
    );
}
