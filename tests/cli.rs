//! Integration tests for the `ldplayer` command-line tool: generate,
//! stats, convert between all three formats, mutate, and replay against
//! a loopback sink.

use std::path::PathBuf;
use std::process::Command;

fn ldplayer() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ldplayer"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ldp-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn ldplayer");
    assert!(
        out.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn generate_stats_convert_mutate_pipeline() {
    let bin = tmp("t1.bin");
    let txt = tmp("t1.txt");
    let pcap = tmp("t1.pcap");
    let mutated = tmp("t1-tcp.bin");

    // generate
    let out = run_ok(ldplayer().args([
        "generate", "--kind", "syn", "--seconds", "2", "--interarrival", "0.01",
        "--out", bin.to_str().unwrap(),
    ]));
    assert!(out.contains("200 rec"), "stats row: {out}");

    // stats
    let out = run_ok(ldplayer().args(["stats", bin.to_str().unwrap()]));
    assert!(out.contains("queries 200"), "{out}");
    assert!(out.contains("0.0% TCP"), "{out}");

    // convert bin → txt → pcap → bin
    run_ok(ldplayer().args(["convert", bin.to_str().unwrap(), txt.to_str().unwrap()]));
    run_ok(ldplayer().args(["convert", txt.to_str().unwrap(), pcap.to_str().unwrap()]));
    let back = tmp("t1-back.bin");
    run_ok(ldplayer().args(["convert", pcap.to_str().unwrap(), back.to_str().unwrap()]));
    let out = run_ok(ldplayer().args(["stats", back.to_str().unwrap()]));
    assert!(out.contains("queries 200"), "round-tripped: {out}");

    // mutate: all TCP + DO.
    run_ok(ldplayer().args([
        "mutate", bin.to_str().unwrap(), mutated.to_str().unwrap(),
        "--all-tcp", "--do-fraction", "1.0",
    ]));
    let out = run_ok(ldplayer().args(["stats", mutated.to_str().unwrap()]));
    assert!(out.contains("100.0% TCP"), "{out}");
    assert!(out.contains("DO bit on 100.0%"), "{out}");
}

#[test]
fn replay_fast_against_sink() {
    let sink = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    let target = sink.local_addr().unwrap();
    let bin = tmp("t2.bin");
    let udp = tmp("t2-udp.bin");
    run_ok(ldplayer().args([
        "generate", "--kind", "broot", "--seconds", "2", "--rate", "500",
        "--clients", "100", "--out", bin.to_str().unwrap(),
    ]));
    // The generated trace has ~3% TCP; the sink is UDP-only, so force
    // UDP first (also exercises mutate).
    run_ok(ldplayer().args([
        "mutate", bin.to_str().unwrap(), udp.to_str().unwrap(), "--all-udp",
    ]));
    let out = run_ok(ldplayer().args([
        "replay", udp.to_str().unwrap(),
        "--target", &target.to_string(),
        "--fast",
    ]));
    assert!(out.contains("sent"), "{out}");
    assert!(out.contains("(0 errors)"), "{out}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = ldplayer().args(["bogus-subcommand"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = ldplayer().args(["stats", "/nonexistent/file.bin"]).output().unwrap();
    assert!(!out.status.success());

    let out = ldplayer()
        .args(["convert", "/nonexistent/in.weird", "/tmp/out.bin"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn help_prints_usage() {
    let out = run_ok(ldplayer().args(["--help"]));
    assert!(out.contains("usage:"));
    assert!(out.contains("replay"));
    assert!(out.contains("generate"));
}
