#!/bin/sh
# Captures the real-socket experiments (Figures 6-9) and the ablations.
# Run after the simulator chain so the timing experiments get the CPU.
set -e
./target/release/fig06_07_08 --seconds 10 --trials 3 --broot-rate 1000 > results/fig06_07_08.txt 2>&1
./target/release/fig09 --seconds 10 > results/fig09.txt 2>&1
./target/release/ablations --seconds 3 > results/ablations.txt 2>&1
echo FIDELITY_SUITE_DONE
