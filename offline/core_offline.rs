//! Offline shim for ldp-core minus `session.rs` (whose capture server
//! rides on the tokio transport, unavailable without a registry).
//! Built as `ldp_core` by `run_static_analysis.sh`; also compiled with
//! `rustc --test` to run the emulation/experiment suites offline.

#[path = "../crates/core/src/emulation.rs"]
pub mod emulation;
#[path = "../crates/core/src/experiment.rs"]
pub mod experiment;

pub use emulation::{build_emulation, views_from_hierarchy, EmulatedHierarchy, EmulationConfig};
