//! Offline shim for dns-server minus `tokio_server.rs` (tokio is
//! unavailable without a registry). Built as `dns_server` by
//! `run_static_analysis.sh` so replay's sim-path tests link offline.

#[path = "../crates/dns-server/src/engine.rs"]
pub mod engine;
#[path = "../crates/dns-server/src/rrl.rs"]
pub mod rrl;
#[path = "../crates/dns-server/src/sim_server.rs"]
pub mod sim_server;
#[path = "../crates/dns-server/src/template.rs"]
pub mod template;

pub use engine::ServerEngine;
pub use rrl::{RateLimiter, RrlAction, RrlBank, RrlConfig};
pub use sim_server::SimDnsServer;
pub use template::TemplateTable;
