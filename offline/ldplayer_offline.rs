//! Offline shim for the `ldplayer` facade crate: the same re-exports
//! as `src/lib.rs`, but with the offline `ldp_core` (no session.rs)
//! so the integration tests and examples that stay on the sim path
//! type-check and run without a registry.

pub use dns_resolver as resolver;
pub use dns_server as server;
pub use dns_wire as wire;
pub use ldp_cache as cache;
pub use ldp_chaos as chaos;
pub use dns_zone as zone;
pub use ldp_core as core;
pub use ldp_metrics as metrics;
pub use ldp_proxy as proxy;
pub use ldp_replay as replay;
pub use ldp_telemetry as telemetry;
pub use ldp_trace as trace;
pub use netsim;
pub use workloads;
pub use zone_construct;
