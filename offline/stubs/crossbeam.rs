//! Minimal offline stand-in for crossbeam's bounded channels, backed by
//! std::sync::mpsc::sync_channel plus a Mutex so Receiver is cloneable.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    pub struct Sender<T>(mpsc::SyncSender<T>);
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }
    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }

    #[derive(Debug)]
    pub struct SendError<T>(pub T);
    #[derive(Debug)]
    pub struct RecvError;
    #[derive(Debug)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap.max(1));
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.lock().expect("receiver lock").recv().map_err(|_| RecvError)
        }
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.lock().expect("receiver lock").try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }
    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}
