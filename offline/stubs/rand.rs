//! Minimal offline stand-in for the `rand` crate API surface this
//! workspace uses: StdRng (SplitMix64), SeedableRng::seed_from_u64,
//! Rng::{gen, gen_range}.

pub mod rngs {
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64.
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed ^ 0xA0761D6478BD642F }
    }
}

pub trait Standard: Sized {
    fn from_u64(x: u64) -> Self;
}

impl Standard for f64 {
    fn from_u64(x: u64) -> Self {
        (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for u64 {
    fn from_u64(x: u64) -> Self {
        x
    }
}
impl Standard for u32 {
    fn from_u64(x: u64) -> Self {
        (x >> 32) as u32
    }
}
impl Standard for u16 {
    fn from_u64(x: u64) -> Self {
        (x >> 48) as u16
    }
}
impl Standard for u8 {
    fn from_u64(x: u64) -> Self {
        (x >> 56) as u8
    }
}
impl Standard for bool {
    fn from_u64(x: u64) -> Self {
        x & 1 == 1
    }
}

pub trait SampleUniform: Copy {
    fn from_range(lo: Self, hi: Self, r: u64) -> Self;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_range(lo: Self, hi: Self, r: u64) -> Self {
                let span = (hi - lo) as u64;
                lo + (r % span.max(1)) as $t
            }
        }
    )*};
}
impl_uniform!(usize, u64, u32, u16, u8, i64, i32);

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        let r = self.next_u64();
        T::from_range(range.start, range.end, r)
    }
}

impl<T: RngCore> Rng for T {}
