//! Minimal offline stand-in for the `bytes` crate: BytesMut + Buf as
//! used by dns-wire framing (extend_from_slice, advance, split_to,
//! indexing, len).

use std::ops::{Deref, Index};

pub trait Buf {
    fn advance(&mut self, n: usize);
}

#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    data: Vec<u8>,
    start: usize,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap), start: 0 }
    }
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len());
        let out = self.data[self.start..self.start + n].to_vec();
        self.start += n;
        BytesMut { data: out, start: 0 }
    }
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.start..].to_vec()
    }
}

impl Buf for BytesMut {
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len());
        self.start += n;
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl Index<usize> for BytesMut {
    type Output = u8;
    fn index(&self, i: usize) -> &u8 {
        &self.data[self.start + i]
    }
}
