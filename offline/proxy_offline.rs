//! Offline shim for ldp-proxy minus `tokio_proxy.rs` (tokio is
//! unavailable without a registry). Built as `ldp_proxy` by
//! `run_static_analysis.sh`; also compiled with `rustc --test` to run
//! the rewrite/sim_proxy suites offline.

#[path = "../crates/proxy/src/rewrite.rs"]
pub mod rewrite;
#[path = "../crates/proxy/src/sim_proxy.rs"]
pub mod sim_proxy;

pub use rewrite::{rewrite_inbound, rewrite_outbound, Flow, FlowTable};
pub use sim_proxy::{ProxyStats, SimProxy};
