//! Offline shim for the replay crate minus `capture.rs` (which needs
//! dns-server's tokio transport, unavailable without a registry).
//! Built as `ldp_replay` by `run_static_analysis.sh`; also compiled
//! with `rustc --test` to run the engine/clock/sticky/timing/sim_replay
//! suites offline.

#[path = "../crates/replay/src/clock.rs"]
pub mod clock;
#[path = "../crates/replay/src/engine.rs"]
pub mod engine;
#[path = "../crates/replay/src/retransmit.rs"]
pub mod retransmit;
#[path = "../crates/replay/src/sim_replay.rs"]
pub mod sim_replay;
#[path = "../crates/replay/src/sticky.rs"]
pub mod sticky;
#[path = "../crates/replay/src/timing.rs"]
pub mod timing;

pub use clock::{ReplayClock, VirtualClock, WallClock};
pub use engine::{replay, replay_with_clock, ReplayConfig, ReplayReport, SentRecord};
pub use retransmit::RetransmitState;
pub use sim_replay::{CheckpointStamp, LatencyLog, LatencyRecord, SimReplayClient};
pub use sticky::StickyRouter;
pub use timing::{virtual_deadline, TimingTracker};
